//! Synthesizes an ImageNet-scale VGG16 accelerator at a 65 W envelope,
//! using a custom design space (large crossbars so the 25088x4096
//! classifier fits), and prints per-layer diagnostics.
//!
//! ```text
//! cargo run --release --example synthesize_vgg16
//! ```

use pimsyn::{DesignSpace, SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::vgg16();
    println!("input model: {model}");

    let options = SynthesisOptions::fast(Watts(65.0))
        .with_design_space(DesignSpace::custom(
            vec![0.2, 0.3, 0.4],
            vec![256, 512],
            vec![2, 4],
            vec![1, 2],
        ))
        .with_seed(1);

    let result = Synthesizer::new(options).synthesize(&model)?;
    println!("{}", result.report_text());

    println!("--- per-layer pipeline diagnostics (analytic) ---");
    for perf in &result.analytic.per_layer {
        let prog = result.dataflow.program(perf.layer);
        println!(
            "{:<10} dup {:>4} blocks {:>6} period {:>9.3} us bottleneck {}",
            prog.name,
            prog.wt_dup,
            prog.blocks,
            perf.period.value() * 1e6,
            perf.bottleneck,
        );
    }
    Ok(())
}
