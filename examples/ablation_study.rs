//! Mini ablation study on CIFAR-AlexNet: duplication strategy, macro
//! specialization and inter-layer macro sharing — the Fig. 7/8/9 experiments
//! at example scale.
//!
//! ```text
//! cargo run --release --example ablation_study
//! ```

use pimsyn::{MacroMode, SynthesisOptions, Synthesizer, WtDupStrategy};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;

fn run(label: &str, options: SynthesisOptions) -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::alexnet_cifar(10);
    let result = Synthesizer::new(options).synthesize(&model)?;
    println!(
        "{label:<28} {:>8.3} TOPS/W {:>8.3} TOPS {:>9.3} ms",
        result.analytic.efficiency_tops_per_watt(),
        result.analytic.throughput_tops(),
        result.analytic.latency.millis(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let power = Watts(9.0);
    let base = || SynthesisOptions::fast(power).with_seed(0xAB1A);

    println!("=== weight duplication (Fig. 7) ===");
    run("SA-based filter", base())?;
    run(
        "WOHO-proportional",
        base().with_strategy(WtDupStrategy::WohoProportional),
    )?;
    run(
        "no duplication",
        base().with_strategy(WtDupStrategy::NoDuplication),
    )?;

    println!("=== macro design (Fig. 8) ===");
    run("specialized macros", base())?;
    run(
        "identical macros",
        base().with_macro_mode(MacroMode::Identical),
    )?;

    println!("=== inter-layer macro sharing (Fig. 9) ===");
    run("with sharing", base())?;
    run("without sharing", base().without_macro_sharing())?;
    Ok(())
}
