//! Model ingestion: parse an ONNX-style JSON network description, synthesize
//! it, and round-trip a zoo model through the same format.
//!
//! ```text
//! cargo run --release --example onnx_import
//! ```

use pimsyn::{SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_model::{onnx, zoo};

const NETWORK: &str = r#"{
  "name": "custom-net",
  "input": {"shape": [3, 32, 32]},
  "precision": {"weights": 16, "activations": 16},
  "nodes": [
    {"op": "Conv", "name": "conv1", "inputs": ["input"],
     "attrs": {"out_channels": 32, "kernel": 3, "stride": 1, "padding": 1}},
    {"op": "Relu", "name": "relu1", "inputs": ["conv1"]},
    {"op": "MaxPool", "name": "pool1", "inputs": ["relu1"], "attrs": {"kernel": 2, "stride": 2}},
    {"op": "Conv", "name": "conv2", "inputs": ["pool1"],
     "attrs": {"out_channels": 64, "kernel": 3, "stride": 1, "padding": 1}},
    {"op": "Relu", "name": "relu2", "inputs": ["conv2"]},
    {"op": "MaxPool", "name": "pool2", "inputs": ["relu2"], "attrs": {"kernel": 2, "stride": 2}},
    {"op": "Flatten", "name": "flat", "inputs": ["pool2"]},
    {"op": "Gemm", "name": "fc1", "inputs": ["flat"], "attrs": {"out_features": 128}},
    {"op": "Relu", "name": "relu3", "inputs": ["fc1"]},
    {"op": "Gemm", "name": "fc2", "inputs": ["relu3"], "attrs": {"out_features": 10}}
  ]
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ingest an external network description.
    let model = onnx::parse_model(NETWORK)?;
    println!("ingested: {model}");
    for wl in model.weight_layers() {
        println!(
            "  {:<8} WK={} CI={:>5} CO={:>4} HOxWO={}x{}",
            wl.name, wl.kernel, wl.in_channels, wl.out_channels, wl.out_height, wl.out_width
        );
    }

    // Synthesize it like any zoo model.
    let result =
        Synthesizer::new(SynthesisOptions::fast(Watts(4.0)).with_seed(11)).synthesize(&model)?;
    println!(
        "synthesized: {:.3} TOPS/W, {:.3} ms/image",
        result.analytic.efficiency_tops_per_watt(),
        result.analytic.latency.millis()
    );

    // Round-trip a zoo model through the same format (lossless layer graph).
    let resnet = zoo::resnet18_cifar(10);
    let text = onnx::to_json(&resnet);
    let back = onnx::parse_model(&text)?;
    assert_eq!(back.layers(), resnet.layers());
    println!(
        "round-trip ok: {} ({} bytes of JSON)",
        back.name(),
        text.len()
    );
    Ok(())
}
