//! Power-constraint sweep: how the synthesized accelerator's efficiency,
//! throughput and latency scale with the user's power budget, including the
//! feasibility cliff below which one weight copy no longer fits (the
//! Eq. (2)/(3) interplay).
//!
//! ```text
//! cargo run --release --example power_sweep
//! ```

use pimsyn_arch::Watts;
use pimsyn_dse::{minimum_feasible_power, sweep_power, DseConfig};
use pimsyn_model::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = zoo::alexnet_cifar(10);
    let cfg = DseConfig::fast(Watts(1.0)); // power is overridden per sample
    println!("sweeping {} across power budgets:\n", model.name());
    println!(
        "{:>8} {:>10} {:>12} {:>12} {:>10}",
        "power", "feasible", "TOPS/W", "TOPS", "ms/img"
    );

    let powers: Vec<Watts> = [1.0, 2.0, 4.0, 6.0, 9.0, 12.0, 18.0, 24.0]
        .into_iter()
        .map(Watts)
        .collect();
    for p in sweep_power(&model, &cfg, &powers) {
        println!(
            "{:>6.1} W {:>10} {:>12.3} {:>12.3} {:>10.3}",
            p.power.value(),
            if p.feasible { "yes" } else { "no" },
            p.efficiency,
            p.throughput_ops / 1e12,
            if p.feasible {
                p.latency * 1e3
            } else {
                f64::NAN
            },
        );
    }

    let min = minimum_feasible_power(&model, &cfg, 0.5, 24.0, 0.25)?;
    println!("\nminimum feasible power (bisection): {:.2} W", min.value());
    Ok(())
}
