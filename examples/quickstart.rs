//! Quickstart: synthesize a PIM accelerator for CIFAR-AlexNet under a 9 W
//! power constraint and print the full implementation report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pimsyn::{SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a trained, quantified CNN (here: from the built-in zoo; see
    //    the `onnx_import` example for external models).
    let model = zoo::alexnet_cifar(10);
    println!("input model: {model}");

    // 2. State the power constraint and synthesis options. `fast` keeps the
    //    search in the sub-second range; use `SynthesisOptions::new` for the
    //    paper-scale Algorithm 1 traversal.
    let options = SynthesisOptions::fast(Watts(9.0)).with_cycle_validation(2);

    // 3. One-click synthesis: weight duplication -> dataflow compilation ->
    //    macro partitioning -> components allocation, DSE-wrapped.
    let result = Synthesizer::new(options).synthesize(&model)?;

    // 4. Inspect the outcome.
    println!("{}", result.report_text());
    println!(
        "cycle-accurate check: {:.3} ms/image at {:.3} TOPS/W",
        result.best_report().latency.millis(),
        result.best_report().efficiency_tops_per_watt(),
    );
    Ok(())
}
