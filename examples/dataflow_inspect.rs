//! Dataflow deep-dive: compile a small CNN into the PIM IR, materialize the
//! explicit DAG, and export a Graphviz snippet of the first pipeline stages.
//!
//! ```text
//! cargo run --release --example dataflow_inspect
//! ```

use pimsyn_arch::{CrossbarConfig, DacConfig};
use pimsyn_ir::Dataflow;
use pimsyn_model::{ModelBuilder, TensorShape};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A three-layer toy CNN keeps the DAG small enough to materialize fully.
    let mut b = ModelBuilder::new("toy", TensorShape::new(3, 16, 16));
    let c1 = b.conv("conv1", None, 16, 3, 1, 1);
    let r1 = b.relu("relu1", c1);
    let p1 = b.max_pool("pool1", r1, 2, 2);
    let c2 = b.conv("conv2", Some(p1), 32, 3, 1, 1);
    let r2 = b.relu("relu2", c2);
    let f = b.flatten("flatten", r2);
    b.linear("fc", f, 10);
    let model = b.build()?;

    let dataflow = Dataflow::compile(
        &model,
        CrossbarConfig::new(128, 2)?,
        DacConfig::new(4)?,
        &[8, 4, 1],
    )?;

    println!("compiled {} layer programs:", dataflow.programs().len());
    for p in dataflow.programs() {
        println!(
            "  {:<8} dup {:>2} blocks {:>4} bits {} xbars {:>3} adc/blk-bit {:>5} load/blk {:>5}",
            p.name, p.wt_dup, p.blocks, p.bits, p.crossbars, p.adc_samples, p.load_elems
        );
    }

    println!("\ninter-layer pipeline fill (Fig. 4 semantics):");
    for consumer in 1..dataflow.programs().len() {
        for &producer in &dataflow.program(consumer).producers.clone() {
            println!(
                "  layer {consumer} waits for {} block(s) of layer {producer}",
                dataflow.fill_blocks(consumer, producer)
            );
        }
    }

    let dag = dataflow.build_dag(1_000_000)?;
    let (comp, intra, inter) = dag.category_counts();
    println!(
        "\nexplicit IR DAG: {} nodes / {} edges (computation {comp}, intra-macro {intra}, \
         inter-macro {inter}), depth {}",
        dag.node_count(),
        dag.edge_count(),
        dag.depth()
    );

    println!("\nGraphviz preview (first 12 nodes):\n{}", dag.to_dot(12));
    Ok(())
}
