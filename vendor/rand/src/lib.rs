//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small, fully deterministic subset of the `rand`
//! API that PIMSYN's metaheuristics use: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], plus the [`Rng`] methods `gen`,
//! `gen_bool` and `gen_range` over integer and float ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! fast, and reproducible across platforms. It is **not** the upstream
//! `StdRng` stream (upstream is ChaCha12); PIMSYN only relies on
//! determinism for a fixed seed, never on a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Re-exported RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// A seedable, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding interface, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Random-value interface, mirroring the used subset of `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` (uniform over its natural domain;
    /// `f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    /// Samples uniformly from a (half-open or inclusive) range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Types samplable by [`Rng::gen`], mirroring `rand::distributions::Standard`
/// coverage for the subset PIMSYN needs.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges samplable by [`Rng::gen_range`], mirroring `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` via Lemire-style rejection.
fn uniform_below<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_ranges!(usize, u64, u32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
            seen_lo |= w == 1;
            seen_hi |= w == 4;
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints must both occur");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }
}
