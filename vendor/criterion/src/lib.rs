//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment cannot reach crates.io, so this workspace vendors
//! the minimal API surface PIMSYN's benches use: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`], [`criterion_group!`] and [`criterion_main!`].
//!
//! Measurement is intentionally simple — `sample_size` timed samples of the
//! closure with min/median/max wall-clock reporting — enough to compare
//! stage costs across commits, without criterion's statistical machinery.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts (and ignores) criterion CLI arguments such as `--bench`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Prints the closing summary line.
    pub fn final_summary(&self) {
        println!("(vendored criterion shim: wall-clock timings only)");
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Times a single benchmark outside any group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; mirrors `criterion::Bencher`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `f` (called once per sample by the harness).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::default();
    // One untimed warm-up, then the requested samples.
    f(&mut b);
    b.samples.clear();
    for _ in 0..samples {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    b.samples.sort();
    let median = b.samples[b.samples.len() / 2];
    let min = b.samples[0];
    let max = b.samples[b.samples.len() - 1];
    println!(
        "{name:<44} median {:>12?}  (min {:?}, max {:?}, n={})",
        median,
        min,
        max,
        b.samples.len()
    );
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// benchmark with a default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $bench(&mut c); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` that runs the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().configure_from_args().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
