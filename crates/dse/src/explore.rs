//! The full DSE flow of Algorithm 1: traverse the PIM-related design space
//! (`RatioRram x ResRram x XbSize`), filter weight-duplication candidates
//! with SA, and for each candidate and DAC resolution run the EA-based macro
//! partitioning (which itself invokes components allocation and performance
//! evaluation). Outer design points are independent, so they run on scoped
//! worker threads with per-point deterministic seeds.
//!
//! Exploration is observable and controllable: [`run_dse_observed`] threads
//! an [`ExploreContext`] through every stage, emitting typed
//! [`ExploreEvent`](crate::ExploreEvent)s and honoring cancellation and
//! wall-clock / evaluation budgets. [`run_dse`] is the blocking, unobserved
//! wrapper.

use std::sync::Mutex;

use pimsyn_arch::{Architecture, DacConfig, HardwareParams, MacroMode, Watts};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;
use pimsyn_sim::SimReport;

use crate::backend::EvalBackendConfig;
use crate::ctx::{ExploreContext, ExploreEvent, StopReason, SynthesisStage};
use crate::ea::{run_ea_counted, EaConfig};
use crate::error::DseError;
use crate::eval::{CandidateEvaluator, EvalCacheConfig};
use crate::sa::{no_duplication, woho_proportional, wt_dup_candidates_cached, SaConfig};
use crate::space::{DesignPoint, DesignSpace};

/// How weight-duplication factors are chosen (stage 1 of the synthesis).
///
/// The paper's contribution is the SA filter; the other strategies are the
/// baselines of Fig. 7 and allow running them through the *same* macro
/// partitioning and components allocation stages.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum WtDupStrategy {
    /// SA-based filter (Sec. IV-A) — the paper's method.
    #[default]
    SimulatedAnnealing,
    /// `WtDup_i` proportional to `WO_i x HO_i` (ISAAC/PipeLayer heuristic).
    WohoProportional,
    /// One weight copy per layer (prior exploration works \[6\]\[7\]).
    NoDuplication,
    /// User-pinned duplication vectors (each must match the layer count).
    Fixed(Vec<Vec<usize>>),
}

/// Configuration of the complete exploration flow.
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// The user's total power constraint (the paper's primary input).
    pub total_power: Watts,
    /// Device constants (Table III defaults).
    pub hw: HardwareParams,
    /// Design space to traverse (Table I).
    pub space: DesignSpace,
    /// Weight-duplication strategy (stage 1).
    pub strategy: WtDupStrategy,
    /// SA filter settings (used by [`WtDupStrategy::SimulatedAnnealing`]).
    pub sa: SaConfig,
    /// EA explorer settings.
    pub ea: EaConfig,
    /// Identical vs specialized macros (Fig. 8 ablates this).
    pub macro_mode: MacroMode,
    /// Run outer design points on worker threads.
    pub parallel: bool,
    /// Memoization of candidate scoring (the [`CandidateEvaluator`]'s
    /// caches). Enabled by default; caching is transparent — cached and
    /// uncached runs produce bit-identical outcomes.
    pub eval_cache: EvalCacheConfig,
    /// Where candidate scoring runs (inline, thread pool or subprocess
    /// workers) and whether the evaluation memo persists across runs. Every
    /// backend is bit-identical; only wall-clock differs.
    pub backend: EvalBackendConfig,
    /// Base seed; every stochastic stage derives its own deterministic seed
    /// from it, so results are reproducible even with `parallel = true`.
    pub seed: u64,
}

impl DseConfig {
    /// Paper-scale exploration under the given power constraint.
    pub fn new(total_power: Watts) -> Self {
        Self {
            total_power,
            hw: HardwareParams::date24(),
            space: DesignSpace::paper(),
            strategy: WtDupStrategy::SimulatedAnnealing,
            sa: SaConfig::paper(),
            ea: EaConfig::paper(),
            macro_mode: MacroMode::Specialized,
            parallel: true,
            eval_cache: EvalCacheConfig::default(),
            backend: EvalBackendConfig::default(),
            seed: 0x9127_51AE,
        }
    }

    /// Reduced exploration for tests, examples and quick sweeps.
    pub fn fast(total_power: Watts) -> Self {
        Self {
            space: DesignSpace::reduced(),
            sa: SaConfig::fast(),
            ea: EaConfig::fast(),
            parallel: false,
            ..Self::new(total_power)
        }
    }
}

/// Outcome at one outer design point (for exploration reports).
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The design point.
    pub point: DesignPoint,
    /// Best efficiency found there (TOPS/W), 0 when infeasible.
    pub best_efficiency: f64,
    /// Candidate architectures evaluated at this point.
    pub evaluations: usize,
}

/// The best accelerator found by the DSE flow, with provenance.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// The winning architecture (all Table I variables fixed).
    pub architecture: Architecture,
    /// Its compiled dataflow.
    pub dataflow: Dataflow,
    /// The winning weight-duplication vector.
    pub wt_dup: Vec<usize>,
    /// Analytic evaluation of the winner.
    pub report: SimReport,
    /// Total candidate evaluations across the whole flow.
    pub evaluations: usize,
    /// Per-design-point summary (exploration history). With an exhausted
    /// budget, only the points actually explored appear here.
    pub history: Vec<PointResult>,
    /// Whether the search ran to completion or stopped on a budget.
    pub stop_reason: StopReason,
}

struct PointBest {
    architecture: Architecture,
    dataflow: Dataflow,
    wt_dup: Vec<usize>,
    report: SimReport,
}

/// Explores one outer design point (lines 6-12 of Alg. 1), emitting stage
/// events for the four-phase flow of Fig. 3.
fn explore_point(
    model: &Model,
    cfg: &DseConfig,
    point: DesignPoint,
    point_idx: usize,
    ctx: &ExploreContext<'_>,
    evaluator: &CandidateEvaluator<'_>,
) -> (PointResult, Option<PointBest>) {
    let mut result = PointResult {
        point,
        best_efficiency: 0.0,
        evaluations: 0,
    };
    let finish_point = |result: &PointResult, ctx: &ExploreContext<'_>| {
        ctx.record_fitness(point_idx, result.best_efficiency);
        ctx.emit_evaluator_stats(point_idx, &|| evaluator.stats());
        ctx.emit(ExploreEvent::DesignPointEvaluated {
            point,
            point_index: point_idx,
            best_efficiency: result.best_efficiency,
            evaluations: result.evaluations,
        });
    };

    // Eq. (3) bounds crossbars by ReRAM power alone, but every crossbar row
    // carries a DAC whose power must come out of the (1 - RatioRram) share.
    // Cap the crossbar count so DACs consume at most half that share,
    // leaving room for ADCs/ALUs (otherwise every near-budget duplication
    // candidate is peripherally infeasible and the point dies).
    let eq3 = point
        .crossbar
        .budget(cfg.total_power, point.ratio_rram, &cfg.hw);
    let dac_min = cfg.hw.dac_power_lut[0].value() * point.crossbar.size() as f64;
    let dac_cap = (0.5 * (1.0 - point.ratio_rram) * cfg.total_power.value() / dac_min) as usize;
    // The cap is a pruning heuristic: never let it cut below one weight copy
    // (Eq. (3) via `eq3` remains the hard feasibility constraint).
    let one_copy: usize = model
        .weight_layers()
        .map(|wl| {
            point
                .crossbar
                .crossbar_set(wl, model.precision().weight_bits())
        })
        .sum();
    let budget = eq3.min(dac_cap.max(one_copy));

    // Stage 1 — weight duplication.
    ctx.emit(ExploreEvent::StageStarted {
        point_index: point_idx,
        stage: SynthesisStage::WeightDuplication,
    });
    let candidates = match &cfg.strategy {
        WtDupStrategy::SimulatedAnnealing => {
            let sa_cfg = SaConfig {
                seed: cfg.seed ^ (point_idx as u64) << 8,
                ..cfg.sa.clone()
            };
            wt_dup_candidates_cached(model, point.crossbar, budget, &sa_cfg, ctx, evaluator).ok()
        }
        WtDupStrategy::WohoProportional => woho_proportional(model, point.crossbar, budget)
            .ok()
            .map(|c| vec![c]),
        WtDupStrategy::NoDuplication => no_duplication(model, point.crossbar, budget)
            .ok()
            .map(|c| vec![c]),
        WtDupStrategy::Fixed(vs) => Some(vs.clone()),
    };
    ctx.emit(ExploreEvent::StageFinished {
        point_index: point_idx,
        stage: SynthesisStage::WeightDuplication,
    });
    let Some(candidates) = candidates else {
        finish_point(&result, ctx);
        return (result, None);
    };

    // Stage 2 — dataflow compilation (every candidate x DAC resolution).
    // Only the compilable combinations are kept, not the compiled IR: a
    // paper-effort point has up to 30 x 3 of them, and retaining every
    // Dataflow until stage 3 would multiply peak memory for nothing —
    // recompiling one on demand costs microseconds.
    ctx.emit(ExploreEvent::StageStarted {
        point_index: point_idx,
        stage: SynthesisStage::DataflowCompilation,
    });
    let mut compilable: Vec<(usize, &Vec<usize>, DacConfig)> = Vec::new();
    'compile: for (ci, dup) in candidates.iter().enumerate() {
        for dac in cfg.space.dacs() {
            if ctx.should_stop() {
                break 'compile;
            }
            if Dataflow::compile(model, point.crossbar, dac, dup).is_ok() {
                compilable.push((ci, dup, dac));
            }
        }
    }
    ctx.emit(ExploreEvent::StageFinished {
        point_index: point_idx,
        stage: SynthesisStage::DataflowCompilation,
    });

    // Stage 3 — EA-based macro partitioning (components allocation and
    // analytic evaluation run per candidate inside the EA loop).
    ctx.emit(ExploreEvent::StageStarted {
        point_index: point_idx,
        stage: SynthesisStage::MacroPartitioning,
    });
    let mut best: Option<(f64, PointBest)> = None;
    for (ci, dup, dac) in compilable {
        if ctx.should_stop() {
            break;
        }
        let Ok(df) = Dataflow::compile(model, point.crossbar, dac, dup) else {
            continue; // compiled in stage 2; deterministic, so unreachable
        };
        let ea_cfg = EaConfig {
            seed: cfg.seed ^ ((point_idx as u64) << 20) ^ ((ci as u64) << 4) ^ dac.bits() as u64,
            ..cfg.ea.clone()
        };
        let (evaluations, outcome) = run_ea_counted(&df, point, &ea_cfg, ctx, evaluator);
        // Count what actually ran, feasible or not, so the reported totals
        // agree with the budget counter.
        result.evaluations += evaluations;
        if let Ok(out) = outcome {
            if best.as_ref().is_none_or(|(f, _)| out.fitness > *f) {
                result.best_efficiency = out.fitness;
                best = Some((
                    out.fitness,
                    PointBest {
                        architecture: out.architecture,
                        dataflow: df,
                        wt_dup: dup.clone(),
                        report: out.report,
                    },
                ));
            }
        }
    }
    ctx.emit(ExploreEvent::StageFinished {
        point_index: point_idx,
        stage: SynthesisStage::MacroPartitioning,
    });

    // Stage 4 — components allocation of the point winner (allocation ran
    // per EA candidate; here the winning implementation is re-validated
    // against the architecture template's structural rules).
    ctx.emit(ExploreEvent::StageStarted {
        point_index: point_idx,
        stage: SynthesisStage::ComponentAllocation,
    });
    if let Some((_, b)) = &best {
        if b.architecture.validate(model).is_err() {
            best = None;
            result.best_efficiency = 0.0;
        }
    }
    ctx.emit(ExploreEvent::StageFinished {
        point_index: point_idx,
        stage: SynthesisStage::ComponentAllocation,
    });

    finish_point(&result, ctx);
    (result, best.map(|(_, b)| b))
}

/// Runs the complete Algorithm 1 flow for `model` under `cfg`, blocking
/// until done, with no observation, cancellation or budget.
///
/// # Errors
///
/// [`DseError::NoFeasibleSolution`] when no design point yields a working
/// accelerator under the power constraint.
pub fn run_dse(model: &Model, cfg: &DseConfig) -> Result<DseOutcome, DseError> {
    let ctx = ExploreContext::unobserved();
    run_dse_observed(model, cfg, &ctx)
}

/// Runs Algorithm 1 under an [`ExploreContext`]: progress events stream to
/// the context's observer, cancellation is honored between stages and
/// inside the metaheuristic loops, and budgets stop the search gracefully
/// (the best architecture found before exhaustion is still returned, with
/// [`DseOutcome::stop_reason`] recording why the run ended).
///
/// # Errors
///
/// - [`DseError::Cancelled`] when the context's token was cancelled.
/// - [`DseError::NoFeasibleSolution`] when nothing feasible was found
///   (including budgets that expire before the first feasible candidate).
pub fn run_dse_observed(
    model: &Model,
    cfg: &DseConfig,
    ctx: &ExploreContext<'_>,
) -> Result<DseOutcome, DseError> {
    let points = cfg.space.points();
    // One evaluator (and memo cache) spans every stage of every design
    // point; worker threads share it by reference. The evaluator composes
    // the configured scoring backend and, when a cache file is configured,
    // warm-starts its memo from it.
    let evaluator = CandidateEvaluator::with_backend(
        model,
        cfg.total_power,
        &cfg.hw,
        cfg.macro_mode,
        cfg.ea.objective,
        cfg.eval_cache,
        &cfg.backend,
    );
    let results: Mutex<Vec<(usize, PointResult, Option<PointBest>)>> =
        Mutex::new(Vec::with_capacity(points.len()));

    if cfg.parallel && points.len() > 1 {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let workers = workers.min(points.len());
        // Dynamic work queue rather than static striping: points differ
        // wildly in cost (budget-infeasible ones die in the SA stage), so a
        // fixed assignment would leave workers idle behind one slow point.
        // Per-point seeds derive from the point index, so which worker runs
        // a point never affects the result.
        let next = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..workers {
                let results = &results;
                let points = &points;
                let next = &next;
                let evaluator = &evaluator;
                s.spawn(move || loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= points.len() || ctx.should_stop() {
                        break;
                    }
                    let (res, best) = explore_point(model, cfg, points[i], i, ctx, evaluator);
                    results.lock().expect("result mutex").push((i, res, best));
                });
            }
        });
    } else {
        for (i, &point) in points.iter().enumerate() {
            if ctx.should_stop() {
                break;
            }
            let (res, best) = explore_point(model, cfg, point, i, ctx, &evaluator);
            results.lock().expect("result mutex").push((i, res, best));
        }
    }

    // Finish the evaluation layer first: worker processes wind down and,
    // when persistence is configured, the memo (including a cancelled or
    // curtailed run's partial results) is written back to the cache file so
    // the next invocation warm-starts.
    evaluator.flush();

    // Cancellation always wins, even when it raced the natural finish: the
    // caller asked for no result. Budget exhaustion only counts when a
    // cooperative check actually curtailed the search — a budget that runs
    // out exactly as the last point completes is still a completed run.
    if ctx.cancel_token().is_cancelled() {
        return Err(DseError::Cancelled);
    }
    let stop_reason = match ctx.observed_stop() {
        Some(StopReason::Cancelled) => return Err(DseError::Cancelled),
        Some(reason) => reason,
        None => StopReason::Completed,
    };

    let mut results = results.into_inner().expect("result mutex");
    results.sort_by_key(|(i, _, _)| *i);

    let mut history = Vec::with_capacity(results.len());
    let mut evaluations = 0usize;
    let mut winner: Option<(f64, usize, PointBest)> = None;
    for (i, res, best) in results {
        evaluations += res.evaluations;
        if let Some(b) = best {
            let f = cfg.ea.objective.fitness(&b.report);
            // Deterministic tie-break on point index.
            let better = match &winner {
                None => true,
                Some((wf, wi, _)) => f > *wf || (f == *wf && i < *wi),
            };
            if better {
                winner = Some((f, i, b));
            }
        }
        history.push(res);
    }

    match winner {
        Some((_, _, b)) => Ok(DseOutcome {
            architecture: b.architecture,
            dataflow: b.dataflow,
            wt_dup: b.wt_dup,
            report: b.report,
            evaluations,
            history,
            stop_reason,
        }),
        None => Err(DseError::NoFeasibleSolution),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{CancelToken, ExploreBudget};
    use pimsyn_arch::CrossbarConfig;
    use pimsyn_model::zoo;

    fn tiny_cfg() -> DseConfig {
        let mut cfg = DseConfig::fast(Watts(6.0));
        cfg.space = DesignSpace::single(0.3, CrossbarConfig::new(128, 2).unwrap(), 1);
        cfg.sa.candidates = 2;
        cfg.sa.iterations = 150;
        cfg.ea = EaConfig {
            population: 6,
            generations: 3,
            ..EaConfig::fast()
        };
        cfg
    }

    #[test]
    fn dse_finds_architecture_for_cifar_alexnet() {
        let model = zoo::alexnet_cifar(10);
        let out = run_dse(&model, &tiny_cfg()).unwrap();
        assert!(out.report.efficiency_tops_per_watt() > 0.0);
        assert!(out.evaluations > 0);
        assert_eq!(out.history.len(), 1);
        assert_eq!(out.stop_reason, StopReason::Completed);
        out.architecture.validate(&model).unwrap();
        assert_eq!(out.wt_dup.len(), model.weight_layer_count());
    }

    #[test]
    fn dse_is_deterministic() {
        let model = zoo::alexnet_cifar(10);
        let a = run_dse(&model, &tiny_cfg()).unwrap();
        let b = run_dse(&model, &tiny_cfg()).unwrap();
        assert_eq!(a.wt_dup, b.wt_dup);
        assert_eq!(
            a.report.efficiency_tops_per_watt(),
            b.report.efficiency_tops_per_watt()
        );
    }

    #[test]
    fn parallel_matches_serial() {
        let model = zoo::alexnet_cifar(10);
        let mut serial = tiny_cfg();
        serial.space = DesignSpace::reduced();
        serial.parallel = false;
        let mut parallel = serial.clone();
        parallel.parallel = true;
        let a = run_dse(&model, &serial).unwrap();
        let b = run_dse(&model, &parallel).unwrap();
        assert_eq!(a.wt_dup, b.wt_dup);
        assert_eq!(
            a.report.efficiency_tops_per_watt(),
            b.report.efficiency_tops_per_watt()
        );
    }

    #[test]
    fn eval_cache_is_transparent_bit_identical() {
        let model = zoo::alexnet_cifar(10);
        let cached = tiny_cfg();
        assert!(cached.eval_cache.enabled, "cache must default on");
        let mut plain = tiny_cfg();
        plain.eval_cache = EvalCacheConfig::disabled();
        let a = run_dse(&model, &cached).unwrap();
        let b = run_dse(&model, &plain).unwrap();
        assert_eq!(a.wt_dup, b.wt_dup);
        assert_eq!(a.architecture, b.architecture);
        assert_eq!(a.report, b.report);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.history, b.history);
        assert_eq!(a.stop_reason, b.stop_reason);
    }

    #[test]
    fn thread_pool_backend_matches_inline() {
        use crate::backend::{BackendKind, EvalBackendConfig};
        let model = zoo::alexnet_cifar(10);
        let mut inline = tiny_cfg();
        inline.space = DesignSpace::reduced();
        inline.parallel = false;
        let mut threads = inline.clone();
        threads.backend = EvalBackendConfig::new(BackendKind::ThreadPool { workers: 2 });
        let a = run_dse(&model, &inline).unwrap();
        let b = run_dse(&model, &threads).unwrap();
        assert_eq!(a.wt_dup, b.wt_dup);
        assert_eq!(a.architecture, b.architecture);
        assert_eq!(a.report, b.report);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn persistent_cache_warm_start_is_bit_identical_with_high_hit_rate() {
        use crate::backend::EvalBackendConfig;
        use std::sync::Mutex;
        let model = zoo::alexnet_cifar(10);
        let path =
            std::env::temp_dir().join(format!("pimsyn-dse-warm-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut cfg = tiny_cfg();
        cfg.backend = EvalBackendConfig::inline().with_cache_file(&path);

        let run = |cfg: &DseConfig| {
            let last: Mutex<Option<crate::EvaluatorStats>> = Mutex::new(None);
            let observer = |ev: ExploreEvent| {
                if let ExploreEvent::EvaluatorStats { stats, .. } = ev {
                    *last.lock().unwrap() = Some(stats);
                }
            };
            let ctx =
                ExploreContext::new(&observer, CancelToken::new(), ExploreBudget::unlimited());
            let out = run_dse_observed(&model, cfg, &ctx).unwrap();
            (out, last.into_inner().unwrap().unwrap())
        };
        let (cold, cold_stats) = run(&cfg);
        assert_eq!(cold_stats.preloaded, 0);
        assert!(path.exists(), "flush must write the cache file");
        let (warm, warm_stats) = run(&cfg);
        // Bit-identical outcome, including evaluation counts and history.
        assert_eq!(cold.wt_dup, warm.wt_dup);
        assert_eq!(cold.architecture, warm.architecture);
        assert_eq!(cold.report, warm.report);
        assert_eq!(cold.evaluations, warm.evaluations);
        assert_eq!(cold.history, warm.history);
        assert_eq!(cold.stop_reason, warm.stop_reason);
        // The warm run preloads the memo and serves most requests from it.
        assert!(warm_stats.preloaded > 0);
        assert!(
            warm_stats.hit_rate() >= 0.5,
            "warm start must report >=50% hits, got {warm_stats:?}"
        );
        assert!(warm_stats.unique_evaluations < cold_stats.unique_evaluations);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn evaluator_stats_report_cache_hits() {
        use std::sync::Mutex;
        let model = zoo::alexnet_cifar(10);
        let last: Mutex<Option<crate::EvaluatorStats>> = Mutex::new(None);
        let observer = |ev: ExploreEvent| {
            if let ExploreEvent::EvaluatorStats { stats, .. } = ev {
                *last.lock().unwrap() = Some(stats);
            }
        };
        let ctx = ExploreContext::new(&observer, CancelToken::new(), ExploreBudget::unlimited());
        let mut cfg = tiny_cfg();
        // A few extra generations so unmutated tournament winners (identical
        // genes) reliably resurface.
        cfg.ea.generations = 6;
        let out = run_dse_observed(&model, &cfg, &ctx).unwrap();
        let stats = last.lock().unwrap().expect("stats event must be emitted");
        assert_eq!(stats.scored, out.evaluations, "scored == budget-charged");
        assert_eq!(stats.unique_evaluations + stats.cache_hits, stats.scored);
        assert!(
            stats.cache_hits > 0,
            "metaheuristics revisit genes; expected hits, got {stats:?}"
        );
        assert!(stats.unique_evaluations < stats.scored);
        assert!(stats.hit_rate() > 0.0);
        assert!(
            stats.sa_probes > 0,
            "SA probes must route through the evaluator"
        );
        assert!(stats.layer_misses > 0);
    }

    #[test]
    fn impossible_power_yields_no_solution() {
        let model = zoo::vgg16();
        let mut cfg = tiny_cfg();
        cfg.total_power = Watts(0.01);
        assert!(matches!(
            run_dse(&model, &cfg),
            Err(DseError::NoFeasibleSolution)
        ));
    }

    #[test]
    fn larger_power_budget_does_not_hurt() {
        let model = zoo::alexnet_cifar(10);
        let mut small = tiny_cfg();
        small.total_power = Watts(5.0);
        let mut large = tiny_cfg();
        large.total_power = Watts(12.0);
        let rs = run_dse(&model, &small).unwrap();
        let rl = run_dse(&model, &large).unwrap();
        // More power, more throughput (efficiency may vary, throughput must not drop much).
        assert!(
            rl.report.throughput_ops >= rs.report.throughput_ops * 0.8,
            "large {} vs small {}",
            rl.report.throughput_ops,
            rs.report.throughput_ops
        );
    }

    #[test]
    fn pre_cancelled_context_aborts_immediately() {
        let model = zoo::alexnet_cifar(10);
        let cancel = CancelToken::new();
        cancel.cancel();
        let ctx = ExploreContext::new(
            &crate::ctx::NullObserver,
            cancel,
            ExploreBudget::unlimited(),
        );
        assert!(matches!(
            run_dse_observed(&model, &tiny_cfg(), &ctx),
            Err(DseError::Cancelled)
        ));
    }

    #[test]
    fn evaluation_budget_stops_early_but_returns_best() {
        let model = zoo::alexnet_cifar(10);
        let mut cfg = tiny_cfg();
        cfg.space = DesignSpace::reduced(); // 4 points
                                            // Enough budget for roughly one point's EA, not for all four.
        let ctx = ExploreContext::new(
            &crate::ctx::NullObserver,
            CancelToken::new(),
            ExploreBudget::unlimited().with_max_evaluations(30),
        );
        match run_dse_observed(&model, &cfg, &ctx) {
            Ok(out) => {
                assert_eq!(out.stop_reason, StopReason::EvaluationBudgetReached);
                assert!(out.history.len() < cfg.space.outer_len());
                assert!(out.report.efficiency_tops_per_watt() > 0.0);
            }
            // A budget this tight may also legitimately stop before the
            // first feasible candidate.
            Err(e) => assert!(matches!(e, DseError::NoFeasibleSolution)),
        }
    }

    #[test]
    fn observed_run_emits_ordered_stage_events() {
        use std::sync::Mutex;
        let model = zoo::alexnet_cifar(10);
        let events: Mutex<Vec<ExploreEvent>> = Mutex::new(Vec::new());
        let observer = |ev: ExploreEvent| events.lock().unwrap().push(ev);
        let ctx = ExploreContext::new(&observer, CancelToken::new(), ExploreBudget::unlimited());
        run_dse_observed(&model, &tiny_cfg(), &ctx).unwrap();
        let events = events.into_inner().unwrap();
        // One point: the four stages in paper order, each started before
        // finished, then the point summary.
        let mut stages_seen = Vec::new();
        for ev in &events {
            if let ExploreEvent::StageStarted { stage, .. } = ev {
                stages_seen.push(*stage);
            }
        }
        assert_eq!(stages_seen, SynthesisStage::ALL.to_vec());
        assert!(matches!(
            events.last(),
            Some(ExploreEvent::DesignPointEvaluated { .. })
        ));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, ExploreEvent::ImprovedBest { .. })),
            "a feasible run must improve on the initial zero best"
        );
    }
}
