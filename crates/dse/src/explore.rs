//! The full DSE flow of Algorithm 1: traverse the PIM-related design space
//! (`RatioRram x ResRram x XbSize`), filter weight-duplication candidates
//! with SA, and for each candidate and DAC resolution run the EA-based macro
//! partitioning (which itself invokes components allocation and performance
//! evaluation). Outer design points are independent, so they run on worker
//! threads (crossbeam scoped threads) with per-point deterministic seeds.

use std::sync::Mutex;

use pimsyn_arch::{Architecture, HardwareParams, MacroMode, Watts};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;
use pimsyn_sim::SimReport;

use crate::ea::{explore_macro_partitioning, EaConfig};
use crate::error::DseError;
use crate::sa::{no_duplication, woho_proportional, wt_dup_candidates, SaConfig};
use crate::space::{DesignPoint, DesignSpace};

/// How weight-duplication factors are chosen (stage 1 of the synthesis).
///
/// The paper's contribution is the SA filter; the other strategies are the
/// baselines of Fig. 7 and allow running them through the *same* macro
/// partitioning and components allocation stages.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum WtDupStrategy {
    /// SA-based filter (Sec. IV-A) — the paper's method.
    #[default]
    SimulatedAnnealing,
    /// `WtDup_i` proportional to `WO_i x HO_i` (ISAAC/PipeLayer heuristic).
    WohoProportional,
    /// One weight copy per layer (prior exploration works \[6\]\[7\]).
    NoDuplication,
    /// User-pinned duplication vectors (each must match the layer count).
    Fixed(Vec<Vec<usize>>),
}

/// Configuration of the complete exploration flow.
#[derive(Debug, Clone, PartialEq)]
pub struct DseConfig {
    /// The user's total power constraint (the paper's primary input).
    pub total_power: Watts,
    /// Device constants (Table III defaults).
    pub hw: HardwareParams,
    /// Design space to traverse (Table I).
    pub space: DesignSpace,
    /// Weight-duplication strategy (stage 1).
    pub strategy: WtDupStrategy,
    /// SA filter settings (used by [`WtDupStrategy::SimulatedAnnealing`]).
    pub sa: SaConfig,
    /// EA explorer settings.
    pub ea: EaConfig,
    /// Identical vs specialized macros (Fig. 8 ablates this).
    pub macro_mode: MacroMode,
    /// Run outer design points on worker threads.
    pub parallel: bool,
    /// Base seed; every stochastic stage derives its own deterministic seed
    /// from it, so results are reproducible even with `parallel = true`.
    pub seed: u64,
}

impl DseConfig {
    /// Paper-scale exploration under the given power constraint.
    pub fn new(total_power: Watts) -> Self {
        Self {
            total_power,
            hw: HardwareParams::date24(),
            space: DesignSpace::paper(),
            strategy: WtDupStrategy::SimulatedAnnealing,
            sa: SaConfig::paper(),
            ea: EaConfig::paper(),
            macro_mode: MacroMode::Specialized,
            parallel: true,
            seed: 0x9127_51AE,
        }
    }

    /// Reduced exploration for tests, examples and quick sweeps.
    pub fn fast(total_power: Watts) -> Self {
        Self {
            space: DesignSpace::reduced(),
            sa: SaConfig::fast(),
            ea: EaConfig::fast(),
            parallel: false,
            ..Self::new(total_power)
        }
    }
}

/// Outcome at one outer design point (for exploration reports).
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// The design point.
    pub point: DesignPoint,
    /// Best efficiency found there (TOPS/W), 0 when infeasible.
    pub best_efficiency: f64,
    /// Candidate architectures evaluated at this point.
    pub evaluations: usize,
}

/// The best accelerator found by the DSE flow, with provenance.
#[derive(Debug, Clone)]
pub struct DseOutcome {
    /// The winning architecture (all Table I variables fixed).
    pub architecture: Architecture,
    /// Its compiled dataflow.
    pub dataflow: Dataflow,
    /// The winning weight-duplication vector.
    pub wt_dup: Vec<usize>,
    /// Analytic evaluation of the winner.
    pub report: SimReport,
    /// Total candidate evaluations across the whole flow.
    pub evaluations: usize,
    /// Per-design-point summary (exploration history).
    pub history: Vec<PointResult>,
}

struct PointBest {
    architecture: Architecture,
    dataflow: Dataflow,
    wt_dup: Vec<usize>,
    report: SimReport,
}

/// Explores one outer design point (lines 6-12 of Alg. 1).
fn explore_point(
    model: &Model,
    cfg: &DseConfig,
    point: DesignPoint,
    point_idx: usize,
) -> (PointResult, Option<PointBest>) {
    let mut result = PointResult { point, best_efficiency: 0.0, evaluations: 0 };
    // Eq. (3) bounds crossbars by ReRAM power alone, but every crossbar row
    // carries a DAC whose power must come out of the (1 - RatioRram) share.
    // Cap the crossbar count so DACs consume at most half that share,
    // leaving room for ADCs/ALUs (otherwise every near-budget duplication
    // candidate is peripherally infeasible and the point dies).
    let eq3 = point.crossbar.budget(cfg.total_power, point.ratio_rram, &cfg.hw);
    let dac_min = cfg.hw.dac_power_lut[0].value() * point.crossbar.size() as f64;
    let dac_cap =
        (0.5 * (1.0 - point.ratio_rram) * cfg.total_power.value() / dac_min) as usize;
    // The cap is a pruning heuristic: never let it cut below one weight copy
    // (Eq. (3) via `eq3` remains the hard feasibility constraint).
    let one_copy: usize = model
        .weight_layers()
        .map(|wl| point.crossbar.crossbar_set(wl, model.precision().weight_bits()))
        .sum();
    let budget = eq3.min(dac_cap.max(one_copy));

    let candidates = match &cfg.strategy {
        WtDupStrategy::SimulatedAnnealing => {
            let sa_cfg = SaConfig { seed: cfg.seed ^ (point_idx as u64) << 8, ..cfg.sa.clone() };
            match wt_dup_candidates(model, point.crossbar, budget, &sa_cfg) {
                Ok(c) => c,
                Err(_) => return (result, None),
            }
        }
        WtDupStrategy::WohoProportional => match woho_proportional(model, point.crossbar, budget)
        {
            Ok(c) => vec![c],
            Err(_) => return (result, None),
        },
        WtDupStrategy::NoDuplication => match no_duplication(model, point.crossbar, budget) {
            Ok(c) => vec![c],
            Err(_) => return (result, None),
        },
        WtDupStrategy::Fixed(vs) => vs.clone(),
    };

    let mut best: Option<(f64, PointBest)> = None;
    for (ci, dup) in candidates.iter().enumerate() {
        for dac in cfg.space.dacs() {
            let Ok(df) = Dataflow::compile(model, point.crossbar, dac, dup) else {
                continue;
            };
            let ea_cfg = EaConfig {
                seed: cfg.seed ^ ((point_idx as u64) << 20) ^ ((ci as u64) << 4) ^ dac.bits() as u64,
                ..cfg.ea.clone()
            };
            match explore_macro_partitioning(
                model,
                &df,
                point,
                cfg.total_power,
                &cfg.hw,
                cfg.macro_mode,
                &ea_cfg,
            ) {
                Ok(out) => {
                    result.evaluations += out.evaluations;
                    if best.as_ref().map_or(true, |(f, _)| out.fitness > *f) {
                        result.best_efficiency = out.fitness;
                        best = Some((
                            out.fitness,
                            PointBest {
                                architecture: out.architecture,
                                dataflow: df,
                                wt_dup: dup.clone(),
                                report: out.report,
                            },
                        ));
                    }
                }
                Err(_) => {
                    result.evaluations += 1;
                }
            }
        }
    }
    (result, best.map(|(_, b)| b))
}

/// Runs the complete Algorithm 1 flow for `model` under `cfg`.
///
/// # Errors
///
/// [`DseError::NoFeasibleSolution`] when no design point yields a working
/// accelerator under the power constraint.
pub fn run_dse(model: &Model, cfg: &DseConfig) -> Result<DseOutcome, DseError> {
    let points = cfg.space.points();
    let results: Mutex<Vec<(usize, PointResult, Option<PointBest>)>> =
        Mutex::new(Vec::with_capacity(points.len()));

    if cfg.parallel && points.len() > 1 {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let workers = workers.min(points.len());
        crossbeam::thread::scope(|s| {
            for w in 0..workers {
                let results = &results;
                let points = &points;
                s.spawn(move |_| {
                    for (i, &point) in points.iter().enumerate() {
                        if i % workers != w {
                            continue;
                        }
                        let (res, best) = explore_point(model, cfg, point, i);
                        results.lock().expect("result mutex").push((i, res, best));
                    }
                });
            }
        })
        .expect("exploration worker panicked");
    } else {
        for (i, &point) in points.iter().enumerate() {
            let (res, best) = explore_point(model, cfg, point, i);
            results.lock().expect("result mutex").push((i, res, best));
        }
    }

    let mut results = results.into_inner().expect("result mutex");
    results.sort_by_key(|(i, _, _)| *i);

    let mut history = Vec::with_capacity(results.len());
    let mut evaluations = 0usize;
    let mut winner: Option<(f64, usize, PointBest)> = None;
    for (i, res, best) in results {
        evaluations += res.evaluations;
        if let Some(b) = best {
            let f = cfg.ea.objective.fitness(&b.report);
            // Deterministic tie-break on point index.
            let better = match &winner {
                None => true,
                Some((wf, wi, _)) => f > *wf || (f == *wf && i < *wi),
            };
            if better {
                winner = Some((f, i, b));
            }
        }
        history.push(res);
    }

    match winner {
        Some((_, _, b)) => Ok(DseOutcome {
            architecture: b.architecture,
            dataflow: b.dataflow,
            wt_dup: b.wt_dup,
            report: b.report,
            evaluations,
            history,
        }),
        None => Err(DseError::NoFeasibleSolution),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::CrossbarConfig;
    use pimsyn_model::zoo;

    fn tiny_cfg() -> DseConfig {
        let mut cfg = DseConfig::fast(Watts(6.0));
        cfg.space = DesignSpace::single(0.3, CrossbarConfig::new(128, 2).unwrap(), 1);
        cfg.sa.candidates = 2;
        cfg.sa.iterations = 150;
        cfg.ea = EaConfig { population: 6, generations: 3, ..EaConfig::fast() };
        cfg
    }

    #[test]
    fn dse_finds_architecture_for_cifar_alexnet() {
        let model = zoo::alexnet_cifar(10);
        let out = run_dse(&model, &tiny_cfg()).unwrap();
        assert!(out.report.efficiency_tops_per_watt() > 0.0);
        assert!(out.evaluations > 0);
        assert_eq!(out.history.len(), 1);
        out.architecture.validate(&model).unwrap();
        assert_eq!(out.wt_dup.len(), model.weight_layer_count());
    }

    #[test]
    fn dse_is_deterministic() {
        let model = zoo::alexnet_cifar(10);
        let a = run_dse(&model, &tiny_cfg()).unwrap();
        let b = run_dse(&model, &tiny_cfg()).unwrap();
        assert_eq!(a.wt_dup, b.wt_dup);
        assert_eq!(a.report.efficiency_tops_per_watt(), b.report.efficiency_tops_per_watt());
    }

    #[test]
    fn parallel_matches_serial() {
        let model = zoo::alexnet_cifar(10);
        let mut serial = tiny_cfg();
        serial.space = DesignSpace::reduced();
        serial.parallel = false;
        let mut parallel = serial.clone();
        parallel.parallel = true;
        let a = run_dse(&model, &serial).unwrap();
        let b = run_dse(&model, &parallel).unwrap();
        assert_eq!(a.wt_dup, b.wt_dup);
        assert_eq!(
            a.report.efficiency_tops_per_watt(),
            b.report.efficiency_tops_per_watt()
        );
    }

    #[test]
    fn impossible_power_yields_no_solution() {
        let model = zoo::vgg16();
        let mut cfg = tiny_cfg();
        cfg.total_power = Watts(0.01);
        assert!(matches!(run_dse(&model, &cfg), Err(DseError::NoFeasibleSolution)));
    }

    #[test]
    fn larger_power_budget_does_not_hurt() {
        let model = zoo::alexnet_cifar(10);
        let mut small = tiny_cfg();
        small.total_power = Watts(5.0);
        let mut large = tiny_cfg();
        large.total_power = Watts(12.0);
        let rs = run_dse(&model, &small).unwrap();
        let rl = run_dse(&model, &large).unwrap();
        // More power, more throughput (efficiency may vary, throughput must not drop much).
        assert!(
            rl.report.throughput_ops >= rs.report.throughput_ops * 0.8,
            "large {} vs small {}",
            rl.report.throughput_ops,
            rs.report.throughput_ops
        );
    }
}
