//! EA-based macro partitioning explorer (Sec. IV-C, Alg. 2).
//!
//! A gene encodes `MacAlloc` exactly as in the paper: layer `i`'s entry is
//! `i*1000 + #macros`, changed to `j*1000 + #macros` when layer `i` shares
//! layer `j`'s macros (`j < i`). Two mutation operators evolve the
//! population: `mutate_num` re-draws a layer's macro count and
//! `mutate_share` toggles macro sharing. Fitness is the accelerator's power
//! efficiency as evaluated by the analytic model after running components
//! allocation on each child — exactly the stage coupling of Fig. 3.

use pimsyn_arch::{Architecture, MacroMode, Watts};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;
use pimsyn_sim::{AnalyticSummary, SimReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ctx::ExploreContext;
use crate::error::DseError;
use crate::eval::{CandidateEvaluator, CandidateScore, EvalCacheConfig};
use crate::space::DesignPoint;

/// The paper's gene encoding base: `MacAlloc_i = owner * 1000 + #macros`.
pub const GENE_BASE: u32 = 1000;

/// Upper bound on macros per layer, keeping rule (c) the binding constraint
/// for small layers while bounding NoC growth for huge ones.
const MAX_MACROS_PER_LAYER: usize = 64;

/// What the exploration maximizes.
///
/// The paper's primary objective is power efficiency (equivalent to
/// performance under a fixed power constraint, Sec. III); the Gibbon
/// comparison of Table V is EDP-based, so the explorer can optimize that
/// directly as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Objective {
    /// Maximize TOPS/W (the paper's default).
    #[default]
    PowerEfficiency,
    /// Minimize latency x energy (fitness is its reciprocal).
    EnergyDelayProduct,
}

impl Objective {
    /// Fitness (higher is better) of an evaluation under this objective.
    pub fn fitness(&self, report: &SimReport) -> f64 {
        match self {
            Objective::PowerEfficiency => report.efficiency_tops_per_watt(),
            Objective::EnergyDelayProduct => {
                let edp = report.edp_ms_mj();
                if edp > 0.0 {
                    1.0 / edp
                } else {
                    0.0
                }
            }
        }
    }

    /// [`fitness`](Self::fitness) from an [`AnalyticSummary`] instead of a
    /// full report. Both derive their metrics through the same shared
    /// expressions ([`pimsyn_sim`] metric helpers), so this is bit-identical
    /// to scoring the corresponding report — the delta evaluator depends on
    /// that.
    pub fn fitness_of_summary(&self, summary: &AnalyticSummary) -> f64 {
        match self {
            Objective::PowerEfficiency => summary.efficiency_tops_per_watt(),
            Objective::EnergyDelayProduct => {
                let edp = summary.edp_ms_mj();
                if edp > 0.0 {
                    1.0 / edp
                } else {
                    0.0
                }
            }
        }
    }
}

/// Configuration of the evolutionary explorer.
#[derive(Debug, Clone, PartialEq)]
pub struct EaConfig {
    /// Population size.
    pub population: usize,
    /// Generations (`MaxEAIterations` in Alg. 2).
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of `mutate_num` per child.
    pub mutate_num_prob: f64,
    /// Probability of `mutate_share` per child.
    pub mutate_share_prob: f64,
    /// Whether inter-layer macro sharing is explored (Fig. 9 ablates this).
    pub allow_sharing: bool,
    /// What the fitness function maximizes.
    pub objective: Objective,
    /// RNG seed.
    pub seed: u64,
}

impl EaConfig {
    /// Paper-scale exploration.
    pub fn paper() -> Self {
        Self {
            population: 16,
            generations: 24,
            tournament: 3,
            mutate_num_prob: 0.6,
            mutate_share_prob: 0.3,
            allow_sharing: true,
            objective: Objective::default(),
            seed: 0xEA5E,
        }
    }

    /// Cheap smoke-test configuration.
    pub fn fast() -> Self {
        Self {
            population: 8,
            generations: 6,
            ..Self::paper()
        }
    }
}

impl Default for EaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A macro-partitioning candidate in the paper's integer-vector encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacAllocGene(Vec<u32>);

impl MacAllocGene {
    /// Encodes explicit macro counts and sharing into the paper's format.
    ///
    /// # Panics
    ///
    /// Panics if `macros` and `shares` lengths differ, a count is zero or
    /// `>= 1000`, or a share points forward.
    pub fn encode(macros: &[usize], shares: &[Option<usize>]) -> Self {
        assert_eq!(macros.len(), shares.len());
        let v = macros
            .iter()
            .zip(shares)
            .enumerate()
            .map(|(i, (&m, &s))| {
                assert!(
                    m >= 1 && m < GENE_BASE as usize,
                    "macro count {m} out of range"
                );
                let owner = match s {
                    None => i,
                    Some(j) => {
                        assert!(j < i, "sharing must point to an earlier layer");
                        j
                    }
                };
                owner as u32 * GENE_BASE + m as u32
            })
            .collect();
        Self(v)
    }

    /// Decodes into `(macros, shares)`.
    pub fn decode(&self) -> (Vec<usize>, Vec<Option<usize>>) {
        let mut macros = Vec::with_capacity(self.0.len());
        let mut shares = Vec::with_capacity(self.0.len());
        self.decode_into(&mut macros, &mut shares);
        (macros, shares)
    }

    /// [`Self::decode`] into caller-owned buffers (cleared first), so hot
    /// loops can reuse their allocations.
    pub fn decode_into(&self, macros: &mut Vec<usize>, shares: &mut Vec<Option<usize>>) {
        macros.clear();
        shares.clear();
        macros.reserve(self.0.len());
        shares.reserve(self.0.len());
        for (i, &g) in self.0.iter().enumerate() {
            let owner = (g / GENE_BASE) as usize;
            macros.push((g % GENE_BASE) as usize);
            shares.push(if owner == i { None } else { Some(owner) });
        }
    }

    /// Raw encoded vector (`i*1000 + #macros` per layer).
    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// Reconstructs a gene from its raw encoded vector (the wire and
    /// persistence format), validating the encoding invariants instead of
    /// panicking like [`encode`](Self::encode).
    ///
    /// # Errors
    ///
    /// A human-readable message for zero macro counts or forward/self-
    /// inconsistent sharing.
    pub fn from_raw(raw: Vec<u32>) -> Result<Self, String> {
        for (i, &g) in raw.iter().enumerate() {
            let owner = (g / GENE_BASE) as usize;
            let macros = g % GENE_BASE;
            if macros == 0 {
                return Err(format!("layer {i}: macro count must be >= 1"));
            }
            if owner > i {
                return Err(format!(
                    "layer {i}: sharing must point to an earlier layer, got {owner}"
                ));
            }
        }
        Ok(Self(raw))
    }
}

/// Result of the EA exploration: the best macro partitioning found together
/// with its completed architecture and evaluation.
#[derive(Debug, Clone)]
pub struct EaOutcome {
    /// Best gene in the paper's encoding.
    pub gene: MacAllocGene,
    /// The completed architecture (components allocation included).
    pub architecture: Architecture,
    /// Analytic evaluation of the winner.
    pub report: SimReport,
    /// Fitness (TOPS/W) of the winner.
    pub fitness: f64,
    /// Candidate evaluations performed.
    pub evaluations: usize,
}

/// Rule (c) upper bound on macros for each layer: `WtDup_i x
/// ceil(WK²CI/XbSize)`, further clamped to [`MAX_MACROS_PER_LAYER`].
fn max_macros(df: &Dataflow) -> Vec<usize> {
    df.programs()
        .iter()
        .map(|p| (p.wt_dup * p.row_groups).clamp(1, MAX_MACROS_PER_LAYER))
        .collect()
}

/// One EA population member: its gene and its slim score.
type Individual = (MacAllocGene, CandidateScore);

/// Explores macro partitioning with the EA of Alg. 2 and returns the best
/// completed architecture.
///
/// # Errors
///
/// [`DseError::NoFeasibleSolution`] when no gene in the entire run produced
/// a working accelerator (budget far too small for the chosen design point).
#[allow(clippy::too_many_arguments)]
pub fn explore_macro_partitioning(
    model: &Model,
    df: &Dataflow,
    point: DesignPoint,
    total_power: Watts,
    hw: &pimsyn_arch::HardwareParams,
    macro_mode: MacroMode,
    cfg: &EaConfig,
) -> Result<EaOutcome, DseError> {
    let ctx = ExploreContext::unobserved();
    explore_macro_partitioning_observed(model, df, point, total_power, hw, macro_mode, cfg, &ctx)
}

/// [`explore_macro_partitioning_observed`] scoring through a caller-provided
/// [`CandidateEvaluator`] — the form [`run_dse_observed`](crate::run_dse_observed)
/// uses so one memo cache spans every EA invocation of a synthesis run. The
/// evaluator's objective must match `cfg.objective` (its cached fitness
/// values are what the EA ranks by).
///
/// # Errors
///
/// [`DseError::NoFeasibleSolution`] when no gene evaluated before the run
/// ended produced a working accelerator.
pub fn explore_macro_partitioning_evaluated(
    df: &Dataflow,
    point: DesignPoint,
    cfg: &EaConfig,
    ctx: &ExploreContext<'_>,
    evaluator: &CandidateEvaluator<'_>,
) -> Result<EaOutcome, DseError> {
    run_ea_counted(df, point, cfg, ctx, evaluator).1
}

/// [`explore_macro_partitioning`] under an [`ExploreContext`]: every
/// candidate evaluation is charged to the context's shared budget, and the
/// generational loop stops early (returning the best gene so far) when the
/// context says to stop.
///
/// # Errors
///
/// [`DseError::NoFeasibleSolution`] when no gene evaluated before the run
/// ended produced a working accelerator.
#[allow(clippy::too_many_arguments)]
pub fn explore_macro_partitioning_observed(
    model: &Model,
    df: &Dataflow,
    point: DesignPoint,
    total_power: Watts,
    hw: &pimsyn_arch::HardwareParams,
    macro_mode: MacroMode,
    cfg: &EaConfig,
    ctx: &ExploreContext<'_>,
) -> Result<EaOutcome, DseError> {
    let evaluator = CandidateEvaluator::new(
        model,
        total_power,
        hw,
        macro_mode,
        cfg.objective,
        EvalCacheConfig::default(),
    );
    run_ea_counted(df, point, cfg, ctx, &evaluator).1
}

/// The EA body, additionally returning the candidate evaluations performed
/// even when the run ends infeasible — so callers can keep their reported
/// counts consistent with the budget counter. All scoring goes through
/// `evaluator` (whose objective must match `cfg.objective`); generations are
/// scored as batches with deterministic reduction, parallelized by whichever
/// [`EvalBackend`](crate::backend::EvalBackend) the evaluator composes.
pub(crate) fn run_ea_counted(
    df: &Dataflow,
    point: DesignPoint,
    cfg: &EaConfig,
    ctx: &ExploreContext<'_>,
    evaluator: &CandidateEvaluator<'_>,
) -> (usize, Result<EaOutcome, DseError>) {
    let l = df.programs().len();
    let caps = max_macros(df);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evaluations = 0usize;

    // Initialize: all-ones, a tile-proportional seed (one macro per ~96
    // crossbars, the ISAAC-class tiling — spreads communication-bound big
    // layers across macros from generation zero), plus random genes within
    // rule (c).
    let mut genes: Vec<MacAllocGene> = vec![MacAllocGene::encode(&vec![1; l], &vec![None; l])];
    if genes.len() < cfg.population {
        let tiled: Vec<usize> = df
            .programs()
            .iter()
            .enumerate()
            .map(|(i, p)| p.crossbars.div_ceil(96).clamp(1, caps[i]))
            .collect();
        genes.push(MacAllocGene::encode(&tiled, &vec![None; l]));
    }
    while genes.len() < cfg.population {
        if ctx.should_stop() {
            break;
        }
        let macros: Vec<usize> = (0..l).map(|i| rng.gen_range(1..=caps[i])).collect();
        genes.push(MacAllocGene::encode(&macros, &vec![None; l]));
    }
    let (scores, charged) = evaluator.score_batch(df, point, &genes, ctx);
    evaluations += charged;
    let mut population: Vec<Individual> = genes.into_iter().zip(scores).collect();
    sort_population(&mut population);

    for _gen in 0..cfg.generations {
        if ctx.should_stop() {
            break;
        }
        let elite = 2.min(population.len());
        let mut child_genes: Vec<MacAllocGene> = Vec::new();
        let mut parent_idx: Vec<usize> = Vec::new();
        while child_genes.len() + elite < cfg.population {
            // Tournament selection (Alg. 2 line 4).
            let mut best_idx = rng.gen_range(0..population.len());
            for _ in 1..cfg.tournament {
                let c = rng.gen_range(0..population.len());
                if population[c].1.fitness > population[best_idx].1.fitness {
                    best_idx = c;
                }
            }
            let (mut macros, mut shares) = population[best_idx].0.decode();

            // mutate_num (Alg. 2 line 5).
            if rng.gen_bool(cfg.mutate_num_prob) {
                let i = rng.gen_range(0..l);
                macros[i] = rng.gen_range(1..=caps[i]);
            }
            // mutate_share (Alg. 2 line 6).
            if cfg.allow_sharing && rng.gen_bool(cfg.mutate_share_prob) {
                mutate_share(&mut shares, &mut rng, l);
            }
            child_genes.push(MacAllocGene::encode(&macros, &shares));
            parent_idx.push(best_idx);
        }
        // Each child differs from its tournament parent by at most one
        // mutate_num and one mutate_share — exactly what the evaluator's
        // delta path rescores incrementally.
        let parents: Vec<Option<&MacAllocGene>> =
            parent_idx.iter().map(|&i| Some(&population[i].0)).collect();
        let (child_scores, charged) =
            evaluator.score_batch_with_parents(df, point, &child_genes, &parents, ctx);
        evaluations += charged;
        population.truncate(elite);
        population.extend(child_genes.into_iter().zip(child_scores));
        sort_population(&mut population);
    }

    let best = population
        .into_iter()
        .find(|(_, score)| score.fitness > 0.0 && score.feasible);
    let outcome = match best {
        Some((gene, score)) => {
            // Scores are slim (the memo holds no architectures); the single
            // winner is realized once — a pure recomputation, uncharged.
            match evaluator.realize(df, point, &gene) {
                Some((architecture, report)) => Ok(EaOutcome {
                    gene,
                    architecture,
                    report,
                    fitness: score.fitness,
                    evaluations,
                }),
                // Unreachable: realization recomputes a feasible score.
                None => Err(DseError::NoFeasibleSolution),
            }
        }
        None => Err(DseError::NoFeasibleSolution),
    };
    (evaluations, outcome)
}

/// Toggles sharing for a random layer, respecting the rules: the partner
/// must be an earlier layer that neither shares nor is shared (pairs only).
fn mutate_share(shares: &mut [Option<usize>], rng: &mut StdRng, l: usize) {
    if l < 2 {
        return;
    }
    let i = rng.gen_range(1..l);
    if shares[i].is_some() {
        shares[i] = None;
        return;
    }
    // Candidate partners: earlier roots that nobody shares with yet.
    let taken: Vec<usize> = shares.iter().flatten().copied().collect();
    let candidates: Vec<usize> = (0..i)
        .filter(|j| shares[*j].is_none() && !taken.contains(j))
        .collect();
    if candidates.is_empty() {
        return;
    }
    let j = candidates[rng.gen_range(0..candidates.len())];
    shares[i] = Some(j);
}

fn sort_population(pop: &mut [Individual]) {
    pop.sort_by(|a, b| b.1.fitness.total_cmp(&a.1.fitness));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::{CrossbarConfig, DacConfig, HardwareParams};
    use pimsyn_model::zoo;

    fn setup() -> (Model, Dataflow, DesignPoint, Watts, HardwareParams) {
        let model = zoo::alexnet_cifar(10);
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(1).unwrap();
        let dup = vec![1; model.weight_layer_count()];
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        (
            model,
            df,
            DesignPoint {
                ratio_rram: 0.3,
                crossbar: xb,
            },
            Watts(9.0),
            HardwareParams::date24(),
        )
    }

    #[test]
    fn gene_encoding_matches_paper_format() {
        let gene = MacAllocGene::encode(&[2, 3, 4], &[None, None, Some(0)]);
        // Layer 0: 0*1000+2; layer 1: 1*1000+3; layer 2 shares 0: 0*1000+4.
        assert_eq!(gene.as_slice(), &[2, 1003, 4]);
        let (m, s) = gene.decode();
        assert_eq!(m, vec![2, 3, 4]);
        assert_eq!(s, vec![None, None, Some(0)]);
    }

    #[test]
    #[should_panic(expected = "sharing must point to an earlier layer")]
    fn forward_sharing_panics() {
        let _ = MacAllocGene::encode(&[1, 1], &[Some(1), None]);
    }

    #[test]
    fn ea_finds_feasible_solution() {
        let (model, df, point, power, hw) = setup();
        let out = explore_macro_partitioning(
            &model,
            &df,
            point,
            power,
            &hw,
            MacroMode::Specialized,
            &EaConfig::fast(),
        )
        .unwrap();
        assert!(out.fitness > 0.0);
        assert!(out.evaluations >= EaConfig::fast().population);
        out.architecture.validate(&model).unwrap();
        // The winner's gene decodes consistently with its architecture.
        let (macros, shares) = out.gene.decode();
        for (i, lh) in out.architecture.layers.iter().enumerate() {
            assert_eq!(lh.macros, macros[i]);
            assert_eq!(lh.shares_macros_with, shares[i]);
        }
    }

    #[test]
    fn ea_is_deterministic() {
        let (model, df, point, power, hw) = setup();
        let cfg = EaConfig::fast();
        let a = explore_macro_partitioning(
            &model,
            &df,
            point,
            power,
            &hw,
            MacroMode::Specialized,
            &cfg,
        )
        .unwrap();
        let b = explore_macro_partitioning(
            &model,
            &df,
            point,
            power,
            &hw,
            MacroMode::Specialized,
            &cfg,
        )
        .unwrap();
        assert_eq!(a.gene, b.gene);
        assert_eq!(a.fitness, b.fitness);
    }

    #[test]
    fn sharing_disabled_produces_no_shares() {
        let (model, df, point, power, hw) = setup();
        let cfg = EaConfig {
            allow_sharing: false,
            ..EaConfig::fast()
        };
        let out = explore_macro_partitioning(
            &model,
            &df,
            point,
            power,
            &hw,
            MacroMode::Specialized,
            &cfg,
        )
        .unwrap();
        let (_, shares) = out.gene.decode();
        assert!(shares.iter().all(Option::is_none));
    }

    #[test]
    fn infeasible_budget_reports_no_solution() {
        let (model, df, point, _, hw) = setup();
        let r = explore_macro_partitioning(
            &model,
            &df,
            point,
            Watts(0.05),
            &hw,
            MacroMode::Specialized,
            &EaConfig::fast(),
        );
        assert!(matches!(r, Err(DseError::NoFeasibleSolution)));
    }

    #[test]
    fn mutate_share_respects_pair_rule() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let mut shares: Vec<Option<usize>> = vec![None, Some(0), None, None];
            mutate_share(&mut shares, &mut rng, 4);
            // Layer 0 is taken (by 1); any new share must target 2 or be a
            // toggle-off; nobody may point at a non-root.
            for (i, s) in shares.iter().enumerate() {
                if let Some(j) = s {
                    assert!(*j < i);
                    assert!(shares[*j].is_none(), "partner must be a root");
                }
            }
        }
    }
}
