//! Design-space exploration for PIM CNN accelerator synthesis — the search
//! machinery of PIMSYN's Algorithm 1.
//!
//! The paper's design space (Table I) couples seven variable families:
//! `RatioRram`, per-layer weight duplication `WtDup`, crossbar size/cell
//! resolution, DAC resolution, macro partitioning `MacAlloc` (with
//! inter-layer macro sharing) and component allocation `CompAlloc`. Its
//! scale reaches ~10^27 for VGG13, so exhaustive traversal is impossible;
//! PIMSYN embeds two metaheuristics into the synthesis flow:
//!
//! - [`wt_dup_candidates`]: the SA-based weight-duplication filter
//!   (Sec. IV-A) keeping the top candidates under the Eq. (4) energy.
//! - [`explore_macro_partitioning`]: the EA of Alg. 2 with the paper's
//!   `i*1000 + n` gene encoding and `mutate_num` / `mutate_share` operators.
//! - [`allocate_components`]: the Eq. (6) closed-form water-filling.
//! - [`run_dse`]: the full Algorithm 1 nest, parallelized over outer design
//!   points with deterministic per-point seeds.
//!
//! # Example
//!
//! ```no_run
//! use pimsyn_arch::Watts;
//! use pimsyn_dse::{run_dse, DseConfig};
//! use pimsyn_model::zoo;
//!
//! # fn main() -> Result<(), pimsyn_dse::DseError> {
//! let model = zoo::vgg16();
//! let outcome = run_dse(&model, &DseConfig::new(Watts(50.0)))?;
//! println!(
//!     "best: {:.2} TOPS/W after {} evaluations",
//!     outcome.report.efficiency_tops_per_watt(),
//!     outcome.evaluations
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
pub mod backend;
mod ctx;
mod delta;
mod ea;
mod error;
mod eval;
mod explore;
mod sa;
mod space;
mod sweep;

pub use alloc::{allocate_components, physical_macros, AllocPlan, AllocRequest};
pub use backend::{
    dial_bounded, parse_remote_roster, read_token_file, BackendKind, BackendStats, ChunkPlanner,
    ChunkPolicy, DirectoryEntry, EvalBackend, EvalBackendConfig, EvalJob, InlineBackend,
    PersistentEvalCache, RemoteBackend, RemoteEndpointStatus, RemoteFleetSnapshot, RemotePool,
    SharedEvalResources, SubprocessBackend, ThreadPoolBackend, WorkerDirectory, WorkerPool,
    MIN_JOBS_PER_CHUNK,
};
pub use ctx::{
    CancelToken, ExploreBudget, ExploreContext, ExploreEvent, ExploreObserver, NullObserver,
    StopReason, SynthesisStage,
};
pub use ea::{
    explore_macro_partitioning, explore_macro_partitioning_evaluated,
    explore_macro_partitioning_observed, EaConfig, EaOutcome, MacAllocGene, Objective, GENE_BASE,
};
pub use error::DseError;
pub use eval::{
    CandidateEvaluator, CandidateKey, CandidateScore, EvalCacheConfig, EvalCore, EvaluatorStats,
};
pub use explore::{run_dse, run_dse_observed, DseConfig, DseOutcome, PointResult, WtDupStrategy};
pub use sa::{
    crossbars_used, no_duplication, sa_energy, woho_proportional, wt_dup_candidates,
    wt_dup_candidates_observed, SaConfig,
};
pub use space::{DesignPoint, DesignSpace, RATIO_RRAM_CHOICES};
pub use sweep::{minimum_feasible_power, sweep_power, SweepPoint};
