//! Parameter sweeps over the synthesis flow: how the synthesized
//! accelerator's quality scales with the user's power constraint or with
//! metaheuristic budgets. Used by the `power_sweep` example and the
//! design-choice ablation bench (`DESIGN.md` extensions).

use pimsyn_arch::Watts;
use pimsyn_model::Model;

use crate::backend::SharedEvalResources;
use crate::error::DseError;
use crate::explore::{run_dse, DseConfig};

/// `base` with cross-level shared resources attached (the caller's handle
/// when one is already set): every level of a sweep then leases the same
/// subprocess worker pool (sessions re-opened per level) and warm-starts
/// from the same in-memory cache-snapshot store, instead of each level
/// spawning and loading its own. Transparent — per-level results are
/// bit-identical either way.
fn with_shared_resources(base: &DseConfig) -> DseConfig {
    let mut base = base.clone();
    if base.backend.shared.is_none() {
        base.backend.shared = Some(SharedEvalResources::new());
    }
    base
}

/// One sweep sample.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The swept power constraint.
    pub power: Watts,
    /// Achieved efficiency (TOPS/W); 0 when infeasible.
    pub efficiency: f64,
    /// Achieved throughput (effective ops/s); 0 when infeasible.
    pub throughput_ops: f64,
    /// Single-inference latency in seconds; infinity when infeasible.
    pub latency: f64,
    /// Whether a feasible accelerator exists at this power.
    pub feasible: bool,
}

/// Sweeps the total power constraint, re-running the full DSE flow at each
/// level (everything else taken from `base`).
///
/// Infeasible levels (below the single-copy floor) are reported with
/// `feasible = false` rather than failing the sweep, so callers can plot the
/// feasibility cliff the paper's Eq. (2)/(3) interplay creates.
///
/// Candidate scoring at every level goes through the unified
/// [`CandidateEvaluator`](crate::CandidateEvaluator) (configured by
/// `base.eval_cache`). Each level builds its own evaluator — candidate memo
/// keys assume a fixed power constraint, so a memo must not span sweep
/// levels — but all levels share one
/// [`SharedEvalResources`](crate::SharedEvalResources) handle: a subprocess
/// worker pool is spawned once and re-sessioned per level, and (with a
/// cache file configured) each level's snapshot warm-starts later passes
/// over the same level from memory.
pub fn sweep_power(model: &Model, base: &DseConfig, powers: &[Watts]) -> Vec<SweepPoint> {
    let base = with_shared_resources(base);
    powers
        .iter()
        .map(|&power| {
            let cfg = DseConfig {
                total_power: power,
                ..base.clone()
            };
            match run_dse(model, &cfg) {
                Ok(outcome) => SweepPoint {
                    power,
                    efficiency: outcome.report.efficiency_tops_per_watt(),
                    throughput_ops: outcome.report.throughput_ops,
                    latency: outcome.report.latency.value(),
                    feasible: true,
                },
                Err(_) => SweepPoint {
                    power,
                    efficiency: 0.0,
                    throughput_ops: 0.0,
                    latency: f64::INFINITY,
                    feasible: false,
                },
            }
        })
        .collect()
}

/// The minimum feasible power for `model` under `base`'s design space,
/// found by bisection over `lo..hi` (watts) to the given resolution.
///
/// # Errors
///
/// [`DseError::NoFeasibleSolution`] if even `hi` watts is infeasible.
pub fn minimum_feasible_power(
    model: &Model,
    base: &DseConfig,
    lo: f64,
    hi: f64,
    resolution: f64,
) -> Result<Watts, DseError> {
    let base = with_shared_resources(base);
    let feasible = |w: f64| {
        run_dse(
            model,
            &DseConfig {
                total_power: Watts(w),
                ..base.clone()
            },
        )
        .is_ok()
    };
    if !feasible(hi) {
        return Err(DseError::NoFeasibleSolution);
    }
    let mut lo = lo.max(0.0);
    let mut hi = hi;
    while hi - lo > resolution.max(1e-6) {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(Watts(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ea::EaConfig;
    use crate::explore::DseConfig;
    use crate::sa::SaConfig;
    use crate::space::DesignSpace;
    use pimsyn_arch::CrossbarConfig;
    use pimsyn_model::zoo;

    fn tiny_cfg() -> DseConfig {
        let mut cfg = DseConfig::fast(Watts(6.0));
        cfg.space = DesignSpace::single(0.3, CrossbarConfig::new(128, 2).unwrap(), 1);
        cfg.sa = SaConfig {
            candidates: 2,
            iterations: 100,
            ..SaConfig::fast()
        };
        cfg.ea = EaConfig {
            population: 6,
            generations: 2,
            ..EaConfig::fast()
        };
        cfg
    }

    #[test]
    fn sweep_marks_infeasible_levels() {
        let model = zoo::alexnet_cifar(10);
        let points = sweep_power(&model, &tiny_cfg(), &[Watts(0.5), Watts(6.0), Watts(12.0)]);
        assert_eq!(points.len(), 3);
        assert!(!points[0].feasible, "0.5 W cannot hold one weight copy");
        assert!(points[1].feasible);
        assert!(points[2].feasible);
        // Throughput must not collapse as power grows.
        assert!(points[2].throughput_ops >= points[1].throughput_ops * 0.7);
    }

    #[test]
    fn minimum_power_is_bracketed() {
        let model = zoo::alexnet_cifar(10);
        let min = minimum_feasible_power(&model, &tiny_cfg(), 0.5, 12.0, 0.5).unwrap();
        // One copy needs ~1.15 W of crossbars at ratio 0.3 -> ~3.8 W floor.
        assert!(min.value() > 2.0, "min {min} too low");
        assert!(min.value() < 9.0, "min {min} too high");
    }

    #[test]
    fn impossible_range_errors() {
        let model = zoo::vgg16();
        let r = minimum_feasible_power(&model, &tiny_cfg(), 0.1, 1.0, 0.1);
        assert!(matches!(r, Err(DseError::NoFeasibleSolution)));
    }
}
