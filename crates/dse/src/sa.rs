//! Weight-duplication stage (Sec. IV-A): the constrained optimization of
//! Eq. (2), pruned by the SA-based filter with the Eq. (4) energy function,
//! plus the two baseline strategies the paper compares against in Fig. 7
//! (WOHO-proportional heuristic and no duplication).

use pimsyn_arch::CrossbarConfig;
use pimsyn_model::Model;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ctx::ExploreContext;
use crate::error::DseError;
use crate::eval::CandidateEvaluator;

/// Configuration of the SA-based weight-duplication filter.
#[derive(Debug, Clone, PartialEq)]
pub struct SaConfig {
    /// Annealing steps.
    pub iterations: usize,
    /// Initial Metropolis temperature.
    pub initial_temperature: f64,
    /// Multiplicative cooling per step.
    pub cooling: f64,
    /// The empirical `alpha` weighting the data-access-balance term of
    /// Eq. (4).
    pub alpha: f64,
    /// Number of top candidates to keep (the paper keeps 30).
    pub candidates: usize,
    /// RNG seed (the filter is fully deterministic given the seed).
    pub seed: u64,
}

impl SaConfig {
    /// The paper-scale configuration: 30 candidates from a long anneal.
    pub fn paper() -> Self {
        Self {
            iterations: 4000,
            initial_temperature: 1.0,
            cooling: 0.9985,
            alpha: 0.5,
            candidates: 30,
            seed: 0xD1CE,
        }
    }

    /// A cheap configuration for tests and smoke runs.
    pub fn fast() -> Self {
        Self {
            iterations: 400,
            candidates: 6,
            ..Self::paper()
        }
    }
}

impl Default for SaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Population standard deviation (the paper's `stdev`), computed in a
/// single pass with Welford's online algorithm — the evaluation hot path
/// calls this for every SA probe, so no cloning or re-iteration.
pub(crate) fn stdev(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut n = 0usize;
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    for v in values {
        n += 1;
        let delta = v - mean;
        mean += delta / n as f64;
        m2 += delta * (v - mean);
    }
    if n == 0 {
        0.0
    } else {
        (m2 / n as f64).sqrt()
    }
}

/// The Eq. (4) energy: `stdev_i(WO*HO / WtDup_i) + alpha *
/// stdev_i(AccessVolume_i)` with `AccessVolume_i = WtDup_i * (WK²CI + CO)`.
///
/// Lower is better: a good duplication balances every layer's computation
/// (first term) *and* its data-access volume (second term).
pub fn sa_energy(model: &Model, dup: &[usize], alpha: f64) -> f64 {
    let blocks = model
        .weight_layers()
        .zip(dup)
        .map(|(wl, &d)| wl.output_positions() as f64 / d.max(1) as f64);
    let access = model
        .weight_layers()
        .zip(dup)
        .map(|(wl, &d)| wl.access_volume(d) as f64);
    stdev(blocks) + alpha * stdev(access)
}

/// Per-layer static factors of [`sa_energy`], precomputed once per model so
/// the memoized-probe miss path skips the weight-layer walk: `WO*HO` and the
/// unit access volume `WK²CI + CO`. [`SaTable::energy`] performs the exact
/// integer and float operations of [`sa_energy`], so the two are
/// bit-identical.
#[derive(Debug, Clone)]
pub(crate) struct SaTable {
    positions: Vec<usize>,
    access_base: Vec<u64>,
}

impl SaTable {
    pub(crate) fn new(model: &Model) -> Self {
        Self {
            positions: model
                .weight_layers()
                .map(|wl| wl.output_positions())
                .collect(),
            access_base: model
                .weight_layers()
                .map(|wl| wl.access_volume(1))
                .collect(),
        }
    }

    /// [`sa_energy`] from the precomputed tables.
    pub(crate) fn energy(&self, dup: &[usize], alpha: f64) -> f64 {
        let blocks = self
            .positions
            .iter()
            .zip(dup)
            .map(|(&p, &d)| p as f64 / d.max(1) as f64);
        let access = self
            .access_base
            .iter()
            .zip(dup)
            .map(|(&b, &d)| (d as u64 * b) as f64);
        stdev(blocks) + alpha * stdev(access)
    }
}

/// Crossbars consumed by a duplication vector: `sum WtDup_i x set_i` — the
/// constraint side of Eq. (2).
pub fn crossbars_used(model: &Model, crossbar: CrossbarConfig, dup: &[usize]) -> usize {
    model
        .weight_layers()
        .zip(dup)
        .map(|(wl, &d)| d * crossbar.crossbar_set(wl, model.precision().weight_bits()))
        .sum()
}

/// The WOHO-proportional heuristic used by ISAAC/PipeLayer (Fig. 7's
/// comparison point): duplication factors proportional to each layer's
/// `WO x HO`, scaled to fill the crossbar budget.
///
/// # Errors
///
/// [`DseError::BudgetTooSmall`] if even one copy per layer does not fit.
pub fn woho_proportional(
    model: &Model,
    crossbar: CrossbarConfig,
    budget: usize,
) -> Result<Vec<usize>, DseError> {
    let base = no_duplication(model, crossbar, budget)?;
    let caps: Vec<usize> = model
        .weight_layers()
        .map(|wl| wl.output_positions())
        .collect();
    let woho: Vec<f64> = caps.iter().map(|&p| p as f64).collect();

    // Binary search the proportionality constant.
    let mut lo = 0.0f64;
    let mut hi = budget as f64;
    let clamp = |t: f64| -> Vec<usize> {
        woho.iter()
            .zip(&caps)
            .map(|(&w, &cap)| ((t * w).round() as usize).clamp(1, cap))
            .collect()
    };
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if crossbars_used(model, crossbar, &clamp(mid)) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let dup = clamp(lo);
    debug_assert!(crossbars_used(model, crossbar, &dup) <= budget);
    let _ = base;
    Ok(dup)
}

/// The no-duplication strategy of prior exploration works \[6\]\[7\]: one weight
/// copy per layer.
///
/// # Errors
///
/// [`DseError::BudgetTooSmall`] if the budget cannot hold one copy per layer.
pub fn no_duplication(
    model: &Model,
    crossbar: CrossbarConfig,
    budget: usize,
) -> Result<Vec<usize>, DseError> {
    let dup = vec![1usize; model.weight_layer_count()];
    let needed = crossbars_used(model, crossbar, &dup);
    if needed > budget {
        return Err(DseError::BudgetTooSmall {
            needed,
            available: budget,
        });
    }
    Ok(dup)
}

/// The SA-based filter (Alg. 1 line 6): anneals over feasible duplication
/// vectors and returns up to `cfg.candidates` distinct low-energy candidates,
/// best first.
///
/// # Errors
///
/// [`DseError::BudgetTooSmall`] if the budget cannot hold one copy per layer.
pub fn wt_dup_candidates(
    model: &Model,
    crossbar: CrossbarConfig,
    budget: usize,
    cfg: &SaConfig,
) -> Result<Vec<Vec<usize>>, DseError> {
    let ctx = ExploreContext::unobserved();
    wt_dup_candidates_observed(model, crossbar, budget, cfg, &ctx)
}

/// [`wt_dup_candidates`] under an [`ExploreContext`]: the annealing loop
/// checks for cancellation / exhausted budgets every few iterations and, if
/// told to stop, returns the candidates collected so far instead of
/// finishing the walk.
///
/// # Errors
///
/// [`DseError::BudgetTooSmall`] if the budget cannot hold one copy per layer.
pub fn wt_dup_candidates_observed(
    model: &Model,
    crossbar: CrossbarConfig,
    budget: usize,
    cfg: &SaConfig,
    ctx: &ExploreContext<'_>,
) -> Result<Vec<Vec<usize>>, DseError> {
    let alpha = cfg.alpha;
    anneal(model, crossbar, budget, cfg, ctx, &mut |s| {
        sa_energy(model, s, alpha)
    })
}

/// [`wt_dup_candidates_observed`] with every Eq. (4) probe routed through
/// the shared [`CandidateEvaluator`] (memoized energies, probe statistics).
/// The memo is transparent, so candidates are identical to the unevaluated
/// variant.
pub(crate) fn wt_dup_candidates_cached(
    model: &Model,
    crossbar: CrossbarConfig,
    budget: usize,
    cfg: &SaConfig,
    ctx: &ExploreContext<'_>,
    evaluator: &CandidateEvaluator<'_>,
) -> Result<Vec<Vec<usize>>, DseError> {
    let alpha = cfg.alpha;
    anneal(model, crossbar, budget, cfg, ctx, &mut |s| {
        evaluator.sa_energy(s, alpha)
    })
}

/// The SA walk shared by the plain and evaluator-routed entry points;
/// `energy` scores a duplication vector (lower is better).
fn anneal(
    model: &Model,
    crossbar: CrossbarConfig,
    budget: usize,
    cfg: &SaConfig,
    ctx: &ExploreContext<'_>,
    energy_fn: &mut dyn FnMut(&[usize]) -> f64,
) -> Result<Vec<Vec<usize>>, DseError> {
    let sets: Vec<usize> = model
        .weight_layers()
        .map(|wl| crossbar.crossbar_set(wl, model.precision().weight_bits()))
        .collect();
    let caps: Vec<usize> = model
        .weight_layers()
        .map(|wl| wl.output_positions())
        .collect();
    let l = sets.len();

    let ones = no_duplication(model, crossbar, budget)?;
    let mut state = ones.clone();
    let mut used: usize = state.iter().zip(&sets).map(|(&d, &s)| d * s).sum();

    // Greedy warm start: repeatedly duplicate the layer with the most
    // blocks-per-copy until the budget is spent (compute balancing).
    loop {
        let mut best: Option<(usize, f64)> = None;
        for i in 0..l {
            if state[i] < caps[i] && used + sets[i] <= budget {
                let blocks = caps[i] as f64 / state[i] as f64;
                if best.is_none_or(|(_, b)| blocks > b) {
                    best = Some((i, blocks));
                }
            }
        }
        match best {
            Some((i, _)) => {
                state[i] += 1;
                used += sets[i];
            }
            None => break,
        }
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut energy = energy_fn(&state);
    let mut temperature = cfg.initial_temperature * energy.max(1.0);

    // Top-K distinct candidates, kept sorted by energy. Besides the SA
    // walk, a few deterministic seeds are always offered: the single-copy
    // vector and WOHO-proportional fills of the full/half/quarter budget —
    // under tight peripheral power the downstream stages may legitimately
    // prefer a lighter duplication than the budget-filling optimum.
    let mut top: Vec<(f64, Vec<usize>)> = vec![(energy, state.clone())];
    let mut seed_candidate = |s: Vec<usize>, top: &mut Vec<(f64, Vec<usize>)>| {
        if top.iter().any(|(_, existing)| *existing == s) {
            return;
        }
        let e = energy_fn(&s);
        let pos = top.partition_point(|(te, _)| *te <= e);
        top.insert(pos, (e, s));
    };
    seed_candidate(ones, &mut top);
    for denom in [2usize, 4] {
        if let Ok(w) = woho_proportional(model, crossbar, (budget / denom).max(1)) {
            seed_candidate(w, &mut top);
        }
    }
    let consider = |e: f64, s: &[usize], top: &mut Vec<(f64, Vec<usize>)>| {
        if top.iter().any(|(_, existing)| existing == s) {
            return;
        }
        let pos = top.partition_point(|(te, _)| *te <= e);
        top.insert(pos, (e, s.to_vec()));
        top.truncate(cfg.candidates);
    };

    for iter in 0..cfg.iterations {
        // Cooperative stop: cheap enough to check periodically without
        // perturbing the (deterministic) annealing walk itself.
        if iter % 32 == 0 && ctx.should_stop() {
            break;
        }
        let i = rng.gen_range(0..l);
        let step = (state[i] / 8).max(1);
        let delta: isize = if rng.gen_bool(0.5) {
            step as isize
        } else {
            -(step as isize)
        };
        let proposed = state[i] as isize + delta;
        if proposed < 1 || proposed as usize > caps[i] {
            continue;
        }
        let proposed = proposed as usize;
        let new_used = (used as isize + delta * sets[i] as isize) as usize;
        if new_used > budget {
            continue;
        }
        let old = state[i];
        state[i] = proposed;
        let new_energy = energy_fn(&state);
        let accept = new_energy <= energy
            || rng.gen::<f64>() < ((energy - new_energy) / temperature.max(1e-12)).exp();
        if accept {
            energy = new_energy;
            used = new_used;
            consider(new_energy, &state, &mut top);
        } else {
            state[i] = old;
        }
        temperature *= cfg.cooling;
    }

    Ok(top.into_iter().map(|(_, s)| s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::zoo;

    fn xb() -> CrossbarConfig {
        CrossbarConfig::new(128, 2).unwrap()
    }

    #[test]
    fn energy_prefers_balanced_blocks() {
        let model = zoo::alexnet_cifar(10);
        let l = model.weight_layer_count();
        let balanced: Vec<usize> = model
            .weight_layers()
            .map(|wl| wl.output_positions().max(1))
            .collect();
        let skewed = vec![1usize; l];
        // Fully-duplicated layers all have exactly one block: zero stdev in
        // the first term.
        assert!(
            sa_energy(&model, &balanced, 0.0) < sa_energy(&model, &skewed, 0.0),
            "balanced blocks must have lower energy"
        );
    }

    #[test]
    fn budget_too_small_is_detected() {
        let model = zoo::vgg16();
        assert!(matches!(
            no_duplication(&model, xb(), 10),
            Err(DseError::BudgetTooSmall { .. })
        ));
        assert!(wt_dup_candidates(&model, xb(), 10, &SaConfig::fast()).is_err());
    }

    #[test]
    fn candidates_are_feasible_and_distinct() {
        let model = zoo::alexnet_cifar(10);
        let budget = 8000;
        let cands = wt_dup_candidates(&model, xb(), budget, &SaConfig::fast()).unwrap();
        assert!(!cands.is_empty());
        assert!(cands.len() <= SaConfig::fast().candidates);
        for c in &cands {
            assert_eq!(c.len(), model.weight_layer_count());
            assert!(c.iter().all(|&d| d >= 1));
            assert!(
                crossbars_used(&model, xb(), c) <= budget,
                "candidate exceeds budget"
            );
        }
        for (i, a) in cands.iter().enumerate() {
            for b in &cands[i + 1..] {
                assert_ne!(a, b, "candidates must be distinct");
            }
        }
    }

    #[test]
    fn candidates_sorted_by_energy() {
        let model = zoo::alexnet_cifar(10);
        let cfg = SaConfig::fast();
        let cands = wt_dup_candidates(&model, xb(), 8000, &cfg).unwrap();
        let energies: Vec<f64> = cands
            .iter()
            .map(|c| sa_energy(&model, c, cfg.alpha))
            .collect();
        for w in energies.windows(2) {
            assert!(w[0] <= w[1] + 1e-9, "energies not sorted: {energies:?}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let model = zoo::alexnet_cifar(10);
        let a = wt_dup_candidates(&model, xb(), 8000, &SaConfig::fast()).unwrap();
        let b = wt_dup_candidates(&model, xb(), 8000, &SaConfig::fast()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn woho_proportional_tracks_workload() {
        let model = zoo::alexnet_cifar(10);
        let dup = woho_proportional(&model, xb(), 4000).unwrap();
        // conv1 (32x32 outputs) must get more copies than fc8 (1 output).
        let conv1 = 0;
        let fc8 = model.weight_layer_count() - 1;
        assert!(dup[conv1] > dup[fc8], "{dup:?}");
        assert_eq!(dup[fc8], 1);
        assert!(crossbars_used(&model, xb(), &dup) <= 4000);
    }

    #[test]
    fn sa_uses_budget_meaningfully() {
        // With a roomy budget the SA warm start should duplicate heavily.
        let model = zoo::alexnet_cifar(10);
        let cands = wt_dup_candidates(&model, xb(), 20_000, &SaConfig::fast()).unwrap();
        let best = &cands[0];
        assert!(
            best.iter().sum::<usize>() > model.weight_layer_count(),
            "{best:?}"
        );
    }
}
