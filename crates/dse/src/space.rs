//! The PIM-related design space of Table I: the outer loops of Algorithm 1
//! traverse `RatioRram x ResRram x XbSize` (and, per duplication candidate,
//! `ResDAC`).

use std::fmt;

use pimsyn_arch::{CrossbarConfig, DacConfig, RESDAC_CHOICES, RESRRAM_CHOICES, XBSIZE_CHOICES};

/// The paper's `RatioRram` grid: "ranging from 0.1 to 0.4", stepped at the
/// granularity its prior-knowledge interval suggests.
pub const RATIO_RRAM_CHOICES: [f64; 4] = [0.1, 0.2, 0.3, 0.4];

/// One outer-loop design point of Algorithm 1 (lines 3-5): the variables
/// that fix the crossbar budget and per-crossbar geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DesignPoint {
    /// Share of total power given to ReRAM arrays.
    pub ratio_rram: f64,
    /// Crossbar size and cell resolution.
    pub crossbar: CrossbarConfig,
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ratio={:.1} xb={} res={}b",
            self.ratio_rram,
            self.crossbar.size(),
            self.crossbar.cell_bits()
        )
    }
}

/// The traversable design space (Table I), optionally restricted for cheap
/// smoke runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    ratios: Vec<f64>,
    xb_sizes: Vec<usize>,
    cell_bits: Vec<u32>,
    dac_bits: Vec<u32>,
}

impl DesignSpace {
    /// The full Table I space: 4 ratios x 3 sizes x 3 cell resolutions
    /// (36 outer points), with 3 DAC resolutions per duplication candidate.
    pub fn paper() -> Self {
        Self {
            ratios: RATIO_RRAM_CHOICES.to_vec(),
            xb_sizes: XBSIZE_CHOICES.to_vec(),
            cell_bits: RESRRAM_CHOICES.to_vec(),
            dac_bits: RESDAC_CHOICES.to_vec(),
        }
    }

    /// A reduced space for fast smoke tests and examples: one ratio, two
    /// sizes, two cell resolutions, two DAC resolutions.
    pub fn reduced() -> Self {
        Self {
            ratios: vec![0.3],
            xb_sizes: vec![128, 256],
            cell_bits: vec![2, 4],
            dac_bits: vec![1, 2],
        }
    }

    /// A custom subspace. Every entry must come from the legal Table I
    /// domains; illegal values surface as panics when the points are built.
    pub fn custom(
        ratios: Vec<f64>,
        xb_sizes: Vec<usize>,
        cell_bits: Vec<u32>,
        dac_bits: Vec<u32>,
    ) -> Self {
        Self {
            ratios,
            xb_sizes,
            cell_bits,
            dac_bits,
        }
    }

    /// A single-point space, useful to pin the PIM variables and explore
    /// only duplication/partitioning.
    pub fn single(ratio: f64, crossbar: CrossbarConfig, dac_bits: u32) -> Self {
        Self {
            ratios: vec![ratio],
            xb_sizes: vec![crossbar.size()],
            cell_bits: vec![crossbar.cell_bits()],
            dac_bits: vec![dac_bits],
        }
    }

    /// All outer design points, in deterministic traversal order.
    pub fn points(&self) -> Vec<DesignPoint> {
        let mut out = Vec::new();
        for &ratio in &self.ratios {
            for &bits in &self.cell_bits {
                for &size in &self.xb_sizes {
                    let crossbar = CrossbarConfig::new(size, bits)
                        .expect("design space holds only legal values");
                    out.push(DesignPoint {
                        ratio_rram: ratio,
                        crossbar,
                    });
                }
            }
        }
        out
    }

    /// DAC configurations traversed per duplication candidate (line 8 of
    /// Alg. 1).
    pub fn dacs(&self) -> Vec<DacConfig> {
        self.dac_bits
            .iter()
            .map(|&b| DacConfig::new(b).expect("design space holds only legal values"))
            .collect()
    }

    /// Number of outer design points.
    pub fn outer_len(&self) -> usize {
        self.ratios.len() * self.cell_bits.len() * self.xb_sizes.len()
    }
}

impl Default for DesignSpace {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_space_has_36_outer_points() {
        let s = DesignSpace::paper();
        assert_eq!(s.outer_len(), 36);
        assert_eq!(s.points().len(), 36);
        assert_eq!(s.dacs().len(), 3);
    }

    #[test]
    fn reduced_space_is_smaller() {
        let s = DesignSpace::reduced();
        assert!(s.outer_len() <= 4);
    }

    #[test]
    fn single_space_pins_everything() {
        let xb = CrossbarConfig::new(256, 2).unwrap();
        let s = DesignSpace::single(0.25, xb, 1);
        assert_eq!(s.outer_len(), 1);
        let p = s.points()[0];
        assert_eq!(p.crossbar, xb);
        assert!((p.ratio_rram - 0.25).abs() < 1e-12);
        assert_eq!(s.dacs()[0].bits(), 1);
    }

    #[test]
    fn traversal_is_deterministic() {
        assert_eq!(DesignSpace::paper().points(), DesignSpace::paper().points());
    }
}
