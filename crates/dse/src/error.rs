use std::error::Error;
use std::fmt;

use pimsyn_arch::ArchError;
use pimsyn_ir::IrError;
use pimsyn_sim::SimError;

/// Errors from design-space exploration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DseError {
    /// The crossbar budget (Eq. (3)) cannot hold even one copy of every
    /// layer's weights, so no feasible duplication exists at this design
    /// point.
    BudgetTooSmall {
        /// Crossbars required for one copy of the whole network.
        needed: usize,
        /// Crossbars the power envelope affords.
        available: usize,
    },
    /// The peripheral power budget is exhausted by fixed infrastructure
    /// before any ADC/ALU can be allocated.
    NoPeripheralPower {
        /// Watts left after fixed costs (negative means deficit).
        remaining: f64,
    },
    /// No explored design point produced a working accelerator.
    NoFeasibleSolution,
    /// The caller cancelled the exploration via
    /// [`CancelToken::cancel`](crate::CancelToken::cancel).
    Cancelled,
    /// Underlying architecture-model error.
    Arch(ArchError),
    /// Underlying IR-compilation error.
    Ir(IrError),
    /// Underlying evaluation error.
    Sim(SimError),
}

impl fmt::Display for DseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DseError::BudgetTooSmall { needed, available } => write!(
                f,
                "crossbar budget too small: one weight copy needs {needed} crossbars, \
                 power affords {available}"
            ),
            DseError::NoPeripheralPower { remaining } => write!(
                f,
                "no peripheral power left after fixed infrastructure ({remaining:.3} W remaining)"
            ),
            DseError::NoFeasibleSolution => write!(f, "no feasible accelerator found"),
            DseError::Cancelled => write!(f, "exploration cancelled"),
            DseError::Arch(e) => write!(f, "architecture error: {e}"),
            DseError::Ir(e) => write!(f, "ir error: {e}"),
            DseError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for DseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DseError::Arch(e) => Some(e),
            DseError::Ir(e) => Some(e),
            DseError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArchError> for DseError {
    fn from(e: ArchError) -> Self {
        DseError::Arch(e)
    }
}

impl From<IrError> for DseError {
    fn from(e: IrError) -> Self {
        DseError::Ir(e)
    }
}

impl From<SimError> for DseError {
    fn from(e: SimError) -> Self {
        DseError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DseError>();
    }

    #[test]
    fn source_chains() {
        let e = DseError::from(IrError::ZeroDuplication { layer: 1 });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("ir error"));
    }
}
