//! The unified candidate-evaluation pipeline shared by all four synthesis
//! stages.
//!
//! Algorithm 1 spends essentially all of its time scoring candidates: every
//! SA weight-duplication probe, every EA macro-partitioning gene and every
//! outer design point runs dataflow compilation, components allocation and
//! the analytic performance model. The [`CandidateEvaluator`] centralizes
//! that scoring:
//!
//! - a **memo cache** keyed by the canonicalized candidate (design point,
//!   DAC resolution, duplication vector, `MacAlloc` gene) — the SA and EA
//!   metaheuristics revisit many identical candidates, and a hit returns the
//!   previously computed architecture/report without recomputation;
//! - **per-layer analytic cost memoization** (via
//!   [`pimsyn_sim::LayerCostCache`]) so a gene that changes one layer's
//!   allocation only recomputes that layer's contribution on a miss;
//! - a **batch interface** ([`CandidateEvaluator::score_batch`]) that scores
//!   an EA generation across a scoped thread pool with deterministic
//!   reduction (results in input order), replacing ad-hoc serial loops;
//! - an **SA energy memo** for the weight-duplication filter's Eq. (4)
//!   probes.
//!
//! Caching is *transparent*: evaluation is a pure function of the candidate,
//! so cached and uncached runs produce bit-identical outcomes, and every
//! scored candidate — hit or miss — is charged to the
//! [`ExploreContext`] budget exactly as before. Unique evaluations and
//! cache hits are reported separately through [`EvaluatorStats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pimsyn_arch::{Architecture, CrossbarConfig, HardwareParams, MacroMode, Watts};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;
use pimsyn_sim::{evaluate_analytic, evaluate_analytic_cached, LayerCostCache, SimReport};

use crate::alloc::{allocate_components, AllocRequest};
use crate::ctx::ExploreContext;
use crate::ea::{MacAllocGene, Objective};
use crate::sa::sa_energy;
use crate::space::DesignPoint;

/// Configuration of the evaluator's memo caches (candidate memo, SA energy
/// memo, per-layer analytic costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheConfig {
    /// Master switch; disabled, every candidate is computed from scratch.
    pub enabled: bool,
    /// Maximum entries per memo map; once full, new results are returned
    /// without being stored (no eviction, so memory stays bounded and
    /// resident entries keep hitting).
    pub capacity: usize,
}

impl EvalCacheConfig {
    /// Default capacity: roomy for a paper-scale run while bounding worst-
    /// case memory (one entry holds an [`Architecture`] + [`SimReport`]).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Caching on, default capacity (the default).
    pub fn enabled() -> Self {
        Self::default()
    }

    /// Caching off: every candidate recomputed (for ablations and the
    /// throughput benchmark's baseline arm).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: 0,
        }
    }

    /// Overrides the per-map entry bound.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

impl Default for EvalCacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }
}

/// Cumulative evaluator throughput counters, reported through
/// [`ExploreEvent::EvaluatorStats`](crate::ExploreEvent::EvaluatorStats).
///
/// `scored` counts every candidate scoring request (and matches what the
/// budget counter was charged); `unique_evaluations + cache_hits == scored`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvaluatorStats {
    /// Candidate scoring requests (cache hits included).
    pub scored: usize,
    /// Full compile → allocate → analytic-model evaluations actually run.
    pub unique_evaluations: usize,
    /// Requests served from the candidate memo.
    pub cache_hits: usize,
    /// SA energy-function probes (weight-duplication stage).
    pub sa_probes: usize,
    /// SA probes served from the energy memo.
    pub sa_cache_hits: usize,
    /// Per-layer base-cost lookups served from the layer memo.
    pub layer_hits: usize,
    /// Per-layer base costs computed from scratch.
    pub layer_misses: usize,
}

impl EvaluatorStats {
    /// Fraction of candidate scoring requests served from the memo.
    pub fn hit_rate(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.scored as f64
        }
    }
}

/// Canonical identity of one candidate within a synthesis run. The model,
/// power constraint, hardware constants, macro mode and objective are fixed
/// per evaluator, so the key only carries what varies between candidates.
#[derive(Debug, Hash, PartialEq, Eq, Clone)]
struct CandidateKey {
    /// `RatioRram` (bit pattern — the grid values are exact constants).
    ratio_bits: u64,
    crossbar: CrossbarConfig,
    dac_bits: u32,
    /// Shared across every key of a batch (hash/eq see through the `Arc`).
    wt_dup: Arc<Vec<usize>>,
    /// The `MacAlloc` gene in the paper's canonical `owner*1000 + n`
    /// encoding (macro counts and sharing in one vector).
    gene: Vec<u32>,
}

/// Fitness and feasibility of one scored candidate.
///
/// Deliberately slim (two words): the memo cache holds one of these per
/// unique candidate, so it stores no architecture or report —
/// [`CandidateEvaluator::realize`] recomputes a winner's full implementation
/// on demand (cheap, since it hits the per-layer cost memo).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateScore {
    /// Objective fitness (0 for infeasible candidates).
    pub fitness: f64,
    /// Whether the candidate allocated and evaluated successfully.
    pub feasible: bool,
}

impl CandidateScore {
    /// A candidate that failed allocation or evaluation — also the
    /// placeholder for candidates skipped after a cooperative stop.
    pub const INFEASIBLE: Self = Self {
        fitness: 0.0,
        feasible: false,
    };
}

/// The shared evaluation layer: scores macro-partitioning candidates
/// (components allocation + analytic model) and SA duplication probes, with
/// memoization, per-layer incremental costs and batch parallelism.
///
/// One evaluator spans one synthesis run (fixed model, power budget,
/// hardware constants, macro mode and objective); worker threads share it by
/// reference. Construction is cheap, so standalone stages (e.g.
/// [`explore_macro_partitioning`](crate::explore_macro_partitioning)) build
/// their own.
pub struct CandidateEvaluator<'a> {
    model: &'a Model,
    total_power: Watts,
    hw: &'a HardwareParams,
    macro_mode: MacroMode,
    objective: Objective,
    config: EvalCacheConfig,
    candidates: Mutex<HashMap<CandidateKey, CandidateScore>>,
    energies: Mutex<HashMap<(Vec<usize>, u64), f64>>,
    layer_costs: LayerCostCache,
    scored: AtomicUsize,
    unique: AtomicUsize,
    hits: AtomicUsize,
    sa_probes: AtomicUsize,
    sa_hits: AtomicUsize,
}

impl std::fmt::Debug for CandidateEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CandidateEvaluator")
            .field("config", &self.config)
            .field("objective", &self.objective)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<'a> CandidateEvaluator<'a> {
    /// An evaluator for one synthesis run.
    pub fn new(
        model: &'a Model,
        total_power: Watts,
        hw: &'a HardwareParams,
        macro_mode: MacroMode,
        objective: Objective,
        config: EvalCacheConfig,
    ) -> Self {
        let layer_capacity = if config.enabled { config.capacity } else { 0 };
        Self {
            model,
            total_power,
            hw,
            macro_mode,
            objective,
            config,
            candidates: Mutex::new(HashMap::new()),
            energies: Mutex::new(HashMap::new()),
            layer_costs: LayerCostCache::with_capacity(layer_capacity),
            scored: AtomicUsize::new(0),
            unique: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            sa_probes: AtomicUsize::new(0),
            sa_hits: AtomicUsize::new(0),
        }
    }

    /// The objective this evaluator's fitness values maximize.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The Eq. (4) SA energy of a duplication vector, memoized. Identical to
    /// [`sa_energy`] (the memo is transparent).
    pub fn sa_energy(&self, dup: &[usize], alpha: f64) -> f64 {
        self.sa_probes.fetch_add(1, Ordering::Relaxed);
        if !self.config.enabled {
            return sa_energy(self.model, dup, alpha);
        }
        let key = (dup.to_vec(), alpha.to_bits());
        if let Some(&e) = self.energies.lock().expect("energy memo").get(&key) {
            self.sa_hits.fetch_add(1, Ordering::Relaxed);
            return e;
        }
        let e = sa_energy(self.model, dup, alpha);
        let mut map = self.energies.lock().expect("energy memo");
        if map.len() < self.config.capacity {
            map.insert(key, e);
        }
        e
    }

    /// Scores one macro-partitioning candidate: components allocation plus
    /// the analytic model, memoized on the canonical candidate key.
    ///
    /// Every call — hit or miss — charges one evaluation to `ctx`'s budget
    /// counter, so cached and uncached runs stop at identical points.
    pub fn score(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
        ctx: &ExploreContext<'_>,
    ) -> CandidateScore {
        let wt_dup = Arc::new(df.programs().iter().map(|p| p.wt_dup).collect::<Vec<_>>());
        self.score_with(df, point, gene, &wt_dup, ctx)
    }

    /// [`score`](Self::score) with the batch-invariant key prefix hoisted:
    /// `wt_dup` is the dataflow's duplication vector, shared by every key of
    /// a batch instead of re-collected per candidate.
    fn score_with(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
        wt_dup: &Arc<Vec<usize>>,
        ctx: &ExploreContext<'_>,
    ) -> CandidateScore {
        ctx.count_evaluations(1);
        self.scored.fetch_add(1, Ordering::Relaxed);
        if !self.config.enabled {
            self.unique.fetch_add(1, Ordering::Relaxed);
            let (fitness, completed) = self.compute(df, point, gene);
            return CandidateScore {
                fitness,
                feasible: completed.is_some(),
            };
        }
        let key = CandidateKey {
            ratio_bits: point.ratio_rram.to_bits(),
            crossbar: point.crossbar,
            dac_bits: df.dac().bits(),
            wt_dup: Arc::clone(wt_dup),
            gene: gene.as_slice().to_vec(),
        };
        if let Some(hit) = self
            .candidates
            .lock()
            .expect("candidate memo")
            .get(&key)
            .copied()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.unique.fetch_add(1, Ordering::Relaxed);
        let (fitness, completed) = self.compute(df, point, gene);
        let score = CandidateScore {
            fitness,
            feasible: completed.is_some(),
        };
        let mut map = self.candidates.lock().expect("candidate memo");
        if map.len() < self.config.capacity {
            map.insert(key, score);
        }
        score
    }

    /// Scores a whole generation of candidates, returning `(scores,
    /// charged)`: scores in input order (deterministic reduction) and the
    /// number of candidates actually scored and charged to the budget.
    ///
    /// The loop checks `ctx` cooperatively before every candidate; once a
    /// stop (cancellation, deadline, exhausted budget) is observed, the
    /// remaining candidates come back as [`CandidateScore::INFEASIBLE`]
    /// placeholders without being computed or charged — cancellation stays
    /// as prompt as a serial per-child loop. With `parallel`, the batch
    /// spreads over scoped worker threads; completed (un-stopped) runs are
    /// identical either way — only wall-clock differs.
    pub fn score_batch(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        genes: &[MacAllocGene],
        parallel: bool,
        ctx: &ExploreContext<'_>,
    ) -> (Vec<CandidateScore>, usize) {
        let wt_dup = Arc::new(df.programs().iter().map(|p| p.wt_dup).collect::<Vec<_>>());
        let score_chunk = |chunk: &[MacAllocGene]| -> (Vec<CandidateScore>, usize) {
            let mut out = Vec::with_capacity(chunk.len());
            let mut charged = 0usize;
            for gene in chunk {
                if ctx.should_stop() {
                    out.resize(chunk.len(), CandidateScore::INFEASIBLE);
                    break;
                }
                out.push(self.score_with(df, point, gene, &wt_dup, ctx));
                charged += 1;
            }
            (out, charged)
        };
        if !parallel || genes.len() < 2 {
            return score_chunk(genes);
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(genes.len());
        let chunk = genes.len().div_ceil(workers);
        let mut out = Vec::with_capacity(genes.len());
        let mut charged = 0usize;
        let score_chunk = &score_chunk;
        std::thread::scope(|s| {
            let handles: Vec<_> = genes
                .chunks(chunk)
                .map(|chunk_genes| s.spawn(move || score_chunk(chunk_genes)))
                .collect();
            // Chunks joined in submission order: the reduction is
            // deterministic regardless of thread scheduling.
            for handle in handles {
                let (scores, n) = handle.join().expect("batch scorer panicked");
                out.extend(scores);
                charged += n;
            }
        });
        (out, charged)
    }

    /// Recomputes the completed architecture and analytic report of a
    /// previously scored, feasible candidate (typically the winner). Not
    /// charged to the exploration budget and not counted as a scored
    /// candidate: the memo stores only slim scores, so realization
    /// re-derives what an unmemoized pipeline would have kept — per-layer
    /// memo hits keep it cheap. Returns `None` for infeasible candidates.
    pub fn realize(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
    ) -> Option<(Architecture, SimReport)> {
        self.compute(df, point, gene).1
    }

    /// Snapshot of the cumulative throughput counters.
    pub fn stats(&self) -> EvaluatorStats {
        let layer = self.layer_costs.stats();
        EvaluatorStats {
            scored: self.scored.load(Ordering::Relaxed),
            unique_evaluations: self.unique.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            sa_probes: self.sa_probes.load(Ordering::Relaxed),
            sa_cache_hits: self.sa_hits.load(Ordering::Relaxed),
            layer_hits: layer.hits,
            layer_misses: layer.misses,
        }
    }

    /// The full scoring pipeline for one candidate (allocation + analytic
    /// model); pure, so memoization is transparent.
    fn compute(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
    ) -> (f64, Option<(Architecture, SimReport)>) {
        let (macros, shares) = gene.decode();
        let req = AllocRequest {
            model: self.model,
            dataflow: df,
            point,
            total_power: self.total_power,
            hw: self.hw,
            macros: &macros,
            shares: &shares,
            macro_mode: self.macro_mode,
        };
        let Ok(arch) = allocate_components(&req) else {
            return (0.0, None);
        };
        let evaluated = if self.config.enabled {
            evaluate_analytic_cached(self.model, df, &arch, &self.layer_costs)
        } else {
            evaluate_analytic(self.model, df, &arch)
        };
        match evaluated {
            Ok(report) => (self.objective.fitness(&report), Some((arch, report))),
            Err(_) => (0.0, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::{DacConfig, HardwareParams};
    use pimsyn_model::zoo;

    fn setup() -> (Model, Dataflow, DesignPoint) {
        let model = zoo::alexnet_cifar(10);
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(1).unwrap();
        let dup = vec![1; model.weight_layer_count()];
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        let point = DesignPoint {
            ratio_rram: 0.3,
            crossbar: xb,
        };
        (model, df, point)
    }

    fn evaluator<'a>(
        model: &'a Model,
        hw: &'a HardwareParams,
        config: EvalCacheConfig,
    ) -> CandidateEvaluator<'a> {
        CandidateEvaluator::new(
            model,
            Watts(9.0),
            hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            config,
        )
    }

    fn gene(l: usize, macros: usize) -> MacAllocGene {
        MacAllocGene::encode(&vec![macros; l], &vec![None; l])
    }

    #[test]
    fn repeated_scores_hit_the_memo_and_match() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::unobserved();
        let a = eval.score(&df, point, &gene(l, 1), &ctx);
        let b = eval.score(&df, point, &gene(l, 1), &ctx);
        assert_eq!(a, b, "hit must return the stored score verbatim");
        let stats = eval.stats();
        assert_eq!(stats.scored, 2);
        assert_eq!(stats.unique_evaluations, 1);
        assert_eq!(stats.cache_hits, 1);
        // Both requests were charged to the budget (cache-transparent).
        assert_eq!(ctx.evaluations(), 2);
    }

    #[test]
    fn disabled_cache_recomputes_but_matches() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let cached = evaluator(&model, &hw, EvalCacheConfig::default());
        let plain = evaluator(&model, &hw, EvalCacheConfig::disabled());
        let ctx = ExploreContext::unobserved();
        let g = gene(l, 2);
        let a = cached.score(&df, point, &g, &ctx);
        let b = plain.score(&df, point, &g, &ctx);
        assert_eq!(a, b);
        // Realized implementations (full architecture + report) also agree
        // bit-for-bit between the layer-memoized and plain pipelines.
        match (
            cached.realize(&df, point, &g),
            plain.realize(&df, point, &g),
        ) {
            (Some((aa, ar)), Some((ba, br))) => {
                assert_eq!(aa, ba);
                assert_eq!(ar, br);
            }
            (None, None) => assert!(!a.feasible),
            _ => panic!("cached and uncached disagree on feasibility"),
        }
        assert_eq!(plain.stats().cache_hits, 0);
        assert_eq!(plain.stats().unique_evaluations, 1);
    }

    #[test]
    fn batch_parallel_matches_serial_in_order() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let genes: Vec<MacAllocGene> = (1..=4).map(|m| gene(l, m)).collect();
        let ctx = ExploreContext::unobserved();
        let hw = HardwareParams::date24();
        let serial = evaluator(&model, &hw, EvalCacheConfig::default());
        let parallel = evaluator(&model, &hw, EvalCacheConfig::default());
        let (a, a_charged) = serial.score_batch(&df, point, &genes, false, &ctx);
        let (b, b_charged) = parallel.score_batch(&df, point, &genes, true, &ctx);
        assert_eq!(a, b);
        assert_eq!(a_charged, genes.len());
        assert_eq!(b_charged, genes.len());
    }

    #[test]
    fn score_batch_stops_cooperatively_mid_batch() {
        use crate::ctx::{CancelToken, ExploreBudget, NullObserver};
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::new(
            &NullObserver,
            CancelToken::new(),
            ExploreBudget::unlimited().with_max_evaluations(2),
        );
        let genes: Vec<MacAllocGene> = (1..=5).map(|m| gene(l, m)).collect();
        let (scores, charged) = eval.score_batch(&df, point, &genes, false, &ctx);
        // The budget trips after two candidates; the rest are skipped
        // placeholders and nothing further is charged.
        assert_eq!(scores.len(), genes.len());
        assert_eq!(charged, 2);
        assert_eq!(ctx.evaluations(), 2);
        assert_eq!(scores[2], CandidateScore::INFEASIBLE);
        assert_eq!(scores[4], CandidateScore::INFEASIBLE);
    }

    #[test]
    fn realize_reconstructs_a_feasible_winner() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::unobserved();
        let g = gene(l, 1);
        let score = eval.score(&df, point, &g, &ctx);
        assert!(score.feasible);
        let (arch, report) = eval.realize(&df, point, &g).expect("feasible");
        arch.validate(&model).expect("realized winner validates");
        assert_eq!(eval.objective().fitness(&report), score.fitness);
        // Realization is free: neither scored nor budget-charged.
        assert_eq!(eval.stats().scored, 1);
        assert_eq!(ctx.evaluations(), 1);
    }

    #[test]
    fn sa_energy_memo_is_transparent() {
        let (model, _, _) = setup();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let dup = vec![2; model.weight_layer_count()];
        let direct = sa_energy(&model, &dup, 0.5);
        assert_eq!(eval.sa_energy(&dup, 0.5), direct);
        assert_eq!(eval.sa_energy(&dup, 0.5), direct);
        let stats = eval.stats();
        assert_eq!(stats.sa_probes, 2);
        assert_eq!(stats.sa_cache_hits, 1);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default().with_capacity(0));
        let ctx = ExploreContext::unobserved();
        eval.score(&df, point, &gene(l, 1), &ctx);
        eval.score(&df, point, &gene(l, 1), &ctx);
        let stats = eval.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.unique_evaluations, 2);
    }

    #[test]
    fn stats_hit_rate() {
        let stats = EvaluatorStats {
            scored: 4,
            unique_evaluations: 3,
            cache_hits: 1,
            ..EvaluatorStats::default()
        };
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(EvaluatorStats::default().hit_rate(), 0.0);
    }
}
