//! The unified candidate-evaluation pipeline shared by all four synthesis
//! stages.
//!
//! Algorithm 1 spends essentially all of its time scoring candidates: every
//! SA weight-duplication probe, every EA macro-partitioning gene and every
//! outer design point runs dataflow compilation, components allocation and
//! the analytic performance model. Evaluation is layered:
//!
//! - [`EvalCore`] is the *pure scoring pipeline* — components allocation
//!   plus the analytic model (with per-layer base-cost memoization via
//!   [`pimsyn_sim::LayerCostCache`]) for one run's fixed model, power,
//!   hardware, macro mode and objective. It holds no policy: scoring a
//!   candidate through it is a pure function.
//! - An [`EvalBackend`](crate::backend::EvalBackend) decides *where* core
//!   scoring runs: inline on the calling thread, across a scoped thread
//!   pool, or on `pimsyn --worker` child processes. All backends are
//!   bit-identical; only wall-clock differs.
//! - The [`CandidateEvaluator`] composes a core and a backend with the
//!   *caching and accounting* layers: a memo keyed by the canonicalized
//!   candidate, an SA energy memo, budget charging, statistics, and an
//!   optional [`PersistentEvalCache`](crate::backend::PersistentEvalCache)
//!   that warm-starts the memo from a cache file and writes it back when
//!   the run finishes.
//!
//! Caching is *transparent*: evaluation is a pure function of the
//! candidate, so cached and uncached (and warm- and cold-started) runs
//! produce bit-identical outcomes, and every scored candidate — hit or miss
//! — is charged to the [`ExploreContext`] budget exactly as before. Unique
//! evaluations (memo misses) are charged to the separate
//! `max_unique_evaluations` budget and reported through [`EvaluatorStats`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use pimsyn_arch::{Architecture, CrossbarConfig, HardwareParams, MacroMode, Watts};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;
use pimsyn_sim::{evaluate_analytic, evaluate_analytic_cached, LayerCostCache, SimReport};

use crate::alloc::{allocate_components, AllocRequest};
use crate::backend::{
    BackendStats, CacheSnapshot, EvalBackend, EvalBackendConfig, EvalJob, PersistentEvalCache,
    SharedEvalResources,
};
use crate::ctx::ExploreContext;
use crate::delta::{DeltaEngine, DeltaOutcome};
use crate::ea::{MacAllocGene, Objective};
use crate::sa::SaTable;
use crate::space::DesignPoint;

/// Configuration of the evaluator's memo caches (candidate memo, SA energy
/// memo, per-layer analytic costs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalCacheConfig {
    /// Master switch; disabled, every candidate is computed from scratch.
    pub enabled: bool,
    /// Maximum entries per memo map; once full, new results are returned
    /// without being stored (no eviction, so memory stays bounded and
    /// resident entries keep hitting).
    pub capacity: usize,
    /// Delta (incremental) rescoring: memo misses whose EA parent has a
    /// retained per-layer breakdown recompute only the layers the gene diff
    /// touches (see [`crate::CandidateEvaluator::score_batch_with_parents`]).
    /// Bit-identical to full scoring; independent of the memo switch so
    /// ablations can isolate either mechanism. Only effective under
    /// [`MacroMode::Specialized`] (the identical-macro homogenize pass is
    /// not replicated incrementally).
    pub delta: bool,
}

impl EvalCacheConfig {
    /// Default capacity: roomy for a paper-scale run while bounding worst-
    /// case memory (one entry holds a [`CandidateScore`], two words).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Caching on, default capacity (the default).
    pub fn enabled() -> Self {
        Self::default()
    }

    /// Caching off: every candidate recomputed (for ablations and the
    /// throughput benchmark's baseline arm). Also turns delta rescoring off,
    /// so this is the all-mechanisms-off reference configuration.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            capacity: 0,
            delta: false,
        }
    }

    /// Overrides the per-map entry bound.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Overrides the delta-rescoring switch (independent of the memo switch:
    /// the throughput benchmark's delta arm runs memo-off, delta-on).
    #[must_use]
    pub fn with_delta(mut self, delta: bool) -> Self {
        self.delta = delta;
        self
    }
}

impl Default for EvalCacheConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
            delta: true,
        }
    }
}

/// Cumulative evaluator throughput counters, reported through
/// [`ExploreEvent::EvaluatorStats`](crate::ExploreEvent::EvaluatorStats).
///
/// `scored` counts every candidate scoring request (and matches what the
/// budget counter was charged); `unique_evaluations + cache_hits == scored`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvaluatorStats {
    /// Candidate scoring requests (cache hits included).
    pub scored: usize,
    /// Full compile → allocate → analytic-model evaluations actually run.
    pub unique_evaluations: usize,
    /// Requests served from the candidate memo.
    pub cache_hits: usize,
    /// SA energy-function probes (weight-duplication stage).
    pub sa_probes: usize,
    /// SA probes served from the energy memo.
    pub sa_cache_hits: usize,
    /// Per-layer base-cost lookups served from the layer memo.
    pub layer_hits: usize,
    /// Per-layer base costs computed from scratch.
    pub layer_misses: usize,
    /// Memo entries warm-started from a persistent cache file.
    pub preloaded: usize,
    /// Memo misses rescored incrementally from the parent's retained
    /// per-layer breakdown (delta path).
    pub delta_hits: usize,
    /// Parent-offered candidates that fell back to a full recomputation
    /// (no retained parent breakdown, or a gene diff wider than one
    /// mutation round).
    pub delta_fallbacks: usize,
    /// Per-layer base-cost recomputations performed by the delta engine
    /// (fallbacks recompute every layer; pure delta hits only the touched
    /// ones).
    pub layers_recomputed: usize,
}

impl EvaluatorStats {
    /// Fraction of candidate scoring requests served from the memo.
    pub fn hit_rate(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.scored as f64
        }
    }
}

/// Canonical identity of one candidate within a synthesis run. The model,
/// power constraint, hardware constants, macro mode and objective are fixed
/// per evaluator, so the key only carries what varies between candidates.
/// This is also the serialized identity in persistent cache files (see
/// [`CacheSnapshot`]).
#[derive(Debug, Hash, PartialEq, Eq, Clone)]
pub struct CandidateKey {
    /// `RatioRram` (bit pattern — the grid values are exact constants).
    pub ratio_bits: u64,
    /// Crossbar size and cell resolution.
    pub crossbar: CrossbarConfig,
    /// DAC resolution in bits.
    pub dac_bits: u32,
    /// Per-layer weight duplication; shared across every key of a batch
    /// (hash/eq see through the `Arc`).
    pub wt_dup: Arc<Vec<usize>>,
    /// The `MacAlloc` gene in the paper's canonical `owner*1000 + n`
    /// encoding (macro counts and sharing in one vector).
    pub gene: Vec<u32>,
}

/// Fitness and feasibility of one scored candidate.
///
/// Deliberately slim (two words): the memo cache holds one of these per
/// unique candidate, so it stores no architecture or report —
/// [`CandidateEvaluator::realize`] recomputes a winner's full implementation
/// on demand (cheap, since it hits the per-layer cost memo).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateScore {
    /// Objective fitness (0 for infeasible candidates).
    pub fitness: f64,
    /// Whether the candidate allocated and evaluated successfully.
    pub feasible: bool,
}

impl CandidateScore {
    /// A candidate that failed allocation or evaluation — also the
    /// placeholder for candidates skipped after a cooperative stop.
    pub const INFEASIBLE: Self = Self {
        fitness: 0.0,
        feasible: false,
    };
}

/// The pure scoring pipeline for one synthesis run: fixed model, power
/// budget, hardware constants, macro mode and objective, plus the per-layer
/// base-cost memo. Backends receive a reference to this when they score.
///
/// [`compute`](Self::compute) and [`score`](Self::score) are pure functions
/// of the candidate (the layer memo is transparent), which is what makes
/// memoization, thread pools, worker processes and persistent caches all
/// bit-identical to plain inline evaluation.
pub struct EvalCore<'a> {
    model: &'a Model,
    total_power: Watts,
    hw: &'a HardwareParams,
    macro_mode: MacroMode,
    objective: Objective,
    layer_cache_enabled: bool,
    layer_costs: LayerCostCache,
}

impl std::fmt::Debug for EvalCore<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCore")
            .field("objective", &self.objective)
            .field("macro_mode", &self.macro_mode)
            .field("total_power", &self.total_power)
            .finish_non_exhaustive()
    }
}

impl<'a> EvalCore<'a> {
    /// A scoring core for one synthesis run.
    pub fn new(
        model: &'a Model,
        total_power: Watts,
        hw: &'a HardwareParams,
        macro_mode: MacroMode,
        objective: Objective,
        cache: EvalCacheConfig,
    ) -> Self {
        let layer_capacity = if cache.enabled { cache.capacity } else { 0 };
        Self {
            model,
            total_power,
            hw,
            macro_mode,
            objective,
            layer_cache_enabled: cache.enabled,
            layer_costs: LayerCostCache::with_capacity(layer_capacity),
        }
    }

    /// The CNN being synthesized.
    pub fn model(&self) -> &Model {
        self.model
    }

    /// The run's total power constraint.
    pub fn total_power(&self) -> Watts {
        self.total_power
    }

    /// The run's hardware parameters.
    pub fn hw(&self) -> &HardwareParams {
        self.hw
    }

    /// Identical vs specialized macros.
    pub fn macro_mode(&self) -> MacroMode {
        self.macro_mode
    }

    /// What fitness maximizes.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The per-layer base-cost memo.
    pub fn layer_costs(&self) -> &LayerCostCache {
        &self.layer_costs
    }

    /// The full scoring pipeline for one candidate (allocation + analytic
    /// model); pure, so memoization is transparent.
    pub fn compute(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
    ) -> (f64, Option<(Architecture, SimReport)>) {
        let (macros, shares) = gene.decode();
        let req = AllocRequest {
            model: self.model,
            dataflow: df,
            point,
            total_power: self.total_power,
            hw: self.hw,
            macros: &macros,
            shares: &shares,
            macro_mode: self.macro_mode,
        };
        let Ok(arch) = allocate_components(&req) else {
            return (0.0, None);
        };
        let evaluated = if self.layer_cache_enabled {
            evaluate_analytic_cached(self.model, df, &arch, &self.layer_costs)
        } else {
            evaluate_analytic(self.model, df, &arch)
        };
        match evaluated {
            Ok(report) => (self.objective.fitness(&report), Some((arch, report))),
            Err(_) => (0.0, None),
        }
    }

    /// [`compute`](Self::compute) reduced to the slim score.
    pub fn score(&self, df: &Dataflow, point: DesignPoint, gene: &MacAllocGene) -> CandidateScore {
        let (fitness, completed) = self.compute(df, point, gene);
        CandidateScore {
            fitness,
            feasible: completed.is_some(),
        }
    }
}

/// The candidate memo: scores keyed by canonical candidate, stamped with a
/// monotonically increasing insertion sequence so flush-time trimming (and
/// the serialized cache file) can order entries oldest-first.
#[derive(Default)]
struct CandidateMemo {
    map: HashMap<CandidateKey, (CandidateScore, u64)>,
    next_seq: u64,
}

impl CandidateMemo {
    fn get(&self, key: &CandidateKey) -> Option<CandidateScore> {
        self.map.get(key).map(|(score, _)| *score)
    }

    fn insert(&mut self, key: CandidateKey, score: CandidateScore) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.map.insert(key, (score, seq));
    }
}

/// The shared evaluation layer: scores macro-partitioning candidates
/// (components allocation + analytic model) and SA duplication probes, with
/// memoization, per-layer incremental costs, batch parallelism through a
/// pluggable [`EvalBackend`] and optional cross-run persistence.
///
/// One evaluator spans one synthesis run (fixed model, power budget,
/// hardware constants, macro mode and objective); worker threads share it by
/// reference. Construction is cheap, so standalone stages (e.g.
/// [`explore_macro_partitioning`](crate::explore_macro_partitioning)) build
/// their own.
pub struct CandidateEvaluator<'a> {
    core: EvalCore<'a>,
    backend: Box<dyn EvalBackend>,
    config: EvalCacheConfig,
    persist: Option<PersistentEvalCache>,
    /// Flush-time cap on persisted candidate-score entries (oldest trimmed
    /// first); `None` persists the whole memo.
    persist_cap: Option<usize>,
    /// Cross-run shared resources: consulted before the cache file on
    /// preload, published to on flush.
    shared: Option<Arc<SharedEvalResources>>,
    candidates: Mutex<CandidateMemo>,
    energies: Mutex<HashMap<(Vec<usize>, u64), f64>>,
    /// Per-layer static Eq. (4) terms, so SA energy misses skip the model
    /// walk.
    sa_table: SaTable,
    /// Retained per-layer breakdowns for incremental rescoring.
    delta: DeltaEngine,
    scored: AtomicUsize,
    unique: AtomicUsize,
    hits: AtomicUsize,
    sa_probes: AtomicUsize,
    sa_hits: AtomicUsize,
    delta_hits: AtomicUsize,
    delta_fallbacks: AtomicUsize,
    layers_recomputed: AtomicUsize,
    preloaded: usize,
}

impl std::fmt::Debug for CandidateEvaluator<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CandidateEvaluator")
            .field("config", &self.config)
            .field("backend", &self.backend.name())
            .field("objective", &self.core.objective())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<'a> CandidateEvaluator<'a> {
    /// An evaluator for one synthesis run, scoring inline with no cross-run
    /// persistence (the historical default).
    pub fn new(
        model: &'a Model,
        total_power: Watts,
        hw: &'a HardwareParams,
        macro_mode: MacroMode,
        objective: Objective,
        config: EvalCacheConfig,
    ) -> Self {
        Self::with_backend(
            model,
            total_power,
            hw,
            macro_mode,
            objective,
            config,
            &EvalBackendConfig::inline(),
        )
    }

    /// An evaluator scoring through the configured backend, warm-started
    /// from the configured persistent cache file when its fingerprint
    /// matches this run.
    pub fn with_backend(
        model: &'a Model,
        total_power: Watts,
        hw: &'a HardwareParams,
        macro_mode: MacroMode,
        objective: Objective,
        config: EvalCacheConfig,
        backend_cfg: &EvalBackendConfig,
    ) -> Self {
        let core = EvalCore::new(model, total_power, hw, macro_mode, objective, config);
        let backend = backend_cfg.build();
        let mut evaluator = Self {
            core,
            backend,
            config,
            persist: None,
            persist_cap: backend_cfg.cache_max_entries,
            shared: backend_cfg.shared.clone(),
            candidates: Mutex::new(CandidateMemo::default()),
            energies: Mutex::new(HashMap::new()),
            sa_table: SaTable::new(model),
            delta: DeltaEngine::new(),
            scored: AtomicUsize::new(0),
            unique: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            sa_probes: AtomicUsize::new(0),
            sa_hits: AtomicUsize::new(0),
            delta_hits: AtomicUsize::new(0),
            delta_fallbacks: AtomicUsize::new(0),
            layers_recomputed: AtomicUsize::new(0),
            preloaded: 0,
        };
        if let Some(path) = &backend_cfg.cache_file {
            if config.enabled {
                let persist = PersistentEvalCache::for_run(
                    path,
                    model,
                    total_power,
                    hw,
                    macro_mode,
                    objective,
                );
                // A snapshot published by an earlier (or concurrent) run
                // sharing our resources beats re-reading the file: it is at
                // least as fresh, and concurrent jobs warm-start each other
                // before anything is flushed to disk.
                let snapshot = evaluator
                    .shared
                    .as_ref()
                    .and_then(|shared| shared.snapshot(persist.fingerprint()))
                    .map(|snapshot| (*snapshot).clone())
                    .or_else(|| persist.load());
                if let Some(snapshot) = snapshot {
                    evaluator.preloaded = evaluator.preload(snapshot);
                }
                evaluator.persist = Some(persist);
            }
        }
        evaluator
    }

    /// Seeds the memo maps from a loaded snapshot, respecting the capacity
    /// bound; returns how many candidate scores were installed. Snapshot
    /// order is preserved as insertion order, so a preloaded entry counts
    /// as older than anything scored in this run.
    fn preload(&self, snapshot: CacheSnapshot) -> usize {
        let mut memo = self.candidates.lock().expect("candidate memo");
        let mut inserted = 0;
        for (key, score) in snapshot.scores {
            if memo.map.len() >= self.config.capacity {
                break;
            }
            memo.insert(key, score);
            inserted += 1;
        }
        drop(memo);
        self.core.layer_costs.preload(snapshot.layer_costs);
        inserted
    }

    /// The objective this evaluator's fitness values maximize.
    pub fn objective(&self) -> Objective {
        self.core.objective()
    }

    /// The pure scoring core (what backends execute).
    pub fn core(&self) -> &EvalCore<'a> {
        &self.core
    }

    /// The backend scoring runs on.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Snapshot of the backend's own counters (batches, remote/fallback
    /// jobs, worker spawns).
    pub fn backend_stats(&self) -> BackendStats {
        self.backend.stats()
    }

    /// Memo entries warm-started from the persistent cache file.
    pub fn preloaded_entries(&self) -> usize {
        self.preloaded
    }

    /// The Eq. (4) SA energy of a duplication vector, memoized. Identical to
    /// [`crate::sa_energy`] (the memo and the precomputed per-layer table
    /// are both transparent).
    pub fn sa_energy(&self, dup: &[usize], alpha: f64) -> f64 {
        self.sa_probes.fetch_add(1, Ordering::Relaxed);
        if !self.config.enabled {
            return self.sa_table.energy(dup, alpha);
        }
        let key = (dup.to_vec(), alpha.to_bits());
        if let Some(&e) = self.energies.lock().expect("energy memo").get(&key) {
            self.sa_hits.fetch_add(1, Ordering::Relaxed);
            return e;
        }
        let e = self.sa_table.energy(dup, alpha);
        let mut map = self.energies.lock().expect("energy memo");
        if map.len() < self.config.capacity {
            map.insert(key, e);
        }
        e
    }

    fn make_key(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
        wt_dup: &Arc<Vec<usize>>,
    ) -> CandidateKey {
        CandidateKey {
            ratio_bits: point.ratio_rram.to_bits(),
            crossbar: point.crossbar,
            dac_bits: df.dac().bits(),
            wt_dup: Arc::clone(wt_dup),
            gene: gene.as_slice().to_vec(),
        }
    }

    fn store(&self, key: CandidateKey, score: CandidateScore) {
        let mut memo = self.candidates.lock().expect("candidate memo");
        if memo.map.len() < self.config.capacity {
            memo.insert(key, score);
        }
    }

    /// Scores one macro-partitioning candidate: components allocation plus
    /// the analytic model, memoized on the canonical candidate key.
    ///
    /// Every call — hit or miss — charges one evaluation to `ctx`'s budget
    /// counter, so cached and uncached runs stop at identical points; only
    /// misses charge the unique-evaluation budget.
    pub fn score(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
        ctx: &ExploreContext<'_>,
    ) -> CandidateScore {
        self.score_with_parent(df, point, gene, None, ctx)
    }

    /// [`score`](Self::score) with parent identity: when delta rescoring is
    /// active and the parent's per-layer breakdown is retained, a memo miss
    /// recomputes only the layers the gene diff touches instead of running
    /// the full allocation + analytic pipeline. Bit-identical to a plain
    /// [`score`](Self::score) call; budgets, memo accounting and statistics
    /// are charged exactly as before, with the delta counters reported on
    /// top.
    pub fn score_with_parent(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
        parent: Option<&MacAllocGene>,
        ctx: &ExploreContext<'_>,
    ) -> CandidateScore {
        ctx.count_evaluations(1);
        self.scored.fetch_add(1, Ordering::Relaxed);
        let parent = if self.delta_active() { parent } else { None };
        if !self.config.enabled {
            self.unique.fetch_add(1, Ordering::Relaxed);
            ctx.count_unique_evaluations(1);
            if let Some(p) = parent {
                let wt_dup = Arc::new(df.programs().iter().map(|p| p.wt_dup).collect::<Vec<_>>());
                return self.delta_score_one(df, point, gene, p, &wt_dup);
            }
            let job = EvalJob { df, point, gene };
            return self.backend.score(&self.core, &job);
        }
        let wt_dup = Arc::new(df.programs().iter().map(|p| p.wt_dup).collect::<Vec<_>>());
        let key = self.make_key(df, point, gene, &wt_dup);
        if let Some(hit) = self.candidates.lock().expect("candidate memo").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.unique.fetch_add(1, Ordering::Relaxed);
        ctx.count_unique_evaluations(1);
        let score = if let Some(p) = parent {
            self.delta_score_one(df, point, gene, p, &wt_dup)
        } else {
            let job = EvalJob { df, point, gene };
            self.backend.score(&self.core, &job)
        };
        self.store(key, score);
        score
    }

    /// Whether parent-aware calls route misses through the delta engine.
    /// Identical macro mode homogenizes component counts across layers —
    /// a global coupling the engine does not replicate — so delta stays
    /// specialized-only.
    fn delta_active(&self) -> bool {
        self.config.delta && self.core.macro_mode() == MacroMode::Specialized
    }

    fn record_delta(&self, out: &DeltaOutcome) {
        if out.used_delta {
            self.delta_hits.fetch_add(1, Ordering::Relaxed);
        }
        if out.fallback {
            self.delta_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        if out.layers_recomputed > 0 {
            self.layers_recomputed
                .fetch_add(out.layers_recomputed, Ordering::Relaxed);
        }
    }

    fn delta_score_one(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
        parent: &MacAllocGene,
        wt_dup: &Arc<Vec<usize>>,
    ) -> CandidateScore {
        let mut session = self.delta.session(&self.core, df, point, wt_dup);
        let out = session.score(gene, Some(parent.as_slice()));
        self.record_delta(&out);
        out.score
    }

    /// Scores a whole generation of candidates, returning `(scores,
    /// charged)`: scores in input order (deterministic reduction) and the
    /// number of candidates actually scored and charged to the budget.
    ///
    /// The accounting pass is serial and cooperative: each candidate checks
    /// `ctx` before being charged, and once a stop (cancellation, deadline,
    /// exhausted budget) is observed the remaining candidates come back as
    /// [`CandidateScore::INFEASIBLE`] placeholders without being computed
    /// or charged. The memo misses that survive the pass are then scored by
    /// the backend as one batch — inline, thread pool and subprocess
    /// backends all return bit-identical scores, so completed runs are
    /// identical across backends; only wall-clock differs. Duplicates
    /// *within* a batch are computed once and counted as cache hits (the
    /// serial path would have found them in the memo).
    ///
    /// Cancellation additionally short-circuits *inside* the backend batch
    /// (per job for inline/threads, per chunk for subprocess), so
    /// `CancelToken::cancel` stays prompt even mid-generation; the
    /// resulting placeholders are never stored in the memo (a cancelled
    /// run's results are discarded anyway). Budget and deadline stops are
    /// observed only by the accounting pass: once a candidate has been
    /// charged it is always genuinely computed.
    pub fn score_batch(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        genes: &[MacAllocGene],
        ctx: &ExploreContext<'_>,
    ) -> (Vec<CandidateScore>, usize) {
        self.score_batch_with_parents(df, point, genes, &[], ctx)
    }

    /// [`score_batch`](Self::score_batch) with per-candidate parent
    /// identity: `parents[i]` names the gene candidate `i` was mutated from
    /// (missing or `None` entries score through the backend as before).
    /// When delta rescoring is active, memo misses with a usable parent are
    /// rescored incrementally during the accounting pass — the result lands
    /// in the memo immediately, so in-batch duplicates hit it exactly where
    /// the plain path would have counted a pending-duplicate hit. Scores,
    /// budget charges, `evaluations` and memo contents are bit-identical to
    /// [`score_batch`](Self::score_batch); only wall-clock (and the delta
    /// counters in [`EvaluatorStats`]) differ.
    pub fn score_batch_with_parents(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        genes: &[MacAllocGene],
        parents: &[Option<&MacAllocGene>],
        ctx: &ExploreContext<'_>,
    ) -> (Vec<CandidateScore>, usize) {
        let n = genes.len();
        let wt_dup = Arc::new(df.programs().iter().map(|p| p.wt_dup).collect::<Vec<_>>());
        let mut out = vec![CandidateScore::INFEASIBLE; n];
        let mut charged = 0usize;
        // Misses pending backend scoring: the unique key (None with caching
        // disabled) and every input index it resolves.
        let mut pending: Vec<(Option<CandidateKey>, Vec<usize>)> = Vec::new();
        let mut pending_index: HashMap<CandidateKey, usize> = HashMap::new();
        // One engine session serves the whole batch (single plan lookup).
        let mut session = if self.delta_active() && parents.iter().any(|p| p.is_some()) {
            Some(self.delta.session(&self.core, df, point, &wt_dup))
        } else {
            None
        };

        for (i, gene) in genes.iter().enumerate() {
            if ctx.should_stop() {
                break;
            }
            ctx.count_evaluations(1);
            self.scored.fetch_add(1, Ordering::Relaxed);
            charged += 1;
            let parent = parents.get(i).copied().flatten();
            if !self.config.enabled {
                self.unique.fetch_add(1, Ordering::Relaxed);
                ctx.count_unique_evaluations(1);
                if let (Some(session), Some(p)) = (session.as_mut(), parent) {
                    let o = session.score(gene, Some(p.as_slice()));
                    self.record_delta(&o);
                    out[i] = o.score;
                } else {
                    pending.push((None, vec![i]));
                }
                continue;
            }
            let key = self.make_key(df, point, gene, &wt_dup);
            if let Some(hit) = self.candidates.lock().expect("candidate memo").get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                out[i] = hit;
                continue;
            }
            if let Some(&p) = pending_index.get(&key) {
                // Duplicate of an in-flight miss: one computation serves
                // both, and the duplicate counts as the hit the serial
                // path would have recorded.
                self.hits.fetch_add(1, Ordering::Relaxed);
                pending[p].1.push(i);
                continue;
            }
            self.unique.fetch_add(1, Ordering::Relaxed);
            ctx.count_unique_evaluations(1);
            if let (Some(session), Some(p)) = (session.as_mut(), parent) {
                // Delta-eligible miss: computed inline and stored at once,
                // so a later in-batch duplicate becomes a memo hit — the
                // same accounting the pending-duplicate path records.
                let o = session.score(gene, Some(p.as_slice()));
                self.record_delta(&o);
                out[i] = o.score;
                self.store(key, o.score);
                continue;
            }
            pending_index.insert(key.clone(), pending.len());
            pending.push((Some(key), vec![i]));
        }
        drop(session);

        if !pending.is_empty() {
            let jobs: Vec<EvalJob<'_>> = pending
                .iter()
                .map(|(_, indices)| EvalJob {
                    df,
                    point,
                    gene: &genes[indices[0]],
                })
                .collect();
            // Only cancellation is routed into the backend: charged
            // candidates must compute under budget/deadline stops, but a
            // cancelled run's scores are discarded, so skipping is safe.
            let cancel = ctx.cancel_token();
            let scores = self
                .backend
                .score_batch(&self.core, &jobs, &|| cancel.is_cancelled());
            // Enforce the batch contract even for misbehaving third-party
            // backends: a short (or long) result vector is a backend
            // failure, and the whole batch recomputes inline rather than
            // silently discarding candidates.
            let scores = if scores.len() == jobs.len() {
                scores
            } else {
                jobs.iter()
                    .map(|job| self.core.score(job.df, job.point, job.gene))
                    .collect()
            };
            // A cancellation observed during the batch may have left
            // INFEASIBLE placeholders in `scores`; storing those would
            // poison the memo (and, via flush, the persistent cache file).
            let poisoned = cancel.is_cancelled();
            for ((key, indices), score) in pending.into_iter().zip(scores) {
                for i in indices {
                    out[i] = score;
                }
                if let (Some(key), false) = (key, poisoned) {
                    self.store(key, score);
                }
            }
        }
        (out, charged)
    }

    /// Recomputes the completed architecture and analytic report of a
    /// previously scored, feasible candidate (typically the winner). Not
    /// charged to the exploration budget and not counted as a scored
    /// candidate: the memo stores only slim scores, so realization
    /// re-derives what an unmemoized pipeline would have kept — per-layer
    /// memo hits keep it cheap. Always computed in-process (the full
    /// architecture never crosses a backend boundary). Returns `None` for
    /// infeasible candidates.
    pub fn realize(
        &self,
        df: &Dataflow,
        point: DesignPoint,
        gene: &MacAllocGene,
    ) -> Option<(Architecture, SimReport)> {
        self.core.compute(df, point, gene).1
    }

    /// Snapshot of the cumulative throughput counters.
    pub fn stats(&self) -> EvaluatorStats {
        let layer = self.core.layer_costs.stats();
        EvaluatorStats {
            scored: self.scored.load(Ordering::Relaxed),
            unique_evaluations: self.unique.load(Ordering::Relaxed),
            cache_hits: self.hits.load(Ordering::Relaxed),
            sa_probes: self.sa_probes.load(Ordering::Relaxed),
            sa_cache_hits: self.sa_hits.load(Ordering::Relaxed),
            layer_hits: layer.hits,
            layer_misses: layer.misses,
            preloaded: self.preloaded,
            delta_hits: self.delta_hits.load(Ordering::Relaxed),
            delta_fallbacks: self.delta_fallbacks.load(Ordering::Relaxed),
            layers_recomputed: self.layers_recomputed.load(Ordering::Relaxed),
        }
    }

    /// Finishes the run: releases backend resources (worker processes
    /// return to their pool) and, when a persistent cache file is
    /// configured, writes the memo maps back to it (best-effort; IO
    /// failures never fail a synthesis run) — insertion-ordered, trimmed
    /// oldest-first to `cache_max_entries` when a cap is configured, and
    /// published to the shared snapshot store so sibling runs warm-start
    /// from memory. Returns whether a cache file was written.
    pub fn flush(&self) -> bool {
        self.backend.flush();
        let Some(persist) = &self.persist else {
            return false;
        };
        let mut scores: Vec<(CandidateKey, CandidateScore, u64)> = {
            let memo = self.candidates.lock().expect("candidate memo");
            memo.map
                .iter()
                .map(|(k, (score, seq))| (k.clone(), *score, *seq))
                .collect()
        };
        scores.sort_by_key(|(_, _, seq)| *seq);
        if let Some(cap) = self.persist_cap {
            let excess = scores.len().saturating_sub(cap);
            scores.drain(..excess); // oldest first
        }
        let snapshot = CacheSnapshot {
            scores: scores.into_iter().map(|(k, score, _)| (k, score)).collect(),
            layer_costs: self.core.layer_costs.entries(),
        };
        if let Some(shared) = &self.shared {
            shared.publish(persist.fingerprint(), snapshot.clone());
        }
        persist.save(&snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BackendKind;
    use crate::sa::sa_energy;
    use pimsyn_arch::{DacConfig, HardwareParams};
    use pimsyn_model::zoo;

    fn setup() -> (Model, Dataflow, DesignPoint) {
        let model = zoo::alexnet_cifar(10);
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(1).unwrap();
        let dup = vec![1; model.weight_layer_count()];
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        let point = DesignPoint {
            ratio_rram: 0.3,
            crossbar: xb,
        };
        (model, df, point)
    }

    fn evaluator<'a>(
        model: &'a Model,
        hw: &'a HardwareParams,
        config: EvalCacheConfig,
    ) -> CandidateEvaluator<'a> {
        CandidateEvaluator::new(
            model,
            Watts(9.0),
            hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            config,
        )
    }

    fn gene(l: usize, macros: usize) -> MacAllocGene {
        MacAllocGene::encode(&vec![macros; l], &vec![None; l])
    }

    #[test]
    fn repeated_scores_hit_the_memo_and_match() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::unobserved();
        let a = eval.score(&df, point, &gene(l, 1), &ctx);
        let b = eval.score(&df, point, &gene(l, 1), &ctx);
        assert_eq!(a, b, "hit must return the stored score verbatim");
        let stats = eval.stats();
        assert_eq!(stats.scored, 2);
        assert_eq!(stats.unique_evaluations, 1);
        assert_eq!(stats.cache_hits, 1);
        // Both requests were charged to the budget (cache-transparent); the
        // miss alone was charged to the unique counter.
        assert_eq!(ctx.evaluations(), 2);
        assert_eq!(ctx.unique_evaluations(), 1);
    }

    #[test]
    fn disabled_cache_recomputes_but_matches() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let cached = evaluator(&model, &hw, EvalCacheConfig::default());
        let plain = evaluator(&model, &hw, EvalCacheConfig::disabled());
        let ctx = ExploreContext::unobserved();
        let g = gene(l, 2);
        let a = cached.score(&df, point, &g, &ctx);
        let b = plain.score(&df, point, &g, &ctx);
        assert_eq!(a, b);
        // Realized implementations (full architecture + report) also agree
        // bit-for-bit between the layer-memoized and plain pipelines.
        match (
            cached.realize(&df, point, &g),
            plain.realize(&df, point, &g),
        ) {
            (Some((aa, ar)), Some((ba, br))) => {
                assert_eq!(aa, ba);
                assert_eq!(ar, br);
            }
            (None, None) => assert!(!a.feasible),
            _ => panic!("cached and uncached disagree on feasibility"),
        }
        assert_eq!(plain.stats().cache_hits, 0);
        assert_eq!(plain.stats().unique_evaluations, 1);
    }

    #[test]
    fn thread_pool_backend_matches_inline_in_order() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let genes: Vec<MacAllocGene> = (1..=4).map(|m| gene(l, m)).collect();
        let ctx = ExploreContext::unobserved();
        let hw = HardwareParams::date24();
        let inline = evaluator(&model, &hw, EvalCacheConfig::default());
        let threads = CandidateEvaluator::with_backend(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
            &EvalBackendConfig::new(BackendKind::ThreadPool { workers: 2 }),
        );
        let (a, a_charged) = inline.score_batch(&df, point, &genes, &ctx);
        let (b, b_charged) = threads.score_batch(&df, point, &genes, &ctx);
        assert_eq!(a, b);
        assert_eq!(a_charged, genes.len());
        assert_eq!(b_charged, genes.len());
        assert_eq!(threads.backend_name(), "threads");
        assert!(threads.backend_stats().jobs >= genes.len());
    }

    #[test]
    fn duplicate_genes_within_a_batch_compute_once() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::unobserved();
        let genes = vec![gene(l, 1), gene(l, 2), gene(l, 1), gene(l, 2), gene(l, 1)];
        let (scores, charged) = eval.score_batch(&df, point, &genes, &ctx);
        assert_eq!(charged, 5);
        assert_eq!(scores[0], scores[2]);
        assert_eq!(scores[0], scores[4]);
        assert_eq!(scores[1], scores[3]);
        let stats = eval.stats();
        assert_eq!(stats.scored, 5);
        assert_eq!(stats.unique_evaluations, 2);
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(ctx.unique_evaluations(), 2);
    }

    #[test]
    fn score_batch_stops_cooperatively_mid_batch() {
        use crate::ctx::{CancelToken, ExploreBudget, NullObserver};
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::new(
            &NullObserver,
            CancelToken::new(),
            ExploreBudget::unlimited().with_max_evaluations(2),
        );
        let genes: Vec<MacAllocGene> = (1..=5).map(|m| gene(l, m)).collect();
        let (scores, charged) = eval.score_batch(&df, point, &genes, &ctx);
        // The budget trips after two candidates; the rest are skipped
        // placeholders and nothing further is charged.
        assert_eq!(scores.len(), genes.len());
        assert_eq!(charged, 2);
        assert_eq!(ctx.evaluations(), 2);
        assert_eq!(scores[2], CandidateScore::INFEASIBLE);
        assert_eq!(scores[4], CandidateScore::INFEASIBLE);
    }

    #[test]
    fn unique_evaluation_budget_stops_the_batch_on_misses() {
        use crate::ctx::{CancelToken, ExploreBudget, NullObserver, StopReason};
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::new(
            &NullObserver,
            CancelToken::new(),
            ExploreBudget::unlimited().with_max_unique_evaluations(2),
        );
        // Two distinct genes exhaust the unique budget; the rest of the
        // batch comes back as skipped placeholders, uncharged.
        let genes = vec![gene(l, 1), gene(l, 2), gene(l, 3), gene(l, 1)];
        let (scores, charged) = eval.score_batch(&df, point, &genes, &ctx);
        assert_eq!(charged, 2);
        assert_eq!(ctx.unique_evaluations(), 2);
        assert_eq!(scores[2], CandidateScore::INFEASIBLE);
        assert_eq!(scores[3], CandidateScore::INFEASIBLE);
        assert_eq!(
            ctx.observed_stop(),
            Some(StopReason::UniqueEvaluationBudgetReached)
        );
    }

    #[test]
    fn cancellation_short_circuits_inside_a_backend_batch() {
        use crate::backend::{EvalBackend, EvalJob, InlineBackend};
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let core = EvalCore::new(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
        );
        let genes: Vec<MacAllocGene> = (1..=4).map(|m| gene(l, m)).collect();
        let jobs: Vec<EvalJob<'_>> = genes
            .iter()
            .map(|gene| EvalJob {
                df: &df,
                point,
                gene,
            })
            .collect();
        // Stop flips true from the third poll on: the first two jobs
        // compute, the rest come back as skipped placeholders.
        let polls = AtomicUsize::new(0);
        let stop = || polls.fetch_add(1, Ordering::Relaxed) >= 2;
        let scores = InlineBackend::default().score_batch(&core, &jobs, &stop);
        assert_eq!(scores.len(), 4);
        assert_ne!(scores[0], CandidateScore::INFEASIBLE);
        assert_ne!(scores[1], CandidateScore::INFEASIBLE);
        assert_eq!(scores[2], CandidateScore::INFEASIBLE);
        assert_eq!(scores[3], CandidateScore::INFEASIBLE);
    }

    #[test]
    fn realize_reconstructs_a_feasible_winner() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::unobserved();
        let g = gene(l, 1);
        let score = eval.score(&df, point, &g, &ctx);
        assert!(score.feasible);
        let (arch, report) = eval.realize(&df, point, &g).expect("feasible");
        arch.validate(&model).expect("realized winner validates");
        assert_eq!(eval.objective().fitness(&report), score.fitness);
        // Realization is free: neither scored nor budget-charged.
        assert_eq!(eval.stats().scored, 1);
        assert_eq!(ctx.evaluations(), 1);
    }

    #[test]
    fn sa_energy_memo_is_transparent() {
        let (model, _, _) = setup();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let dup = vec![2; model.weight_layer_count()];
        let direct = sa_energy(&model, &dup, 0.5);
        assert_eq!(eval.sa_energy(&dup, 0.5), direct);
        assert_eq!(eval.sa_energy(&dup, 0.5), direct);
        let stats = eval.stats();
        assert_eq!(stats.sa_probes, 2);
        assert_eq!(stats.sa_cache_hits, 1);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default().with_capacity(0));
        let ctx = ExploreContext::unobserved();
        eval.score(&df, point, &gene(l, 1), &ctx);
        eval.score(&df, point, &gene(l, 1), &ctx);
        let stats = eval.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.unique_evaluations, 2);
    }

    #[test]
    fn persistent_cache_warm_starts_with_identical_scores() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let path =
            std::env::temp_dir().join(format!("pimsyn-eval-warm-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = EvalBackendConfig::inline().with_cache_file(&path);

        // Cold run: score, then flush to disk.
        let cold = CandidateEvaluator::with_backend(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
            &cfg,
        );
        let ctx = ExploreContext::unobserved();
        let genes: Vec<MacAllocGene> = (1..=3).map(|m| gene(l, m)).collect();
        let (cold_scores, _) = cold.score_batch(&df, point, &genes, &ctx);
        assert_eq!(cold.preloaded_entries(), 0);
        assert!(cold.flush(), "cache file must be written");

        // Warm run: the memo preloads, every request is a hit, scores are
        // bit-identical.
        let warm = CandidateEvaluator::with_backend(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
            &cfg,
        );
        assert_eq!(warm.preloaded_entries(), 3);
        let ctx2 = ExploreContext::unobserved();
        let (warm_scores, charged) = warm.score_batch(&df, point, &genes, &ctx2);
        assert_eq!(charged, 3, "hits still charge the scored budget");
        for (a, b) in cold_scores.iter().zip(&warm_scores) {
            assert_eq!(a.fitness.to_bits(), b.fitness.to_bits());
            assert_eq!(a.feasible, b.feasible);
        }
        let stats = warm.stats();
        assert_eq!(stats.cache_hits, 3);
        assert_eq!(stats.unique_evaluations, 0);
        assert!(stats.hit_rate() >= 0.5, "warm start must report >=50% hits");

        // A different power budget must not reuse the file.
        let mismatched = CandidateEvaluator::with_backend(
            &model,
            Watts(10.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
            &cfg,
        );
        assert_eq!(mismatched.preloaded_entries(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flush_trims_oldest_score_entries_to_the_configured_cap() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let path =
            std::env::temp_dir().join(format!("pimsyn-eval-trim-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = EvalBackendConfig::inline()
            .with_cache_file(&path)
            .with_cache_max_entries(2);
        let eval = CandidateEvaluator::with_backend(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
            &cfg,
        );
        let ctx = ExploreContext::unobserved();
        // Four unique candidates in a known insertion order.
        for m in 1..=4 {
            eval.score(&df, point, &gene(l, m), &ctx);
        }
        assert!(eval.flush(), "cache file must be written");

        // The file holds only the newest two entries (genes 3 and 4): the
        // two oldest were trimmed first.
        let warm = CandidateEvaluator::with_backend(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
            &cfg,
        );
        assert_eq!(warm.preloaded_entries(), 2);
        let ctx2 = ExploreContext::unobserved();
        warm.score(&df, point, &gene(l, 3), &ctx2);
        warm.score(&df, point, &gene(l, 4), &ctx2);
        assert_eq!(warm.stats().cache_hits, 2, "newest entries survive");
        warm.score(&df, point, &gene(l, 1), &ctx2);
        assert_eq!(
            warm.stats().unique_evaluations,
            1,
            "oldest entry was trimmed, so gene 1 must recompute"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_snapshot_store_warm_starts_without_rereading_the_file() {
        use crate::backend::SharedEvalResources;
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        // The cache path is never written: the file stays absent, so any
        // warm start can only have come from the shared in-memory store.
        let path =
            std::env::temp_dir().join(format!("pimsyn-eval-shared-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let shared = SharedEvalResources::new();
        let cfg = EvalBackendConfig::inline()
            .with_cache_file(&path)
            .with_shared_resources(Arc::clone(&shared));
        let build = || {
            CandidateEvaluator::with_backend(
                &model,
                Watts(9.0),
                &hw,
                MacroMode::Specialized,
                Objective::PowerEfficiency,
                EvalCacheConfig::default(),
                &cfg,
            )
        };
        let first = build();
        let ctx = ExploreContext::unobserved();
        let cold = first.score(&df, point, &gene(l, 2), &ctx);
        assert!(first.flush());
        std::fs::remove_file(&path).expect("flush wrote the file; remove it");

        let second = build();
        assert_eq!(
            second.preloaded_entries(),
            1,
            "snapshot must come from the shared store, not the deleted file"
        );
        let ctx2 = ExploreContext::unobserved();
        let warm = second.score(&df, point, &gene(l, 2), &ctx2);
        assert_eq!(warm.fitness.to_bits(), cold.fitness.to_bits());
        assert_eq!(second.stats().cache_hits, 1);
        let _ = std::fs::remove_file(&path);
    }

    /// Parent-aware scoring must be bit-identical to plain scoring, route
    /// through the engine exactly when a parent is usable, and fall back
    /// (with full retention) when the parent has no retained breakdown.
    #[test]
    fn delta_rescoring_matches_plain_scoring_bit_for_bit() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let delta = evaluator(&model, &hw, EvalCacheConfig::default());
        let plain = evaluator(&model, &hw, EvalCacheConfig::default().with_delta(false));
        let ctx = ExploreContext::unobserved();

        let parent = gene(l, 1);
        let mut m = vec![1usize; l];
        m[0] = 2;
        let child = MacAllocGene::encode(&m, &vec![None; l]);
        m[1] = 2;
        let grandchild = MacAllocGene::encode(&m, &vec![None; l]);

        // Parent scores through the backend (no parent offered); the child
        // miss is parented but the parent is not retained yet, so the
        // engine recomputes fully (a fallback) and retains both.
        let genes = [parent.clone(), child.clone()];
        let parents = [None, Some(&parent)];
        let (a, _) = delta.score_batch_with_parents(&df, point, &genes, &parents, &ctx);
        let (b, _) = plain.score_batch(&df, point, &genes, &ctx);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fitness.to_bits(), y.fitness.to_bits());
            assert_eq!(x.feasible, y.feasible);
        }
        assert_eq!(delta.stats().delta_fallbacks, 1);
        assert_eq!(delta.stats().delta_hits, 0);

        // The grandchild differs from the (now retained) child by one gene:
        // a genuine delta hit, still bit-identical.
        let (c, _) = delta.score_batch_with_parents(
            &df,
            point,
            std::slice::from_ref(&grandchild),
            &[Some(&child)],
            &ctx,
        );
        let (d, _) = plain.score_batch(&df, point, &[grandchild], &ctx);
        assert_eq!(c[0].fitness.to_bits(), d[0].fitness.to_bits());
        assert_eq!(c[0].feasible, d[0].feasible);
        let stats = delta.stats();
        assert_eq!(stats.delta_hits, 1);
        assert_eq!(stats.delta_fallbacks, 1);
        // The fallback recomputed every layer; the delta hit only touched
        // ones (the changed layer, plus any whose water-filled counts moved
        // and missed the base memo).
        assert!(stats.layers_recomputed > l);
        assert!(stats.layers_recomputed < 3 * l);
        // Both evaluators charged and memoized identically.
        assert_eq!(
            delta.stats().unique_evaluations,
            plain.stats().unique_evaluations
        );
        assert_eq!(delta.stats().cache_hits, plain.stats().cache_hits);
    }

    /// A gene diff wider than one mutation round (more than two entries)
    /// must not delta even when the parent is retained.
    #[test]
    fn delta_wide_diff_falls_back() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = evaluator(&model, &hw, EvalCacheConfig::default());
        let ctx = ExploreContext::unobserved();

        let parent = gene(l, 1);
        // Retain the parent's breakdown (self-parented fallback).
        eval.score_with_parent(&df, point, &parent, Some(&parent), &ctx);
        assert_eq!(eval.stats().delta_fallbacks, 1);

        let mut m = vec![1usize; l];
        m[0] = 2;
        m[1] = 2;
        m[2] = 2;
        let wide = MacAllocGene::encode(&m, &vec![None; l]);
        let via_delta = eval.score_with_parent(&df, point, &wide, Some(&parent), &ctx);
        let stats = eval.stats();
        assert_eq!(stats.delta_fallbacks, 2, "3-gene diff must fall back");
        assert_eq!(stats.delta_hits, 0);

        let plain = evaluator(&model, &hw, EvalCacheConfig::default().with_delta(false));
        let reference = plain.score(&df, point, &wide, &ctx);
        assert_eq!(via_delta.fitness.to_bits(), reference.fitness.to_bits());
        assert_eq!(via_delta.feasible, reference.feasible);
    }

    /// Identical macro mode homogenizes counts across layers — delta must
    /// stay inactive there even when parents are offered.
    #[test]
    fn delta_is_inactive_for_identical_macro_mode() {
        let (model, df, point) = setup();
        let l = model.weight_layer_count();
        let hw = HardwareParams::date24();
        let eval = CandidateEvaluator::new(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Identical,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
        );
        let ctx = ExploreContext::unobserved();
        let parent = gene(l, 1);
        let mut m = vec![1usize; l];
        m[0] = 2;
        let child = MacAllocGene::encode(&m, &vec![None; l]);
        eval.score_with_parent(&df, point, &parent, Some(&parent), &ctx);
        eval.score_with_parent(&df, point, &child, Some(&parent), &ctx);
        let stats = eval.stats();
        assert_eq!(stats.delta_hits, 0);
        assert_eq!(stats.delta_fallbacks, 0);
        assert_eq!(stats.unique_evaluations, 2);
    }

    #[test]
    fn stats_hit_rate() {
        let stats = EvaluatorStats {
            scored: 4,
            unique_evaluations: 3,
            cache_hits: 1,
            ..EvaluatorStats::default()
        };
        assert!((stats.hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(EvaluatorStats::default().hit_rate(), 0.0);
    }
}
