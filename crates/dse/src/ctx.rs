//! Observability and control for long-running explorations: typed progress
//! events, cooperative cancellation, and wall-clock / evaluation budgets.
//!
//! [`run_dse_observed`](crate::run_dse_observed) threads an
//! [`ExploreContext`] through every stage of Algorithm 1 (the SA filter,
//! dataflow compilation, the EA partitioner and components allocation), so
//! callers can watch a synthesis job progress design point by design point,
//! stop it promptly, or bound how much work it may spend. The blocking
//! [`run_dse`](crate::run_dse) entry point is a thin wrapper over an
//! unobserved context.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::eval::EvaluatorStats;
use crate::space::DesignPoint;

/// The four synthesis stages of the paper's Fig. 3 flow, as they execute at
/// each outer design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SynthesisStage {
    /// Stage 1: weight-duplication candidate generation (SA filter).
    WeightDuplication,
    /// Stage 2: dataflow compilation of every candidate x DAC resolution.
    DataflowCompilation,
    /// Stage 3: EA-based macro partitioning (components allocation and
    /// analytic evaluation run per candidate inside the EA loop).
    MacroPartitioning,
    /// Stage 4: components allocation of the point winner, re-validated.
    ComponentAllocation,
}

impl SynthesisStage {
    /// The stages in paper order.
    pub const ALL: [SynthesisStage; 4] = [
        SynthesisStage::WeightDuplication,
        SynthesisStage::DataflowCompilation,
        SynthesisStage::MacroPartitioning,
        SynthesisStage::ComponentAllocation,
    ];

    /// Position of the stage in the paper's flow (1-based).
    pub fn ordinal(&self) -> usize {
        match self {
            SynthesisStage::WeightDuplication => 1,
            SynthesisStage::DataflowCompilation => 2,
            SynthesisStage::MacroPartitioning => 3,
            SynthesisStage::ComponentAllocation => 4,
        }
    }
}

impl fmt::Display for SynthesisStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SynthesisStage::WeightDuplication => "weight duplication",
            SynthesisStage::DataflowCompilation => "dataflow compilation",
            SynthesisStage::MacroPartitioning => "macro partitioning",
            SynthesisStage::ComponentAllocation => "components allocation",
        };
        f.write_str(name)
    }
}

/// Why an exploration run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// Every design point was explored to completion.
    Completed,
    /// The caller cancelled via [`CancelToken::cancel`].
    Cancelled,
    /// The wall-clock deadline of [`ExploreBudget::deadline`] passed.
    DeadlineReached,
    /// The [`ExploreBudget::max_evaluations`] budget was spent.
    EvaluationBudgetReached,
    /// The [`ExploreBudget::max_unique_evaluations`] budget was spent.
    UniqueEvaluationBudgetReached,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StopReason::Completed => "completed",
            StopReason::Cancelled => "cancelled",
            StopReason::DeadlineReached => "deadline reached",
            StopReason::EvaluationBudgetReached => "evaluation budget reached",
            StopReason::UniqueEvaluationBudgetReached => "unique-evaluation budget reached",
        };
        f.write_str(name)
    }
}

/// A shared, cloneable cancellation flag. Cloning yields a handle to the
/// *same* token, so one side can run a job while the other cancels it.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; all holders observe it on their next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Resource bounds for an exploration run. An exhausted budget stops the
/// search *gracefully*: the best architecture found so far is still
/// returned (with the corresponding [`StopReason`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreBudget {
    /// Hard wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum candidate-architecture evaluations across all design points.
    pub max_evaluations: Option<usize>,
    /// Maximum *unique* candidate evaluations (memo misses that actually run
    /// the compile → allocate → evaluate pipeline). With high cache-hit
    /// rates, scored-candidate and wall-clock budgets diverge from the work
    /// actually done; this budget bounds the work itself.
    pub max_unique_evaluations: Option<usize>,
}

impl ExploreBudget {
    /// No bounds: run to completion.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Bounds wall-clock time to `limit` from now.
    #[must_use]
    pub fn with_timeout(mut self, limit: Duration) -> Self {
        self.deadline = Some(Instant::now() + limit);
        self
    }

    /// Bounds total candidate evaluations.
    #[must_use]
    pub fn with_max_evaluations(mut self, n: usize) -> Self {
        self.max_evaluations = Some(n);
        self
    }

    /// Bounds unique candidate evaluations (memo misses).
    #[must_use]
    pub fn with_max_unique_evaluations(mut self, n: usize) -> Self {
        self.max_unique_evaluations = Some(n);
        self
    }
}

/// Typed progress events emitted while Algorithm 1 runs.
///
/// `point_index` identifies the outer design point (its index in
/// [`DesignSpace::points`](crate::DesignSpace::points)); with parallel
/// exploration, events from different points interleave.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreEvent {
    /// A synthesis stage began at one design point.
    StageStarted {
        /// Outer design-point index.
        point_index: usize,
        /// Which of the four paper stages.
        stage: SynthesisStage,
    },
    /// A synthesis stage completed at one design point.
    StageFinished {
        /// Outer design-point index.
        point_index: usize,
        /// Which of the four paper stages.
        stage: SynthesisStage,
    },
    /// One outer design point was fully explored.
    DesignPointEvaluated {
        /// The design point.
        point: DesignPoint,
        /// Outer design-point index.
        point_index: usize,
        /// Best objective fitness found there (TOPS/W under the default
        /// power-efficiency objective, 1/EDP under
        /// [`Objective::EnergyDelayProduct`](crate::Objective)); 0 when
        /// infeasible.
        best_efficiency: f64,
        /// Candidate architectures evaluated at this point.
        evaluations: usize,
    },
    /// A design point improved on the best fitness seen so far in this run.
    ImprovedBest {
        /// Outer design-point index where the improvement happened.
        point_index: usize,
        /// The new best fitness (TOPS/W under the default objective).
        fitness: f64,
    },
    /// Cumulative candidate-evaluator throughput counters, emitted as each
    /// design point finishes (immediately before its
    /// [`DesignPointEvaluated`](Self::DesignPointEvaluated) summary). Stats
    /// are run-wide, not per point: with parallel exploration, successive
    /// snapshots from different points are each monotonically larger.
    EvaluatorStats {
        /// Outer design-point index whose completion triggered the snapshot.
        point_index: usize,
        /// Run-wide evaluator counters at snapshot time.
        stats: EvaluatorStats,
    },
}

/// Receives [`ExploreEvent`]s. Implementations must be cheap and
/// non-blocking: events are delivered synchronously from worker threads.
pub trait ExploreObserver: Sync {
    /// Called for every event, possibly from multiple threads at once.
    fn on_event(&self, event: ExploreEvent);
}

/// Ignores all events (the unobserved default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ExploreObserver for NullObserver {
    fn on_event(&self, _event: ExploreEvent) {}
}

impl<F: Fn(ExploreEvent) + Sync> ExploreObserver for F {
    fn on_event(&self, event: ExploreEvent) {
        self(event)
    }
}

static NULL_OBSERVER: NullObserver = NullObserver;

/// Everything a running exploration needs to be observable and stoppable:
/// an event sink, a cancellation token, and resource budgets, plus the
/// shared evaluation counter the budget is enforced against.
///
/// One context spans one `run_dse_observed` call; worker threads share it
/// by reference.
pub struct ExploreContext<'a> {
    sink: &'a dyn ExploreObserver,
    cancel: CancelToken,
    budget: ExploreBudget,
    evaluations: AtomicUsize,
    unique_evaluations: AtomicUsize,
    /// Best fitness seen so far. A mutex (not an atomic CAS) so the
    /// `ImprovedBest` emission happens inside the critical section:
    /// observers then see strictly increasing bests even with parallel
    /// workers racing on improvements.
    best: Mutex<f64>,
    /// First stop reason a cooperative check actually observed (0 = none);
    /// distinguishes "the search was curtailed" from "the budget happened
    /// to run out exactly as the search finished".
    observed: AtomicU8,
    /// Serializes evaluator-stats snapshot + emission (see
    /// [`emit_evaluator_stats`](Self::emit_evaluator_stats)).
    stats_emit: Mutex<()>,
}

impl fmt::Debug for ExploreContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExploreContext")
            .field("cancel", &self.cancel)
            .field("budget", &self.budget)
            .field("evaluations", &self.evaluations)
            .finish_non_exhaustive()
    }
}

impl<'a> ExploreContext<'a> {
    /// A context delivering events to `sink`, cancellable through `cancel`,
    /// bounded by `budget`.
    pub fn new(sink: &'a dyn ExploreObserver, cancel: CancelToken, budget: ExploreBudget) -> Self {
        Self {
            sink,
            cancel,
            budget,
            evaluations: AtomicUsize::new(0),
            unique_evaluations: AtomicUsize::new(0),
            best: Mutex::new(0.0),
            observed: AtomicU8::new(0),
            stats_emit: Mutex::new(()),
        }
    }

    /// A context that observes nothing and never stops early.
    pub fn unobserved() -> ExploreContext<'static> {
        ExploreContext::new(
            &NULL_OBSERVER,
            CancelToken::new(),
            ExploreBudget::unlimited(),
        )
    }

    /// The cancellation token this context watches.
    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// The configured budget.
    pub fn budget(&self) -> ExploreBudget {
        self.budget
    }

    /// Delivers an event to the sink.
    pub fn emit(&self, event: ExploreEvent) {
        self.sink.on_event(event);
    }

    /// Adds `n` candidate evaluations to the shared counter.
    pub fn count_evaluations(&self, n: usize) {
        self.evaluations.fetch_add(n, Ordering::Relaxed);
    }

    /// Total candidate evaluations recorded so far.
    pub fn evaluations(&self) -> usize {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Adds `n` *unique* evaluations (memo misses) to the shared counter.
    pub fn count_unique_evaluations(&self, n: usize) {
        self.unique_evaluations.fetch_add(n, Ordering::Relaxed);
    }

    /// Total unique candidate evaluations (memo misses) recorded so far.
    pub fn unique_evaluations(&self) -> usize {
        self.unique_evaluations.load(Ordering::Relaxed)
    }

    /// Snapshots evaluator throughput counters and emits
    /// [`ExploreEvent::EvaluatorStats`] atomically: the snapshot is taken
    /// and delivered inside one critical section, so observers see
    /// monotonically increasing counters even when parallel workers finish
    /// design points concurrently (the same discipline as
    /// [`record_fitness`](Self::record_fitness)).
    pub fn emit_evaluator_stats(&self, point_index: usize, snapshot: &dyn Fn() -> EvaluatorStats) {
        let _serialized = self.stats_emit.lock().expect("stats-emit mutex");
        self.emit(ExploreEvent::EvaluatorStats {
            point_index,
            stats: snapshot(),
        });
    }

    /// Records a point-level fitness and emits [`ExploreEvent::ImprovedBest`]
    /// if it beats the best seen so far in this run. Emission happens while
    /// the best is held, so observers see strictly increasing bests even
    /// when parallel workers improve concurrently.
    pub fn record_fitness(&self, point_index: usize, fitness: f64) {
        // NaN and infeasible (zero) fitness are both ignored.
        if fitness.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let mut best = self.best.lock().expect("best-fitness mutex");
        if fitness > *best {
            *best = fitness;
            self.emit(ExploreEvent::ImprovedBest {
                point_index,
                fitness,
            });
        }
    }

    /// Why the run should stop now, if it should.
    pub fn stop_reason(&self) -> Option<StopReason> {
        if self.cancel.is_cancelled() {
            return Some(StopReason::Cancelled);
        }
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                return Some(StopReason::DeadlineReached);
            }
        }
        if let Some(max) = self.budget.max_evaluations {
            if self.evaluations() >= max {
                return Some(StopReason::EvaluationBudgetReached);
            }
        }
        if let Some(max) = self.budget.max_unique_evaluations {
            if self.unique_evaluations() >= max {
                return Some(StopReason::UniqueEvaluationBudgetReached);
            }
        }
        None
    }

    /// Whether the run should stop now (cancelled or out of budget). A
    /// `true` answer is also recorded, so
    /// [`observed_stop`](Self::observed_stop) can later distinguish a
    /// curtailed search from one whose budget ran out exactly as it
    /// finished naturally.
    pub fn should_stop(&self) -> bool {
        match self.stop_reason() {
            Some(reason) => {
                let code = match reason {
                    StopReason::Completed => 0,
                    StopReason::Cancelled => 1,
                    StopReason::DeadlineReached => 2,
                    StopReason::EvaluationBudgetReached => 3,
                    StopReason::UniqueEvaluationBudgetReached => 4,
                };
                // First observation wins.
                let _ =
                    self.observed
                        .compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// The first stop reason a cooperative check observed, if the search
    /// was actually curtailed by one.
    pub fn observed_stop(&self) -> Option<StopReason> {
        match self.observed.load(Ordering::Relaxed) {
            1 => Some(StopReason::Cancelled),
            2 => Some(StopReason::DeadlineReached),
            3 => Some(StopReason::EvaluationBudgetReached),
            4 => Some(StopReason::UniqueEvaluationBudgetReached),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn cancel_token_is_shared_across_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn unobserved_context_never_stops() {
        let ctx = ExploreContext::unobserved();
        ctx.count_evaluations(1_000_000);
        assert_eq!(ctx.stop_reason(), None);
    }

    #[test]
    fn evaluation_budget_trips() {
        let cancel = CancelToken::new();
        let ctx = ExploreContext::new(
            &NullObserver,
            cancel,
            ExploreBudget::unlimited().with_max_evaluations(10),
        );
        ctx.count_evaluations(9);
        assert_eq!(ctx.stop_reason(), None);
        ctx.count_evaluations(1);
        assert_eq!(ctx.stop_reason(), Some(StopReason::EvaluationBudgetReached));
    }

    #[test]
    fn unique_evaluation_budget_trips_on_misses_only() {
        let ctx = ExploreContext::new(
            &NullObserver,
            CancelToken::new(),
            ExploreBudget::unlimited().with_max_unique_evaluations(2),
        );
        // Scored-candidate charges alone never trip the unique budget.
        ctx.count_evaluations(100);
        assert_eq!(ctx.stop_reason(), None);
        ctx.count_unique_evaluations(1);
        assert_eq!(ctx.stop_reason(), None);
        ctx.count_unique_evaluations(1);
        assert_eq!(
            ctx.stop_reason(),
            Some(StopReason::UniqueEvaluationBudgetReached)
        );
    }

    #[test]
    fn deadline_trips() {
        let ctx = ExploreContext::new(
            &NullObserver,
            CancelToken::new(),
            ExploreBudget {
                deadline: Some(Instant::now() - Duration::from_millis(1)),
                max_evaluations: None,
                max_unique_evaluations: None,
            },
        );
        assert_eq!(ctx.stop_reason(), Some(StopReason::DeadlineReached));
    }

    #[test]
    fn cancellation_wins_over_budget() {
        let cancel = CancelToken::new();
        let ctx = ExploreContext::new(
            &NullObserver,
            cancel.clone(),
            ExploreBudget::unlimited().with_max_evaluations(0),
        );
        cancel.cancel();
        assert_eq!(ctx.stop_reason(), Some(StopReason::Cancelled));
    }

    #[test]
    fn record_fitness_emits_only_improvements() {
        let seen: Mutex<Vec<f64>> = Mutex::new(Vec::new());
        let observer = |ev: ExploreEvent| {
            if let ExploreEvent::ImprovedBest { fitness, .. } = ev {
                seen.lock().unwrap().push(fitness);
            }
        };
        let ctx = ExploreContext::new(&observer, CancelToken::new(), ExploreBudget::unlimited());
        ctx.record_fitness(0, 1.0);
        ctx.record_fitness(1, 0.5); // not an improvement
        ctx.record_fitness(2, 2.0);
        ctx.record_fitness(3, 0.0); // infeasible, ignored
        assert_eq!(*seen.lock().unwrap(), vec![1.0, 2.0]);
    }
}
