//! Components allocation (Sec. IV-D): map IRs to peripheral hardware by
//! distributing the non-ReRAM power among ADC banks and vector ALUs.
//!
//! Eq. (5) asks for the allocation minimizing the largest per-component delay
//! under the power limit; Eq. (6) gives the closed-form water-filling
//! solution: every component's unit count is proportional to its workload
//! over frequency, scaled so that the budget is met exactly. Integers are
//! recovered by flooring and re-spending the remainder on whichever
//! component bounds the pipeline.

use pimsyn_arch::{
    AdcConfig, Architecture, ComponentCounts, ComponentKind, HardwareParams, LayerHardware,
    MacroMode, Watts,
};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;

use crate::error::DseError;
use crate::space::DesignPoint;

/// Everything the allocation stage needs about one candidate design.
#[derive(Debug, Clone, Copy)]
pub struct AllocRequest<'a> {
    /// The CNN being synthesized.
    pub model: &'a Model,
    /// Its compiled dataflow (fixes workloads per IR class).
    pub dataflow: &'a Dataflow,
    /// Outer design point (`RatioRram`, crossbar config).
    pub point: DesignPoint,
    /// The user's total power constraint.
    pub total_power: Watts,
    /// Device constants.
    pub hw: &'a HardwareParams,
    /// `MacAlloc`: macros per layer.
    pub macros: &'a [usize],
    /// Macro sharing: `shares[i] = Some(j)` puts layer `i` on layer `j`'s
    /// macros.
    pub shares: &'a [Option<usize>],
    /// Identical vs specialized macros.
    pub macro_mode: MacroMode,
}

/// Per-layer workload of each allocatable component family, per image.
fn workload(df: &Dataflow, layer: usize, kind: ComponentKind) -> f64 {
    let p = df.program(layer);
    match kind {
        ComponentKind::Adc => p.total_adc_samples() as f64,
        ComponentKind::ShiftAdd => p.total_steps() as f64 * p.shift_add_ops as f64,
        ComponentKind::Pool => p.blocks as f64 * p.pool_ops as f64,
        ComponentKind::Activation => p.blocks as f64 * p.act_ops as f64,
        ComponentKind::Eltwise => p.blocks as f64 * p.eltwise_ops as f64,
    }
}

/// Physical macro count implied by a sharing assignment (shared sets counted
/// once, at the larger of the partners' sizes).
pub fn physical_macros(macros: &[usize], shares: &[Option<usize>]) -> usize {
    let mut total = 0usize;
    for (i, &m) in macros.iter().enumerate() {
        if shares[i].is_none() {
            // Group size is the max over this root and its sharers.
            let group_max = shares.iter().enumerate().fold(m, |acc, (k, &s)| {
                if s == Some(i) {
                    acc.max(macros[k])
                } else {
                    acc
                }
            });
            total += group_max;
        }
    }
    total
}

/// One allocatable `(layer, component family)` with workload, with its
/// precomputed unit power and rate. Kept in layer-major, [`ComponentKind::ALL`]
/// order so [`AllocPlan::solve`] replays the exact float sequence of the
/// historical single-pass allocator.
#[derive(Debug, Clone, Copy)]
struct AllocItem {
    layer: usize,
    kind: ComponentKind,
    /// Per-image workload `W_ic`.
    w: f64,
    /// Unit power `P_c`, watts.
    p: f64,
    /// Unit rate `F_c`, per second.
    f: f64,
}

/// The gene-independent half of components allocation for one `(model,
/// dataflow, design point, power budget)` combination.
///
/// Under [`MacroMode::Specialized`] the water-filling solution of Eq. (6)
/// depends on the `MacAlloc` gene only through the physical macro count
/// (which scales the fixed infrastructure power): everything else — ADC
/// resolutions, workloads, unit powers/rates, the Eq. (6) denominator — is
/// shared across every candidate of an EA generation. Preparing a plan once
/// and calling [`AllocPlan::solve`] per candidate is therefore equivalent to
/// (and bit-identical with) running [`allocate_components`] from scratch,
/// which is exactly how the delta evaluator amortizes allocation cost.
#[derive(Debug, Clone)]
pub struct AllocPlan {
    /// Layer count.
    l: usize,
    /// Per-layer ADC configuration (minimum lossless; worst-case everywhere
    /// in identical mode).
    adcs: Vec<AdcConfig>,
    items: Vec<AllocItem>,
    /// `budget * (1 - RatioRram)` — the peripheral share before fixed costs.
    budget_base: Watts,
    /// Fixed DAC power (every crossbar row).
    dac_power: Watts,
    /// Fixed per-macro infrastructure power.
    per_macro: Watts,
    /// Eq. (6) denominator `sum_ic (P_c W_ic / F_c)`.
    denom: f64,
}

impl AllocPlan {
    /// Precomputes the gene-independent allocation state.
    pub fn prepare(
        model: &Model,
        df: &Dataflow,
        point: DesignPoint,
        total_power: Watts,
        hw: &HardwareParams,
        macro_mode: MacroMode,
    ) -> Self {
        let l = df.programs().len();
        let xb = point.crossbar;
        let dac = df.dac();

        // Per-layer minimum lossless ADC resolution (Sec. III).
        let mut adcs: Vec<AdcConfig> = model
            .weight_layers()
            .map(|wl| {
                let rows = wl.filter_rows().min(xb.size());
                AdcConfig::minimum_lossless(rows, xb.cell_bits(), dac.bits(), hw)
            })
            .collect();
        if macro_mode == MacroMode::Identical {
            // Identical macros must carry the worst-case converter.
            let max_bits = adcs
                .iter()
                .map(AdcConfig::bits)
                .max()
                .unwrap_or(hw.adc_min_bits);
            adcs = vec![AdcConfig::new(max_bits, hw); l];
        }

        // Fixed (non-allocatable) power: DACs on every crossbar row plus the
        // per-macro infrastructure.
        let n_crossbars = df.total_crossbars();
        let dac_power = dac.power(hw) * (n_crossbars * xb.size()) as f64;
        let per_macro = hw.scratchpad_power + hw.noc_router_power + hw.register_power;

        // Eq. (6): D = sum_ic (P_c W_ic / F_c) / budget; n_ic = W_ic / (F_c D).
        let mut items = Vec::new();
        let mut denom = 0.0f64;
        for (i, &adc) in adcs.iter().enumerate() {
            for kind in ComponentKind::ALL {
                let w = workload(df, i, kind);
                if w > 0.0 {
                    let p = kind.unit_power(adc, hw).value();
                    let f = kind.unit_rate(adc, hw).value();
                    denom += p * w / f;
                    items.push(AllocItem {
                        layer: i,
                        kind,
                        w,
                        p,
                        f,
                    });
                }
            }
        }

        AllocPlan {
            l,
            adcs,
            items,
            budget_base: total_power * (1.0 - point.ratio_rram),
            dac_power,
            per_macro,
            denom,
        }
    }

    /// Per-layer ADC configurations of the plan.
    pub fn adcs(&self) -> &[AdcConfig] {
        &self.adcs
    }

    /// The peripheral power left for allocatable components once `n_macros`
    /// physical macros' fixed infrastructure is paid for. May be negative —
    /// [`AllocPlan::solve`] turns that into [`DseError::NoPeripheralPower`].
    pub fn periph_budget(&self, n_macros: usize) -> Watts {
        let fixed = self.dac_power + self.per_macro * n_macros as f64;
        self.budget_base - fixed
    }

    /// Solves Eq. (6) for a candidate with `n_macros` physical macros,
    /// returning per-layer component counts. Bit-identical to the
    /// corresponding slice of [`allocate_components`].
    ///
    /// # Errors
    ///
    /// [`DseError::NoPeripheralPower`] when fixed infrastructure already
    /// exceeds the peripheral budget (or nothing is allocatable).
    pub fn solve(&self, n_macros: usize) -> Result<Vec<ComponentCounts>, DseError> {
        let periph_budget = self.periph_budget(n_macros);
        if periph_budget.value() <= 0.0 {
            return Err(DseError::NoPeripheralPower {
                remaining: periph_budget.value(),
            });
        }
        if self.denom <= 0.0 {
            return Err(DseError::NoPeripheralPower {
                remaining: periph_budget.value(),
            });
        }
        let delay = self.denom / periph_budget.value();

        let mut counts = vec![ComponentCounts::default(); self.l];
        let mut spent = 0.0f64;
        for it in &self.items {
            let ideal = it.w / (it.f * delay);
            let n = (ideal.floor() as usize).max(1);
            *counts[it.layer].count_mut(it.kind) = n;
            spent += it.p * n as f64;
        }

        // Spend the rounding remainder on the current bottleneck, in bulk.
        let mut remaining = periph_budget.value() - spent;
        for _ in 0..(4 * self.l * ComponentKind::ALL.len()) {
            // Find the (layer, kind) with the largest per-image delay.
            let mut worst: Option<(usize, f64)> = None;
            for (idx, it) in self.items.iter().enumerate() {
                let n = counts[it.layer].count(it.kind) as f64;
                let d = it.w / (it.f * n);
                if worst.is_none_or(|(_, wd)| d > wd) {
                    worst = Some((idx, d));
                }
            }
            let Some((idx, _)) = worst else { break };
            let it = self.items[idx];
            if it.p > remaining {
                break;
            }
            // Add enough units to bring this component near the runner-up
            // delay, bounded by the power still available.
            let n = counts[it.layer].count(it.kind);
            let affordable = (remaining / it.p).floor() as usize;
            let boost = (n / 4).clamp(1, affordable.max(1));
            *counts[it.layer].count_mut(it.kind) = n + boost;
            remaining -= it.p * boost as f64;
        }

        Ok(counts)
    }
}

/// Runs components allocation and assembles the full [`Architecture`].
///
/// # Errors
///
/// - [`DseError::NoPeripheralPower`] when fixed infrastructure (scratchpads,
///   NoC routers, registers, DACs) already exceeds the `(1 - RatioRram)`
///   share of the budget.
/// - Propagated architecture errors.
pub fn allocate_components(req: &AllocRequest<'_>) -> Result<Architecture, DseError> {
    let hw = req.hw;
    let df = req.dataflow;
    let plan = AllocPlan::prepare(
        req.model,
        df,
        req.point,
        req.total_power,
        hw,
        req.macro_mode,
    );
    let n_macros = physical_macros(req.macros, req.shares);
    let mut counts = plan.solve(n_macros)?;

    if req.macro_mode == MacroMode::Identical {
        homogenize(
            &mut counts,
            req.macros,
            n_macros,
            &plan.adcs,
            hw,
            plan.periph_budget(n_macros),
            df,
        );
    }

    let layers: Vec<LayerHardware> = df
        .programs()
        .iter()
        .enumerate()
        .map(|(i, p)| LayerHardware {
            layer: i,
            name: p.name.clone(),
            wt_dup: p.wt_dup,
            crossbar_set: p.crossbar_set,
            macros: req.macros[i],
            shares_macros_with: req.shares[i],
            adc: plan.adcs[i],
            components: counts[i],
        })
        .collect();

    Ok(Architecture {
        model_name: req.model.name().to_string(),
        crossbar: req.point.crossbar,
        dac: df.dac(),
        ratio_rram: req.point.ratio_rram,
        power_budget: req.total_power,
        macro_mode: req.macro_mode,
        layers,
        hw: hw.clone(),
    })
}

/// Identical-macro post-pass: every macro carries the same component counts,
/// so per-macro counts are the ceiling of the most demanding layer, and the
/// whole chip is scaled down uniformly if that exceeds the power budget.
fn homogenize(
    counts: &mut [ComponentCounts],
    macros: &[usize],
    n_macros: usize,
    adcs: &[AdcConfig],
    hw: &HardwareParams,
    budget: Watts,
    df: &Dataflow,
) {
    let adc = adcs[0]; // identical mode uses one ADC resolution everywhere
    let mut per_macro = ComponentCounts::default();
    for (i, c) in counts.iter().enumerate() {
        for kind in ComponentKind::ALL {
            let demand = c.count(kind).div_ceil(macros[i].max(1));
            let cur = per_macro.count_mut(kind);
            *cur = (*cur).max(demand);
        }
    }
    // Uniform shrink until the homogeneous chip fits the budget.
    loop {
        let total_power: f64 = ComponentKind::ALL
            .iter()
            .map(|&k| k.unit_power(adc, hw).value() * (per_macro.count(k) * n_macros) as f64)
            .sum();
        if total_power <= budget.value() || per_macro.total_units() <= ComponentKind::ALL.len() {
            break;
        }
        for kind in ComponentKind::ALL {
            let c = per_macro.count_mut(kind);
            if *c > 1 {
                *c = (*c * 4) / 5;
            }
        }
    }
    for (i, c) in counts.iter_mut().enumerate() {
        for kind in ComponentKind::ALL {
            let needed = workload(df, i, kind) > 0.0;
            *c.count_mut(kind) = if needed {
                (per_macro.count(kind) * macros[i]).max(1)
            } else {
                0
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::{CrossbarConfig, DacConfig};
    use pimsyn_model::zoo;

    fn request_parts(total_power: f64) -> (Model, Dataflow, DesignPoint, Watts, HardwareParams) {
        let model = zoo::alexnet_cifar(10);
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(1).unwrap();
        let dup = vec![1; model.weight_layer_count()];
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        let point = DesignPoint {
            ratio_rram: 0.3,
            crossbar: xb,
        };
        (
            model,
            df,
            point,
            Watts(total_power),
            HardwareParams::date24(),
        )
    }

    #[test]
    fn allocation_fits_budget_and_covers_workloads() {
        let (model, df, point, power, hw) = request_parts(9.0);
        let l = model.weight_layer_count();
        let macros = vec![1usize; l];
        let shares = vec![None; l];
        let req = AllocRequest {
            model: &model,
            dataflow: &df,
            point,
            total_power: power,
            hw: &hw,
            macros: &macros,
            shares: &shares,
            macro_mode: MacroMode::Specialized,
        };
        let arch = allocate_components(&req).unwrap();
        // Every layer with ADC workload has converters; ALU classes with no
        // workload stay empty.
        for (i, lh) in arch.layers.iter().enumerate() {
            assert!(lh.components.adc >= 1, "layer {i} has no ADC");
            assert!(lh.components.shift_add >= 1);
            if df.program(i).pool_ops == 0 {
                assert_eq!(lh.components.pool, 0);
            }
        }
        // Realized power must respect the user constraint (5% rounding slack).
        let realized = arch.power_breakdown().total();
        assert!(
            realized.value() <= power.value() * 1.05,
            "realized {realized} exceeds budget {power}"
        );
        arch.validate(&model).unwrap();
    }

    #[test]
    fn adc_gets_lions_share_of_power() {
        let (model, df, point, power, hw) = request_parts(9.0);
        let l = model.weight_layer_count();
        let macros = vec![1usize; l];
        let shares = vec![None; l];
        let req = AllocRequest {
            model: &model,
            dataflow: &df,
            point,
            total_power: power,
            hw: &hw,
            macros: &macros,
            shares: &shares,
            macro_mode: MacroMode::Specialized,
        };
        let arch = allocate_components(&req).unwrap();
        let pb = arch.power_breakdown();
        assert!(
            pb.adc > pb.alu,
            "ADC power {} should dominate ALU {}",
            pb.adc,
            pb.alu
        );
    }

    #[test]
    fn tiny_budget_is_rejected() {
        let (model, df, point, _, hw) = request_parts(9.0);
        let l = model.weight_layer_count();
        let macros = vec![4usize; l];
        let shares = vec![None; l];
        let req = AllocRequest {
            model: &model,
            dataflow: &df,
            point,
            total_power: Watts(0.2), // cannot even pay for 32 macros
            hw: &hw,
            macros: &macros,
            shares: &shares,
            macro_mode: MacroMode::Specialized,
        };
        assert!(matches!(
            allocate_components(&req),
            Err(DseError::NoPeripheralPower { .. })
        ));
    }

    #[test]
    fn identical_mode_homogenizes_counts() {
        let (model, df, point, power, hw) = request_parts(9.0);
        let l = model.weight_layer_count();
        let macros = vec![1usize; l];
        let shares = vec![None; l];
        let base = AllocRequest {
            model: &model,
            dataflow: &df,
            point,
            total_power: power,
            hw: &hw,
            macros: &macros,
            shares: &shares,
            macro_mode: MacroMode::Identical,
        };
        let arch = allocate_components(&base).unwrap();
        // All single-macro layers carry the same ADC count and resolution.
        let first = &arch.layers[0];
        for lh in &arch.layers {
            assert_eq!(lh.components.adc, first.components.adc);
            assert_eq!(lh.adc.bits(), first.adc.bits());
        }
    }

    #[test]
    fn physical_macros_counts_groups_once() {
        let macros = [2usize, 3, 4];
        assert_eq!(physical_macros(&macros, &[None, None, None]), 9);
        // Layer 2 shares layer 0's macros: group size max(2,4)=4, plus 3.
        assert_eq!(physical_macros(&macros, &[None, None, Some(0)]), 7);
    }

    #[test]
    fn sharing_lowers_fixed_cost_and_frees_periph_power() {
        let (model, df, point, power, hw) = request_parts(9.0);
        let l = model.weight_layer_count();
        let macros = vec![1usize; l];
        let solo = vec![None; l];
        let mut shared = vec![None; l];
        shared[l - 1] = Some(0); // fc8 shares conv1's macro (staggered in time)
        let arch_solo = allocate_components(&AllocRequest {
            model: &model,
            dataflow: &df,
            point,
            total_power: power,
            hw: &hw,
            macros: &macros,
            shares: &solo,
            macro_mode: MacroMode::Specialized,
        })
        .unwrap();
        let arch_shared = allocate_components(&AllocRequest {
            model: &model,
            dataflow: &df,
            point,
            total_power: power,
            hw: &hw,
            macros: &macros,
            shares: &shared,
            macro_mode: MacroMode::Specialized,
        })
        .unwrap();
        assert_eq!(arch_shared.macro_count() + 1, arch_solo.macro_count());
        // Freed fixed power lets the allocator buy at least as many ADCs.
        let adcs_solo: usize = arch_solo.layers.iter().map(|x| x.components.adc).sum();
        let adcs_shared: usize = arch_shared.layers.iter().map(|x| x.components.adc).sum();
        assert!(adcs_shared >= adcs_solo);
    }
}
