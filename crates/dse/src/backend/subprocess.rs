//! The subprocess backend: a pool of `pimsyn --worker` child processes
//! scoring candidates over the JSON-lines [`protocol`](super::protocol).
//!
//! Workers are spawned lazily on the first batch (the init payload needs
//! the run's model and hardware parameters), kept alive across batches, and
//! isolated per failure: a worker that dies, hangs up or answers garbage is
//! dropped, its in-flight chunk is recomputed inline (scoring is a pure
//! function, so results are unaffected), and the slot respawns on the next
//! batch. If no worker can be spawned at all — missing executable, resource
//! exhaustion — every batch silently degrades to inline scoring; the
//! [`BackendStats::fallback_jobs`](super::BackendStats) counter records it.
//!
//! Floats cross the process boundary as `f64::to_bits` hex, and the worker
//! runs the same analytic pipeline as this process, so subprocess scores
//! are bit-identical to inline ones.
//!
//! **Known limitation:** pipe reads have no timeout (std-only, no async
//! runtime), so a worker that *stalls without closing its pipes* — e.g. a
//! `SIGSTOP`ped child — blocks its chunk until the process resumes or dies.
//! The worker is this same trusted binary whose loop cannot block between
//! reading a request and answering it, so in practice stalls mean death
//! (covered by the EOF/error path). A future remote backend should carry
//! deadlines in the transport instead.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

use crate::eval::{CandidateScore, EvalCore};

use super::protocol::{parse_ready, ScoreRequest, ScoreResponse, WorkerInit};
use super::{pool_width, BackendStats, EvalBackend, EvalJob, StopCheck};

/// One live worker process with its pipe endpoints.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Deterministic teardown even for a wedged child: kill, then reap.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Pool {
    /// Session init line, built from the first batch's [`EvalCore`].
    init_line: Option<String>,
    /// Workers idle between batches.
    idle: Vec<Worker>,
    /// Workers alive in total — idle plus checked out to in-flight batches.
    /// The configured worker count caps this *globally*: concurrent
    /// design-point threads share one pool instead of each spawning their
    /// own complement.
    live: usize,
    /// Set when a spawn attempt fails (missing executable, bad handshake):
    /// further batches stop retrying and score inline instead of paying
    /// the spawn/handshake cost over and over.
    broken: bool,
    /// Monotonic request-id allocator (ids never repeat within a run).
    next_id: u64,
}

/// Scores batches across `pimsyn --worker` child processes.
pub struct SubprocessBackend {
    workers: usize,
    command: Option<PathBuf>,
    pool: Mutex<Pool>,
    batches: AtomicUsize,
    jobs: AtomicUsize,
    remote: AtomicUsize,
    fallback: AtomicUsize,
    spawns: AtomicUsize,
}

impl std::fmt::Debug for SubprocessBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubprocessBackend")
            .field("workers", &self.workers)
            .field("command", &self.command)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SubprocessBackend {
    /// A pool of `workers` child processes (`0` = one per available core),
    /// running `command` (`None` = the current executable, which is the
    /// `pimsyn` CLI when launched from it).
    pub fn new(workers: usize, command: Option<PathBuf>) -> Self {
        Self {
            workers,
            command,
            pool: Mutex::new(Pool {
                init_line: None,
                idle: Vec::new(),
                live: 0,
                broken: false,
                next_id: 0,
            }),
            batches: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
            remote: AtomicUsize::new(0),
            fallback: AtomicUsize::new(0),
            spawns: AtomicUsize::new(0),
        }
    }

    /// How long a freshly spawned worker gets to answer the init handshake.
    /// Guards against a `worker_command` (or `current_exe` in a non-CLI
    /// embedder) that ignores the protocol and never answers: after the
    /// timeout the child is killed and the pool marks itself broken, so the
    /// run degrades to inline scoring instead of hanging.
    const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

    /// Spawns and handshakes one worker; `None` when the executable is
    /// unavailable or the handshake fails or times out (the caller degrades
    /// to inline).
    fn spawn_worker(&self, init_line: &str) -> Option<Worker> {
        let command = self
            .command
            .clone()
            .or_else(|| std::env::current_exe().ok())?;
        let mut child = Command::new(command)
            .arg("--worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .ok()?;
        let mut stdin = child.stdin.take()?;
        let mut stdout = BufReader::new(child.stdout.take()?);
        self.spawns.fetch_add(1, Ordering::Relaxed);
        if writeln!(stdin, "{init_line}").is_err() || stdin.flush().is_err() {
            let _ = child.kill();
            let _ = child.wait();
            return None;
        }
        // Read the ready line on a helper thread so the handshake can time
        // out (std pipes have no read timeout). On timeout the child is
        // killed, which unblocks the reader.
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::spawn(move || {
            let mut line = String::new();
            let ok = matches!(stdout.read_line(&mut line), Ok(n) if n > 0);
            let _ = tx.send((ok, line, stdout));
        });
        let handshake = rx.recv_timeout(Self::HANDSHAKE_TIMEOUT);
        match handshake {
            Ok((true, line, stdout)) if parse_ready(line.trim()).is_ok() => {
                let _ = reader.join();
                Some(Worker {
                    child,
                    stdin,
                    stdout,
                })
            }
            _ => {
                let _ = child.kill();
                let _ = reader.join();
                let _ = child.wait();
                None
            }
        }
    }

    /// Scores one chunk on one worker: writes every request, then reads the
    /// matching responses.
    fn score_remote(
        worker: &mut Worker,
        jobs: &[EvalJob<'_>],
        id_base: u64,
    ) -> Result<Vec<CandidateScore>, String> {
        let mut payload = String::new();
        for (k, job) in jobs.iter().enumerate() {
            let request = ScoreRequest {
                id: id_base + k as u64,
                ratio_bits: job.point.ratio_rram.to_bits(),
                xb_size: job.point.crossbar.size(),
                cell_bits: job.point.crossbar.cell_bits(),
                dac_bits: job.df.dac().bits(),
                wt_dup: job.df.programs().iter().map(|p| p.wt_dup).collect(),
                gene: job.gene.as_slice().to_vec(),
            };
            payload.push_str(&request.to_line());
            payload.push('\n');
        }
        worker
            .stdin
            .write_all(payload.as_bytes())
            .map_err(|e| format!("worker write failed: {e}"))?;
        worker
            .stdin
            .flush()
            .map_err(|e| format!("worker flush failed: {e}"))?;
        let mut out: Vec<Option<CandidateScore>> = vec![None; jobs.len()];
        for _ in 0..jobs.len() {
            let mut line = String::new();
            let n = worker
                .stdout
                .read_line(&mut line)
                .map_err(|e| format!("worker read failed: {e}"))?;
            if n == 0 {
                return Err("worker closed its output mid-batch".to_string());
            }
            let response = ScoreResponse::parse(line.trim())?;
            let index = response
                .id
                .checked_sub(id_base)
                .filter(|&i| (i as usize) < jobs.len())
                .ok_or_else(|| format!("worker answered unknown id {}", response.id))?
                as usize;
            if out[index].replace(response.score).is_some() {
                return Err(format!("worker answered id {} twice", response.id));
            }
        }
        Ok(out.into_iter().map(|s| s.expect("all ids seen")).collect())
    }

    /// Scores one chunk, falling back to inline compute when the worker is
    /// missing or fails mid-chunk. Returns the scores, the still-healthy
    /// worker (if any), and the (remote, fallback) job counts. Cancellation
    /// is checked once per chunk (a dispatched chunk runs to completion).
    fn run_chunk(
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        worker: Option<Worker>,
        id_base: u64,
        stop: StopCheck<'_>,
    ) -> (Vec<CandidateScore>, Option<Worker>, usize, usize) {
        if stop() {
            return (vec![CandidateScore::INFEASIBLE; jobs.len()], worker, 0, 0);
        }
        if let Some(mut worker) = worker {
            match Self::score_remote(&mut worker, jobs, id_base) {
                Ok(scores) => return (scores, Some(worker), jobs.len(), 0),
                Err(_) => drop(worker), // failure isolation: chunk recomputes inline
            }
        }
        let scores = jobs
            .iter()
            .map(|job| {
                if stop() {
                    CandidateScore::INFEASIBLE
                } else {
                    core.score(job.df, job.point, job.gene)
                }
            })
            .collect();
        (scores, None, 0, jobs.len())
    }
}

impl EvalBackend for SubprocessBackend {
    fn name(&self) -> &'static str {
        "subprocess"
    }

    fn score_batch(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        stop: StopCheck<'_>,
    ) -> Vec<CandidateScore> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(jobs.len(), Ordering::Relaxed);
        if jobs.is_empty() {
            return Vec::new();
        }
        let width = pool_width(self.workers, jobs.len());
        let chunk = jobs.len().div_ceil(width);
        let chunks: Vec<&[EvalJob<'_>]> = jobs.chunks(chunk).collect();

        // Take idle workers, reserve spawn slots and an id range under the
        // lock; spawn the missing workers *outside* it — the handshake
        // blocks on the child, and other design-point threads must not wait
        // behind it. The configured worker count caps live workers
        // globally: concurrent design-point threads share one complement
        // instead of each spawning their own.
        let (init, mut workers, taken, to_spawn, id_base) = {
            let mut pool = self.pool.lock().expect("subprocess pool");
            if pool.init_line.is_none() {
                pool.init_line = Some(
                    WorkerInit {
                        model_json: pimsyn_model::onnx::to_json(core.model()),
                        hw_json: pimsyn_arch::hardware_config::to_json_exact(core.hw()),
                        power_bits: core.total_power().value().to_bits(),
                        macro_mode: core.macro_mode(),
                        objective: core.objective(),
                    }
                    .to_line(),
                );
            }
            let init = pool.init_line.clone().expect("just set");
            let mut workers: Vec<Option<Worker>> = Vec::with_capacity(chunks.len());
            for _ in 0..chunks.len() {
                workers.push(pool.idle.pop());
            }
            let taken = workers.iter().filter(|w| w.is_some()).count();
            let missing = chunks.len() - taken;
            let cap = pool_width(self.workers, usize::MAX);
            let to_spawn = if pool.broken {
                0
            } else {
                missing.min(cap.saturating_sub(pool.live))
            };
            pool.live += to_spawn; // reserve; released below if unused
            let id_base = pool.next_id;
            pool.next_id += jobs.len() as u64;
            (init, workers, taken, to_spawn, id_base)
        };
        let mut spawned = 0usize;
        let mut spawn_failed = false;
        for slot in &mut workers {
            if spawned == to_spawn || spawn_failed || stop() {
                break;
            }
            if slot.is_none() {
                match self.spawn_worker(&init) {
                    Some(worker) => {
                        *slot = Some(worker);
                        spawned += 1;
                    }
                    // One failure is enough evidence: stop retrying for the
                    // rest of the run (chunks without workers score inline).
                    None => spawn_failed = true,
                }
            }
        }

        let mut out = Vec::with_capacity(jobs.len());
        let mut survivors: Vec<Worker> = Vec::new();
        let mut remote = 0usize;
        let mut fallback = 0usize;
        if chunks.len() == 1 {
            let (scores, worker, r, f) =
                Self::run_chunk(core, chunks[0], workers[0].take(), id_base, stop);
            out.extend(scores);
            survivors.extend(worker);
            remote += r;
            fallback += f;
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .iter()
                    .zip(workers.iter_mut())
                    .enumerate()
                    .map(|(ci, (chunk_jobs, slot))| {
                        let worker = slot.take();
                        let base = id_base + (ci * chunk) as u64;
                        s.spawn(move || Self::run_chunk(core, chunk_jobs, worker, base, stop))
                    })
                    .collect();
                // Chunks joined in submission order: deterministic reduction.
                for handle in handles {
                    let (scores, worker, r, f) = handle.join().expect("chunk scorer panicked");
                    out.extend(scores);
                    survivors.extend(worker);
                    remote += r;
                    fallback += f;
                }
            });
        }
        self.remote.fetch_add(remote, Ordering::Relaxed);
        self.fallback.fetch_add(fallback, Ordering::Relaxed);

        let mut pool = self.pool.lock().expect("subprocess pool");
        // Release unused spawn reservations (and failed attempts), then
        // account worker deaths: live covers exactly idle + checked-out.
        let checked_out = taken + spawned;
        pool.live -= (to_spawn - spawned) + (checked_out - survivors.len());
        if spawn_failed {
            pool.broken = true;
        }
        pool.idle.extend(survivors);
        out
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            remote_jobs: self.remote.load(Ordering::Relaxed),
            fallback_jobs: self.fallback.load(Ordering::Relaxed),
            worker_spawns: self.spawns.load(Ordering::Relaxed),
        }
    }

    /// Tears the worker pool down (children see EOF/kill and exit); the
    /// next batch would respawn.
    fn flush(&self) {
        let mut pool = self.pool.lock().expect("subprocess pool");
        let torn_down = pool.idle.len();
        pool.live -= torn_down;
        pool.idle.clear();
    }
}

impl Drop for SubprocessBackend {
    fn drop(&mut self) {
        self.flush();
    }
}
