//! The subprocess backend: `pimsyn --worker` child processes scoring
//! candidates over the JSON-lines [`protocol`](super::protocol).
//!
//! Process ownership and per-run session state are separate layers:
//!
//! - A [`WorkerPool`] owns the child *processes*. It caps how many may be
//!   alive at once (globally, across every run that leases from it), hands
//!   idle processes out, takes survivors back, and kills whatever is still
//!   idle when it drops. A pool can be private to one backend (the classic
//!   per-run behavior) or shared across many runs through
//!   [`SharedEvalResources`](super::SharedEvalResources) — a long-lived
//!   service amortizes process spawn cost over its whole lifetime.
//! - A [`SubprocessBackend`] holds one run's *session*: the init line fixing
//!   the run's model/hardware/power/objective, and the leased workers that
//!   have already acknowledged that init. Leasing a process from the pool
//!   re-opens the session on it (a fresh `init` → `ready` handshake), so a
//!   process recycled from another run still ships the right model.
//!
//! Failure isolation is per worker: one that dies, hangs up or answers
//! garbage is dropped, its in-flight chunk is recomputed inline (scoring is
//! a pure function, so results are unaffected), and the slot is re-leased on
//! the next batch. If no worker can be spawned at all — missing executable,
//! resource exhaustion, handshake timeout — the pool backs off from further
//! spawn attempts for a bounded window and batches silently degrade to
//! inline scoring meanwhile; the
//! [`BackendStats::fallback_jobs`](super::BackendStats) counter records it.
//!
//! Floats cross the process boundary as `f64::to_bits` hex, and the worker
//! runs the same analytic pipeline as this process, so subprocess scores
//! are bit-identical to inline ones.
//!
//! **Known limitation:** pipe reads have no timeout (std-only, no async
//! runtime), so a worker that *stalls without closing its pipes* — e.g. a
//! `SIGSTOP`ped child — blocks its chunk until the process resumes or dies.
//! The worker is this same trusted binary whose loop cannot block between
//! reading a request and answering it, so in practice stalls mean death
//! (covered by the EOF/error path). The session-opening handshake *is*
//! timeout-guarded (a helper thread reads the ready line).

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use crate::eval::{CandidateScore, EvalCore};

use super::protocol::parse_ready_version;
use super::session::WireMode;
use super::{pool_width, session, BackendStats, EvalBackend, EvalJob, StopCheck};

/// One live worker process with its pipe endpoints. The stdout reader is
/// optional only because session handshakes temporarily move it onto a
/// helper thread (std pipes have no read timeout).
struct Worker {
    child: Child,
    stdin: ChildStdin,
    stdout: Option<BufReader<ChildStdout>>,
    /// The framing the current session negotiated (a same-build child
    /// normally lands on v2 binary frames; an older worker executable
    /// keeps JSON lines).
    wire: WireMode,
}

impl Drop for Worker {
    fn drop(&mut self) {
        // Deterministic teardown even for a wedged child: kill, then reap.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// How long a worker gets to answer a session-opening handshake. Guards
/// against an executable that ignores the protocol and never answers: after
/// the timeout the child is killed and the pool marks itself broken, so the
/// run degrades to inline scoring instead of hanging.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Opens (or re-opens) a run session on a worker: writes the init line and
/// waits for the matching `ready` acknowledgment. Consumes the worker and
/// returns it only when the handshake succeeds; a worker that fails it is
/// killed. Used both for freshly spawned processes and for processes
/// recycled from another run's session.
fn open_session(mut worker: Worker, init_line: &str) -> Option<Worker> {
    if writeln!(worker.stdin, "{init_line}").is_err() || worker.stdin.flush().is_err() {
        return None; // Drop kills and reaps
    }
    let mut stdout = worker.stdout.take()?;
    // Read the ready line on a helper thread so the handshake can time out
    // (std pipes have no read timeout). On timeout the child is killed,
    // which unblocks the reader.
    let (tx, rx) = mpsc::channel();
    let reader = std::thread::spawn(move || {
        let mut line = String::new();
        let ok = matches!(stdout.read_line(&mut line), Ok(n) if n > 0);
        let _ = tx.send((ok, line, stdout));
    });
    match rx.recv_timeout(HANDSHAKE_TIMEOUT) {
        Ok((true, line, stdout)) => match parse_ready_version(line.trim()) {
            Ok(version) => {
                let _ = reader.join();
                worker.stdout = Some(stdout);
                worker.wire = WireMode::for_version(version);
                Some(worker)
            }
            Err(_) => {
                let _ = worker.child.kill();
                let _ = reader.join();
                None // Drop reaps
            }
        },
        _ => {
            let _ = worker.child.kill();
            let _ = reader.join();
            None // Drop reaps
        }
    }
}

struct PoolState {
    /// Processes idle between runs/batches. Their last session (if any) may
    /// belong to a different run; leasing re-opens the session.
    idle: Vec<Worker>,
    /// Processes alive in total — idle plus checked out to in-flight
    /// batches. The configured worker count caps this *globally*: every
    /// run and design-point thread leasing from this pool shares one
    /// complement instead of each spawning its own.
    live: usize,
    /// Until when spawn attempts are suspended after a spawn or handshake
    /// failure (missing executable, bad protocol, transient fork failure):
    /// leases inside the window stop retrying and callers score inline
    /// instead of paying the spawn/handshake cost over and over. Bounded
    /// rather than permanent, so a long-lived shared pool (a serve daemon)
    /// recovers from transient resource pressure instead of degrading to
    /// inline scoring until restart.
    backoff_until: Option<std::time::Instant>,
}

/// A pool of `pimsyn --worker` child *processes*, shareable across runs.
///
/// The pool knows nothing about any particular synthesis run: it spawns,
/// stores and caps raw processes. Run-specific state (the init line, which
/// workers have acknowledged it) lives in the [`SubprocessBackend`] leasing
/// from it. Dropping the pool kills every idle process.
pub struct WorkerPool {
    /// Configured cap on live processes (`0` = one per available core).
    configured: usize,
    command: Option<PathBuf>,
    state: Mutex<PoolState>,
    /// Cumulative processes spawned over the pool's lifetime — the measure
    /// of how well a shared pool amortizes spawn cost across runs.
    spawns: AtomicUsize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("worker pool");
        f.debug_struct("WorkerPool")
            .field("configured", &self.configured)
            .field("command", &self.command)
            .field("idle", &state.idle.len())
            .field("live", &state.live)
            .field("backing_off", &state.backoff_until.is_some())
            .field("spawns", &self.spawns.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// A pool capped at `configured` live processes (`0` = one per
    /// available core), running `command` (`None` = the current executable,
    /// which is the `pimsyn` CLI when launched from it).
    pub fn new(configured: usize, command: Option<PathBuf>) -> Self {
        Self {
            configured,
            command,
            state: Mutex::new(PoolState {
                idle: Vec::new(),
                live: 0,
                backoff_until: None,
            }),
            spawns: AtomicUsize::new(0),
        }
    }

    /// How long spawn attempts stay suspended after a failure. Within one
    /// short synthesis run this effectively means "give up after the first
    /// failure" (the prior behavior); a long-lived daemon retries once the
    /// window passes.
    const SPAWN_BACKOFF: Duration = Duration::from_secs(30);

    /// Processes spawned over the pool's lifetime (never decremented).
    pub fn spawn_count(&self) -> usize {
        self.spawns.load(Ordering::Relaxed)
    }

    /// Processes currently alive (idle + checked out).
    pub fn live_workers(&self) -> usize {
        self.state.lock().expect("worker pool").live
    }

    /// The global live-process cap.
    fn cap(&self) -> usize {
        pool_width(self.configured, usize::MAX)
    }

    /// Takes up to `want` idle processes and reserves spawn slots for the
    /// shortfall under the global cap (reservations count as live until
    /// [`release_reservations`](Self::release_reservations) or a death is
    /// recorded). Returns `(processes, reservations)`; both may fall short
    /// of `want` when the pool is saturated or backing off after a spawn
    /// failure.
    fn checkout(&self, want: usize) -> (Vec<Worker>, usize) {
        let mut state = self.state.lock().expect("worker pool");
        let mut taken = Vec::new();
        while taken.len() < want {
            match state.idle.pop() {
                Some(worker) => taken.push(worker),
                None => break,
            }
        }
        let backing_off = state
            .backoff_until
            .is_some_and(|until| std::time::Instant::now() < until);
        let reserved = if backing_off {
            0
        } else {
            (want - taken.len()).min(self.cap().saturating_sub(state.live))
        };
        state.live += reserved;
        (taken, reserved)
    }

    /// Spawns one raw process against an earlier reservation (no session is
    /// opened; the caller handshakes). `None` when the executable cannot be
    /// started — the caller should release the reservation and
    /// [`mark_broken`](Self::mark_broken).
    fn spawn_process(&self) -> Option<Worker> {
        let command = self
            .command
            .clone()
            .or_else(|| std::env::current_exe().ok())?;
        let mut child = Command::new(command)
            .arg("--worker")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .ok()?;
        let stdin = child.stdin.take()?;
        let stdout = BufReader::new(child.stdout.take()?);
        self.spawns.fetch_add(1, Ordering::Relaxed);
        Some(Worker {
            child,
            stdin,
            stdout: Some(stdout),
            wire: WireMode::V1,
        })
    }

    /// Releases `n` unused spawn reservations.
    fn release_reservations(&self, n: usize) {
        if n > 0 {
            self.state.lock().expect("worker pool").live -= n;
        }
    }

    /// Records `n` worker deaths (checked-out or reserved-then-failed).
    fn record_deaths(&self, n: usize) {
        if n > 0 {
            self.state.lock().expect("worker pool").live -= n;
        }
    }

    /// Returns still-alive processes to the idle set (their session state is
    /// considered stale; the next lease re-opens it).
    fn checkin(&self, workers: Vec<Worker>) {
        if workers.is_empty() {
            return;
        }
        self.state.lock().expect("worker pool").idle.extend(workers);
    }

    /// Suspends spawn attempts for [`SPAWN_BACKOFF`](Self::SPAWN_BACKOFF):
    /// one failure is enough evidence to stop retrying for a while, without
    /// condemning a long-lived pool forever.
    fn mark_broken(&self) {
        self.state.lock().expect("worker pool").backoff_until =
            Some(std::time::Instant::now() + Self::SPAWN_BACKOFF);
    }
}

/// One run's session over the pool: the init line fixing the run's model
/// and hardware, the leased workers that already acknowledged it, and the
/// monotonic request-id allocator.
struct RunSession {
    init_line: Option<String>,
    /// Workers inited for *this* run, idle between batches.
    ready: Vec<Worker>,
    next_id: u64,
}

/// Scores batches across `pimsyn --worker` child processes leased from a
/// [`WorkerPool`].
pub struct SubprocessBackend {
    workers: usize,
    pool: Arc<WorkerPool>,
    session: Mutex<RunSession>,
    batches: AtomicUsize,
    jobs: AtomicUsize,
    remote: AtomicUsize,
    fallback: AtomicUsize,
    spawns: AtomicUsize,
}

impl std::fmt::Debug for SubprocessBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubprocessBackend")
            .field("workers", &self.workers)
            .field("pool", &self.pool)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl SubprocessBackend {
    /// A backend with a *private* pool of `workers` child processes (`0` =
    /// one per available core), running `command` (`None` = the current
    /// executable). The processes die with the backend — the classic
    /// per-run behavior.
    pub fn new(workers: usize, command: Option<PathBuf>) -> Self {
        Self::with_pool(workers, Arc::new(WorkerPool::new(workers, command)))
    }

    /// A backend leasing processes from an existing (typically shared)
    /// pool. Sessions are still per run: every leased process re-handshakes
    /// with this run's init line, so model and hardware always ship
    /// correctly; the processes themselves outlive the run and return to
    /// the pool on [`flush`](EvalBackend::flush).
    pub fn with_pool(workers: usize, pool: Arc<WorkerPool>) -> Self {
        Self {
            workers,
            pool,
            session: Mutex::new(RunSession {
                init_line: None,
                ready: Vec::new(),
                next_id: 0,
            }),
            batches: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
            remote: AtomicUsize::new(0),
            fallback: AtomicUsize::new(0),
            spawns: AtomicUsize::new(0),
        }
    }

    /// Scores one chunk on one worker via the shared
    /// [`session`](super::session) exchange.
    fn score_remote(
        worker: &mut Worker,
        jobs: &[EvalJob<'_>],
        id_base: u64,
    ) -> Result<Vec<CandidateScore>, String> {
        let stdout = worker.stdout.as_mut().ok_or("worker lost its stdout")?;
        session::exchange_scores_in(worker.wire, &mut worker.stdin, stdout, jobs, id_base)
    }

    /// Scores one chunk, falling back to inline compute when the worker is
    /// missing or fails mid-chunk. Returns the scores, the still-healthy
    /// worker (if any), and the (remote, fallback) job counts. Cancellation
    /// is checked once per chunk (a dispatched chunk runs to completion).
    fn run_chunk(
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        worker: Option<Worker>,
        id_base: u64,
        stop: StopCheck<'_>,
    ) -> (Vec<CandidateScore>, Option<Worker>, usize, usize) {
        if stop() {
            return (vec![CandidateScore::INFEASIBLE; jobs.len()], worker, 0, 0);
        }
        if let Some(mut worker) = worker {
            match Self::score_remote(&mut worker, jobs, id_base) {
                Ok(scores) => return (scores, Some(worker), jobs.len(), 0),
                Err(_) => drop(worker), // failure isolation: chunk recomputes inline
            }
        }
        let scores = jobs
            .iter()
            .map(|job| {
                if stop() {
                    CandidateScore::INFEASIBLE
                } else {
                    core.score(job.df, job.point, job.gene)
                }
            })
            .collect();
        (scores, None, 0, jobs.len())
    }

    /// Fills the `None` slots of `slots` with sessioned workers: processes
    /// leased from the pool (sessions re-opened with this run's init line)
    /// plus freshly spawned ones under the pool's spawn reservations.
    /// Handles all pool bookkeeping for failures.
    fn lease_missing(&self, slots: &mut [Option<Worker>], init: &str, stop: StopCheck<'_>) {
        let missing = slots.iter().filter(|s| s.is_none()).count();
        if missing == 0 {
            return;
        }
        let (mut leased, reserved) = self.pool.checkout(missing);
        let mut opened: Vec<Worker> = Vec::with_capacity(missing);
        let mut deaths = 0usize;
        // Re-open sessions on recycled processes; a process that fails the
        // handshake is dead (its slot can still be covered by a spawn).
        while let Some(worker) = leased.pop() {
            if stop() || opened.len() == missing {
                leased.push(worker);
                break;
            }
            match open_session(worker, init) {
                Some(worker) => opened.push(worker),
                None => deaths += 1,
            }
        }
        // Spawn fresh processes against the reservations for what is still
        // missing. One failure is enough evidence: back the pool off so
        // nearby batches stop retrying (chunks without workers score
        // inline).
        let mut used = 0usize;
        while opened.len() < missing && used < reserved && !stop() {
            used += 1;
            let worker = self.pool.spawn_process().and_then(|w| {
                self.spawns.fetch_add(1, Ordering::Relaxed);
                open_session(w, init)
            });
            match worker {
                Some(worker) => opened.push(worker),
                None => {
                    deaths += 1;
                    self.pool.mark_broken();
                    break;
                }
            }
        }
        self.pool.release_reservations(reserved - used);
        self.pool.record_deaths(deaths);
        self.pool.checkin(leased); // un-needed leases go back unopened
        let mut opened = opened.into_iter();
        for slot in slots.iter_mut() {
            if slot.is_none() {
                match opened.next() {
                    Some(worker) => *slot = Some(worker),
                    None => break,
                }
            }
        }
    }
}

impl EvalBackend for SubprocessBackend {
    fn name(&self) -> &'static str {
        "subprocess"
    }

    fn score_batch(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        stop: StopCheck<'_>,
    ) -> Vec<CandidateScore> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(jobs.len(), Ordering::Relaxed);
        if jobs.is_empty() {
            return Vec::new();
        }
        let width = pool_width(self.workers, jobs.len());
        let chunk = jobs.len().div_ceil(width);
        let chunks: Vec<&[EvalJob<'_>]> = jobs.chunks(chunk).collect();

        // Take this run's already-sessioned workers and an id range under
        // the session lock; lease/handshake the missing workers *outside*
        // it — the handshake blocks on the child, and other design-point
        // threads must not wait behind it.
        let (init, mut workers, id_base) = {
            let mut session = self.session.lock().expect("subprocess session");
            if session.init_line.is_none() {
                session.init_line = Some(session::init_line_for(core));
            }
            let init = session.init_line.clone().expect("just set");
            let mut workers: Vec<Option<Worker>> = Vec::with_capacity(chunks.len());
            for _ in 0..chunks.len() {
                workers.push(session.ready.pop());
            }
            let id_base = session.next_id;
            session.next_id += jobs.len() as u64;
            (init, workers, id_base)
        };
        self.lease_missing(&mut workers, &init, stop);
        // Every worker entering the batch; deaths are reconciled after it.
        let checked_out = workers.iter().filter(|w| w.is_some()).count();

        let mut out = Vec::with_capacity(jobs.len());
        let mut survivors: Vec<Worker> = Vec::new();
        let mut remote = 0usize;
        let mut fallback = 0usize;
        if chunks.len() == 1 {
            let (scores, worker, r, f) =
                Self::run_chunk(core, chunks[0], workers[0].take(), id_base, stop);
            out.extend(scores);
            survivors.extend(worker);
            remote += r;
            fallback += f;
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .iter()
                    .zip(workers.iter_mut())
                    .enumerate()
                    .map(|(ci, (chunk_jobs, slot))| {
                        let worker = slot.take();
                        let base = id_base + (ci * chunk) as u64;
                        s.spawn(move || Self::run_chunk(core, chunk_jobs, worker, base, stop))
                    })
                    .collect();
                // Chunks joined in submission order: deterministic reduction.
                for handle in handles {
                    let (scores, worker, r, f) = handle.join().expect("chunk scorer panicked");
                    out.extend(scores);
                    survivors.extend(worker);
                    remote += r;
                    fallback += f;
                }
            });
        }
        self.remote.fetch_add(remote, Ordering::Relaxed);
        self.fallback.fetch_add(fallback, Ordering::Relaxed);

        // Workers that died mid-chunk come off the pool's live count; the
        // healthy ones stay sessioned for this run's next batch.
        self.pool.record_deaths(checked_out - survivors.len());
        self.session
            .lock()
            .expect("subprocess session")
            .ready
            .extend(survivors);
        out
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            remote_jobs: self.remote.load(Ordering::Relaxed),
            fallback_jobs: self.fallback.load(Ordering::Relaxed),
            worker_spawns: self.spawns.load(Ordering::Relaxed),
        }
    }

    /// Ends this run's session: its workers return to the pool alive (a
    /// later run re-opens its own session on them). With a private pool the
    /// processes die when the backend — and with it the pool — drops; with
    /// a shared pool they persist and amortize spawn cost across runs.
    fn flush(&self) {
        let survivors = std::mem::take(&mut self.session.lock().expect("subprocess session").ready);
        self.pool.checkin(survivors);
    }
}

impl Drop for SubprocessBackend {
    fn drop(&mut self) {
        self.flush();
    }
}
