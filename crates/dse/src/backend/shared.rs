//! Process-wide evaluation resources shared across synthesis runs.
//!
//! A single synthesis run owns its evaluator, backend and persistent-cache
//! handle; sweeps, batches and long-lived services run *many* runs and waste
//! work re-creating what could be shared:
//!
//! - the subprocess [`WorkerPool`]: spawning and handshaking `pimsyn
//!   --worker` children per run pays process startup over and over, when the
//!   processes themselves are run-agnostic (a lease re-opens the session
//!   with the new run's model and hardware);
//! - the persistent evaluation cache: two jobs with the same fingerprint
//!   running back-to-back (or concurrently) each re-read — or worse, miss —
//!   the cache file, when the first job's snapshot is sitting in memory.
//!
//! [`SharedEvalResources`] bundles both behind one cloneable handle, wired
//! through [`EvalBackendConfig::shared`](super::EvalBackendConfig). Sharing
//! is *transparent*: scoring is a pure function of the candidate, so runs
//! with and without shared resources produce bit-identical outcomes; only
//! wall-clock (and spawn counts) differ.
//!
//! One caveat, inherited from the cache file itself: a run curtailed by
//! `max_unique_evaluations` stops by *work actually done* (memo misses),
//! and a warm-started memo turns misses into hits — so such a run's
//! stopping point depends on the warm-start state. That was already true
//! of sequential runs over one cache file; the in-memory store adds the
//! concurrent flavor (whether a sibling job's flush lands before this job's
//! evaluator is built decides its preload). Completed runs, and runs
//! bounded by the scored-candidate or wall-clock budgets, are unaffected.

use std::sync::{Arc, Mutex};

use super::persist::CacheSnapshot;
use super::remote::{RemoteFleetSnapshot, RemotePool};
use super::subprocess::WorkerPool;
use super::WorkerDirectory;

/// In-memory snapshots retained per shared handle; mirrors the cache file's
/// own bound so the two stay roughly in step.
const MAX_SNAPSHOTS: usize = super::persist::PersistentEvalCache::MAX_RUNS;

/// Evaluation resources shared by every run holding a clone of the handle:
/// one lazily-created subprocess [`WorkerPool`] and an in-memory
/// fingerprint-keyed store of evaluation-cache snapshots.
///
/// Create one per logical job group (a service, a sweep, a batch) and
/// attach it via
/// [`EvalBackendConfig::with_shared_resources`](super::EvalBackendConfig::with_shared_resources);
/// `sweep_power` and the `SynthesisService` do this automatically.
pub struct SharedEvalResources {
    /// Created on first use, with the first caller's worker count and
    /// command; later callers lease from the same pool regardless of their
    /// own configuration (the pool's cap governs globally).
    pool: Mutex<Option<Arc<WorkerPool>>>,
    /// Created on first remote-backend use, with the first caller's auth
    /// token; later callers *merge* their static endpoints into the shared
    /// roster, so the fleet only ever widens. Holds worker TCP connections
    /// open across jobs.
    remote: Mutex<Option<Arc<RemotePool>>>,
    /// The dynamic-roster hook (the serve/gateway worker registry),
    /// attached to the remote pool at creation (either order works).
    directory: Mutex<Option<Arc<dyn WorkerDirectory>>>,
    /// Most-recent evaluation-cache snapshot per run fingerprint,
    /// insertion-ordered so the oldest evicts first.
    snapshots: Mutex<Vec<(String, Arc<CacheSnapshot>)>>,
}

impl std::fmt::Debug for SharedEvalResources {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pool = self.pool.lock().expect("shared pool");
        let snapshots = self.snapshots.lock().expect("shared snapshots");
        f.debug_struct("SharedEvalResources")
            .field("pool", &pool.as_deref())
            .field("snapshots", &snapshots.len())
            .finish()
    }
}

impl Default for SharedEvalResources {
    fn default() -> Self {
        Self {
            pool: Mutex::new(None),
            remote: Mutex::new(None),
            directory: Mutex::new(None),
            snapshots: Mutex::new(Vec::new()),
        }
    }
}

impl SharedEvalResources {
    /// A fresh shared handle with no pool and no snapshots.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// The shared worker pool, created on first call (that caller's
    /// `workers` cap and `command` stick for the pool's lifetime).
    pub(crate) fn worker_pool(
        &self,
        workers: usize,
        command: Option<std::path::PathBuf>,
    ) -> Arc<WorkerPool> {
        let mut slot = self.pool.lock().expect("shared pool");
        slot.get_or_insert_with(|| Arc::new(WorkerPool::new(workers, command)))
            .clone()
    }

    /// Worker processes spawned by the shared pool so far (0 before any
    /// subprocess-backend run leased from it). A long-lived pool serving N
    /// jobs reports at most the configured pool width here, not N × width.
    pub fn worker_spawns(&self) -> usize {
        self.pool
            .lock()
            .expect("shared pool")
            .as_ref()
            .map_or(0, |p| p.spawn_count())
    }

    /// Worker processes currently alive in the shared pool.
    pub fn live_workers(&self) -> usize {
        self.pool
            .lock()
            .expect("shared pool")
            .as_ref()
            .map_or(0, |p| p.live_workers())
    }

    /// The shared remote connection pool, created on first call (that
    /// caller's auth `token` sticks for the pool's lifetime). Every
    /// caller's static `endpoints` are merged into the roster, and any
    /// worker directory attached via
    /// [`set_worker_directory`](Self::set_worker_directory) — before or
    /// after this call — feeds it dynamically.
    pub(crate) fn remote_pool(
        &self,
        endpoints: &[String],
        token: Option<String>,
    ) -> Arc<RemotePool> {
        let mut slot = self.remote.lock().expect("shared remote pool");
        let pool = slot
            .get_or_insert_with(|| {
                let pool = RemotePool::new(Vec::new(), token);
                if let Some(directory) = self.directory.lock().expect("shared directory").clone() {
                    pool.set_directory(directory);
                }
                pool
            })
            .clone();
        pool.add_static(endpoints);
        pool
    }

    /// Attaches a dynamic endpoint source (the serve/gateway worker
    /// registry) feeding the shared remote pool. Safe to call before any
    /// remote-backend run (the hook is replayed onto the pool when it is
    /// created) or after (the live pool picks it up immediately); calling
    /// again replaces the hook.
    pub fn set_worker_directory(&self, directory: Arc<dyn WorkerDirectory>) {
        *self.directory.lock().expect("shared directory") = Some(Arc::clone(&directory));
        if let Some(pool) = self.remote.lock().expect("shared remote pool").as_ref() {
            pool.set_directory(directory);
        }
    }

    /// A point-in-time view of the shared remote fleet: `None` before any
    /// remote-backend run creates the pool.
    pub fn remote_fleet(&self) -> Option<RemoteFleetSnapshot> {
        self.remote
            .lock()
            .expect("shared remote pool")
            .as_ref()
            .map(|pool| pool.fleet_snapshot())
    }

    /// The most recent snapshot published for `fingerprint`, if any.
    pub(crate) fn snapshot(&self, fingerprint: &str) -> Option<Arc<CacheSnapshot>> {
        self.snapshots
            .lock()
            .expect("shared snapshots")
            .iter()
            .find(|(fp, _)| fp == fingerprint)
            .map(|(_, snap)| Arc::clone(snap))
    }

    /// Snapshots currently retained (for observability and tests).
    pub fn snapshot_count(&self) -> usize {
        self.snapshots.lock().expect("shared snapshots").len()
    }

    /// Publishes a run's snapshot so later (or concurrent) runs with the
    /// same fingerprint warm-start from memory instead of the cache file.
    /// Replaces any previous snapshot for the fingerprint; the store keeps
    /// the most recent [`MAX_SNAPSHOTS`] fingerprints, oldest evicted.
    pub(crate) fn publish(&self, fingerprint: &str, snapshot: CacheSnapshot) {
        let mut store = self.snapshots.lock().expect("shared snapshots");
        store.retain(|(fp, _)| fp != fingerprint);
        store.push((fingerprint.to_string(), Arc::new(snapshot)));
        let excess = store.len().saturating_sub(MAX_SNAPSHOTS);
        store.drain(..excess);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_store_replaces_and_evicts_oldest_first() {
        let shared = SharedEvalResources::new();
        assert!(shared.snapshot("a").is_none());
        shared.publish("a", CacheSnapshot::default());
        shared.publish("b", CacheSnapshot::default());
        assert_eq!(shared.snapshot_count(), 2);
        assert!(shared.snapshot("a").is_some());
        // Re-publishing replaces in place (no duplicate entry).
        shared.publish("a", CacheSnapshot::default());
        assert_eq!(shared.snapshot_count(), 2);
        // Filling past the bound evicts the oldest fingerprints.
        for i in 0..MAX_SNAPSHOTS {
            shared.publish(&format!("fp{i}"), CacheSnapshot::default());
        }
        assert_eq!(shared.snapshot_count(), MAX_SNAPSHOTS);
        assert!(shared.snapshot("b").is_none(), "oldest must evict");
        assert!(shared
            .snapshot(&format!("fp{}", MAX_SNAPSHOTS - 1))
            .is_some());
    }

    #[test]
    fn remote_pool_is_shared_and_directory_attaches_in_either_order() {
        #[derive(Debug)]
        struct OneWorker;
        impl WorkerDirectory for OneWorker {
            fn roster(&self) -> Vec<String> {
                vec!["127.0.0.1:7002".to_string()]
            }
        }

        // Directory attached *before* the pool exists is replayed onto it.
        let shared = SharedEvalResources::new();
        assert!(shared.remote_fleet().is_none(), "no pool before first use");
        shared.set_worker_directory(Arc::new(OneWorker));
        let a = shared.remote_pool(&["127.0.0.1:7001".to_string()], None);
        let b = shared.remote_pool(&["127.0.0.1:7003".to_string()], Some("late".into()));
        assert!(Arc::ptr_eq(&a, &b), "first caller's pool sticks");
        a.refresh_roster();
        let fleet = shared.remote_fleet().expect("pool exists now");
        let addrs: Vec<&str> = fleet.endpoints.iter().map(|e| e.addr.as_str()).collect();
        assert!(addrs.contains(&"127.0.0.1:7001"), "first caller's seed");
        assert!(addrs.contains(&"127.0.0.1:7003"), "second caller merged");
        assert!(addrs.contains(&"127.0.0.1:7002"), "directory discovered");
        assert_eq!(fleet.live_connections, 0);

        // Directory attached *after* the pool exists reaches it too.
        let shared = SharedEvalResources::new();
        let pool = shared.remote_pool(&[], None);
        shared.set_worker_directory(Arc::new(OneWorker));
        pool.refresh_roster();
        assert_eq!(shared.remote_fleet().expect("pool").endpoints.len(), 1);
    }

    #[test]
    fn worker_pool_is_created_once_and_counts_nothing_before_use() {
        let shared = SharedEvalResources::new();
        assert_eq!(shared.worker_spawns(), 0);
        assert_eq!(shared.live_workers(), 0);
        let a = shared.worker_pool(2, None);
        let b = shared.worker_pool(7, Some("/elsewhere".into()));
        assert!(Arc::ptr_eq(&a, &b), "first caller's pool sticks");
        assert_eq!(
            shared.worker_spawns(),
            0,
            "no spawns until a lease needs one"
        );
    }
}
