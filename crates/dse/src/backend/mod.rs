//! Pluggable candidate-scoring backends.
//!
//! The synthesis loop spends virtually all of its time scoring candidates:
//! every EA macro-partitioning gene and every outer design point runs
//! components allocation plus the analytic performance model. This module
//! isolates that work behind the [`EvalBackend`] trait so the
//! [`CandidateEvaluator`](crate::CandidateEvaluator) — which owns the memo
//! caches, budget charging and statistics — composes with *where* the
//! scoring runs:
//!
//! - [`InlineBackend`] — on the calling thread (the default);
//! - [`ThreadPoolBackend`] — across scoped worker threads with
//!   deterministic input-order reduction;
//! - [`SubprocessBackend`] — across a pool of `pimsyn --worker` child
//!   processes speaking the versioned JSON-lines [`protocol`], with
//!   per-worker failure isolation (a crashed worker is respawned and its
//!   in-flight jobs recomputed inline);
//! - [`RemoteBackend`] — across `pimsyn worker-serve` daemons on other
//!   machines, speaking the same protocol over TCP with latency-aware
//!   chunking and the same failure isolation (a dead daemon's chunks
//!   recompute inline).
//!
//! Scoring is a pure function of the candidate, so every backend produces
//! bit-identical scores; only wall-clock and process placement differ. A
//! [`PersistentEvalCache`] can be layered over any backend to warm-start
//! repeated runs from a cache file.

mod inline;
mod persist;
mod planner;
pub mod protocol;
mod remote;
mod session;
mod shared;
mod subprocess;
mod threads;

pub use inline::InlineBackend;
pub use persist::{CacheSnapshot, PersistentEvalCache, EVAL_CACHE_SCHEMA};
pub use planner::{ChunkPlanner, ChunkPolicy, MIN_JOBS_PER_CHUNK};
pub use remote::{RemoteBackend, RemoteEndpointStatus, RemoteFleetSnapshot, RemotePool};
pub use shared::SharedEvalResources;
pub use subprocess::{SubprocessBackend, WorkerPool};
pub use threads::ThreadPoolBackend;

use std::path::PathBuf;
use std::sync::Arc;

use pimsyn_ir::Dataflow;

use crate::ea::MacAllocGene;
use crate::eval::{CandidateScore, EvalCore};
use crate::space::DesignPoint;

/// One candidate to score: the compiled dataflow it runs on, the outer
/// design point, and the macro-partitioning gene.
#[derive(Debug, Clone, Copy)]
pub struct EvalJob<'a> {
    /// Compiled dataflow (fixes DAC resolution and weight duplication).
    pub df: &'a Dataflow,
    /// Outer design point (`RatioRram`, crossbar configuration).
    pub point: DesignPoint,
    /// The `MacAlloc` gene in the paper's encoding.
    pub gene: &'a MacAllocGene,
}

/// Cumulative counters of one backend instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BackendStats {
    /// `score_batch` invocations.
    pub batches: usize,
    /// Jobs scored (across all batches).
    pub jobs: usize,
    /// Jobs scored by out-of-process workers (subprocess children or
    /// remote daemons).
    pub remote_jobs: usize,
    /// Jobs recomputed inline after a worker failure.
    pub fallback_jobs: usize,
    /// Worker processes spawned (subprocess) or connections opened
    /// (remote).
    pub worker_spawns: usize,
}

/// A cooperative cancellation probe handed to backends: `true` means the
/// caller no longer wants the results and remaining jobs may be skipped
/// (skipped jobs come back as [`CandidateScore::INFEASIBLE`] placeholders).
/// Budget and deadline stops are *not* routed through this — they are
/// accounted before dispatch, and every dispatched job must still compute
/// so that charged candidates always receive real scores.
pub type StopCheck<'a> = &'a (dyn Fn() -> bool + Sync);

/// A [`StopCheck`] that never stops (for callers outside a cancellable
/// context).
pub const NEVER_STOP: StopCheck<'static> = &|| false;

/// A dynamic source of remote worker endpoints (`host:port` each).
///
/// Implemented by the serve/gateway worker registry: `pimsyn worker-serve
/// --announce` daemons register themselves and heartbeat liveness, and the
/// registry's roster — queried by the [`RemotePool`] before every batch —
/// reflects joins, drains and evictions. The roster is advisory: an
/// endpoint listed here may still be unreachable (the usual remote failure
/// isolation applies), and endpoints configured statically are used whether
/// or not a directory lists them.
pub trait WorkerDirectory: Send + Sync + std::fmt::Debug {
    /// The endpoints currently believed alive, `host:port` each.
    fn roster(&self) -> Vec<String>;

    /// The roster with scheduling hints attached. The default adapts
    /// [`roster`](Self::roster) for directories that predate hints: one
    /// session per endpoint, and epoch `0` — "unknown", which the pool
    /// treats as "never reset on epoch comparison".
    fn entries(&self) -> Vec<DirectoryEntry> {
        self.roster()
            .into_iter()
            .map(|addr| DirectoryEntry {
                addr,
                slots: 1,
                epoch: 0,
            })
            .collect()
    }
}

/// One [`WorkerDirectory`] roster row: where to dial, how many concurrent
/// sessions the worker's registration advertised, and the registration
/// *epoch* — a counter the registry bumps every time the address is
/// freshly (re-)announced after leaving, so the pool can detect a worker
/// restart that happened entirely between two roster refreshes and drop
/// its stale throughput estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectoryEntry {
    /// Dialable `host:port`.
    pub addr: String,
    /// Advertised concurrent-session capacity (≥ 1 once sanitized).
    pub slots: usize,
    /// Registration generation; `0` means the directory doesn't track one.
    pub epoch: u64,
}

/// Where candidate scoring runs.
///
/// Implementations must be deterministic: scoring is a pure function of the
/// candidate, and [`score_batch`](Self::score_batch) must return scores in
/// input order regardless of internal scheduling, so that every backend is
/// bit-identical to [`InlineBackend`]. Implementations should poll `stop`
/// between jobs (or at least between chunks) so cancellation stays prompt
/// even inside a large batch.
pub trait EvalBackend: Send + Sync + std::fmt::Debug {
    /// Short identifier (`"inline"`, `"threads"`, `"subprocess"`,
    /// `"remote"`).
    fn name(&self) -> &'static str;

    /// Scores `jobs`, returning one score per job in input order; jobs
    /// skipped after `stop` turns `true` come back as
    /// [`CandidateScore::INFEASIBLE`].
    fn score_batch(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        stop: StopCheck<'_>,
    ) -> Vec<CandidateScore>;

    /// Scores a single job (default: a one-element batch, never skipped).
    fn score(&self, core: &EvalCore<'_>, job: &EvalJob<'_>) -> CandidateScore {
        self.score_batch(core, std::slice::from_ref(job), NEVER_STOP)
            .pop()
            .unwrap_or(CandidateScore::INFEASIBLE)
    }

    /// Snapshot of the backend's throughput counters.
    fn stats(&self) -> BackendStats {
        BackendStats::default()
    }

    /// Releases buffered state (worker pipes, pending writes). Called once
    /// when a synthesis run finishes; a no-op for stateless backends.
    fn flush(&self) {}
}

/// Sizes a worker pool for one batch: `configured` workers (`0` = one per
/// available core), never more than there are jobs, never less than one.
pub(crate) fn pool_width(configured: usize, jobs: usize) -> usize {
    let width = if configured == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    } else {
        configured
    };
    width.clamp(1, jobs.max(1))
}

/// A `u64` (typically `f64::to_bits`) as the 16-digit hex string used by
/// both the worker protocol and the persistent cache file.
pub(crate) fn u64_hex(v: u64) -> String {
    format!("{v:016x}")
}

/// Parses a [`u64_hex`] bit pattern back.
pub(crate) fn parse_u64_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

/// Which [`EvalBackend`] implementation to run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Score on the calling thread (the default).
    #[default]
    Inline,
    /// Score batches across scoped threads; `workers == 0` means one per
    /// available core.
    ThreadPool {
        /// Worker-thread count (0 = auto).
        workers: usize,
    },
    /// Score batches across `pimsyn --worker` child processes; `workers ==
    /// 0` means one per available core.
    Subprocess {
        /// Worker-process count (0 = auto).
        workers: usize,
    },
    /// Score batches across `pimsyn worker-serve` daemons over TCP.
    Remote {
        /// The worker-daemon roster, `host:port` each (validated by
        /// [`parse_remote_roster`]).
        endpoints: Vec<String>,
    },
}

/// Resolves `addr` and dials every resolved address in turn, each with a
/// bounded connect timeout — like `TcpStream::connect` (a dual-stack host
/// often lists `::1` before `127.0.0.1`), but never blocking for the OS
/// default TCP timeout on a dead host. Shared by the remote backend and
/// the `worker-stop` client.
///
/// # Errors
///
/// A human-readable message for resolution failures, an empty resolution,
/// or the last connect failure.
pub fn dial_bounded(
    addr: &str,
    timeout: std::time::Duration,
) -> Result<std::net::TcpStream, String> {
    use std::net::ToSocketAddrs;
    let mut last_err: Option<std::io::Error> = None;
    for sockaddr in addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {addr}: {e}"))?
    {
        match std::net::TcpStream::connect_timeout(&sockaddr, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(match last_err {
        Some(e) => format!("cannot connect to {addr}: {e}"),
        None => format!("{addr} resolves to no address"),
    })
}

/// Reads a shared-auth-token file, trimming surrounding whitespace (the
/// trailing newline every editor appends would otherwise corrupt the
/// JSON-lines handshake frame). The single reader for every surface that
/// takes a token file — `RemoteBackend`, `worker-serve`, `worker-stop` —
/// so token normalization can never diverge between them.
///
/// # Errors
///
/// A human-readable message naming the unreadable path.
pub fn read_token_file(path: &std::path::Path) -> Result<String, String> {
    std::fs::read_to_string(path)
        .map(|text| text.trim().to_string())
        .map_err(|e| format!("cannot read token file {}: {e}", path.display()))
}

/// Validates a remote worker roster: a non-empty, duplicate-free,
/// comma-separated list of `host:port` endpoints.
///
/// # Errors
///
/// A human-readable message naming the offending endpoint.
pub fn parse_remote_roster(spec: &str) -> Result<Vec<String>, String> {
    let mut endpoints: Vec<String> = Vec::new();
    for raw in spec.split(',') {
        let endpoint = raw.trim();
        if endpoint.is_empty() {
            return Err("remote roster contains an empty endpoint".to_string());
        }
        let (host, port) = endpoint
            .rsplit_once(':')
            .ok_or_else(|| format!("remote endpoint `{endpoint}` must be host:port"))?;
        if host.is_empty() {
            return Err(format!("remote endpoint `{endpoint}` lacks a host"));
        }
        match port.parse::<u16>() {
            Ok(p) if p > 0 => {}
            _ => {
                return Err(format!(
                    "remote endpoint `{endpoint}` has an invalid port `{port}`"
                ))
            }
        }
        if endpoints.iter().any(|e| e == endpoint) {
            return Err(format!("duplicate remote endpoint `{endpoint}`"));
        }
        endpoints.push(endpoint.to_string());
    }
    Ok(endpoints)
}

impl BackendKind {
    /// Parses the CLI spelling: `inline`, `threads[:N]`, `subprocess[:N]`,
    /// or `remote:host:port[,host:port...]`.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown names, malformed counts, or an
    /// invalid remote roster.
    pub fn parse(s: &str) -> Result<Self, String> {
        let (name, arg) = match s.split_once(':') {
            Some((n, a)) => (n, Some(a)),
            None => (s, None),
        };
        let count = |arg: Option<&str>| -> Result<usize, String> {
            match arg {
                None => Ok(0),
                Some(t) => match t.parse::<usize>() {
                    Ok(n) if n >= 1 => Ok(n),
                    _ => Err(format!("worker count `{t}` must be a positive integer")),
                },
            }
        };
        match name {
            "inline" => match arg {
                None => Ok(BackendKind::Inline),
                Some(_) => Err("`inline` takes no worker count".to_string()),
            },
            "threads" => Ok(BackendKind::ThreadPool {
                workers: count(arg)?,
            }),
            "subprocess" => Ok(BackendKind::Subprocess {
                workers: count(arg)?,
            }),
            "remote" => match arg {
                Some(spec) => Ok(BackendKind::Remote {
                    endpoints: parse_remote_roster(spec)?,
                }),
                None => Err(
                    "`remote` requires a worker roster: remote:host:port[,host:port...]"
                        .to_string(),
                ),
            },
            other => Err(format!(
                "unknown backend `{other}` (expected inline, threads[:N], subprocess[:N] or \
                 remote:host:port[,...])"
            )),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Inline => write!(f, "inline"),
            BackendKind::ThreadPool { workers: 0 } => write!(f, "threads"),
            BackendKind::ThreadPool { workers } => write!(f, "threads:{workers}"),
            BackendKind::Subprocess { workers: 0 } => write!(f, "subprocess"),
            BackendKind::Subprocess { workers } => write!(f, "subprocess:{workers}"),
            BackendKind::Remote { endpoints } => write!(f, "remote:{}", endpoints.join(",")),
        }
    }
}

/// Full evaluation-backend configuration: the backend kind plus the
/// cross-run persistence, sharing and worker-command overrides.
#[derive(Debug, Clone, Default)]
pub struct EvalBackendConfig {
    /// Which backend scores candidates.
    pub kind: BackendKind,
    /// Persistent evaluation-cache file: loaded (when its fingerprint
    /// matches the run) before the search and rewritten after it, so
    /// repeated invocations and sweeps warm-start.
    pub cache_file: Option<PathBuf>,
    /// Flush-time cap on candidate-score entries written per run section of
    /// the cache file: the oldest (first-inserted) entries are trimmed
    /// first, so paper-scale sweeps stop growing the file without bound.
    /// `None` writes every memo entry. Only meaningful with
    /// [`cache_file`](Self::cache_file).
    pub cache_max_entries: Option<usize>,
    /// Override of the worker executable for [`BackendKind::Subprocess`]
    /// (default: the current executable, which is the `pimsyn` CLI when
    /// launched from it). Tests point this at a built `pimsyn` binary.
    pub worker_command: Option<PathBuf>,
    /// File holding the shared auth token [`BackendKind::Remote`] presents
    /// to `pimsyn worker-serve` daemons started with `--auth-token-file`
    /// (whitespace-trimmed; `None` connects unauthenticated). An
    /// unreadable file degrades to an unauthenticated connection with one
    /// stderr warning — like every other remote failure, scoring falls
    /// back inline and results are unaffected.
    pub remote_token_file: Option<PathBuf>,
    /// Resources shared across runs: one subprocess worker pool (leased and
    /// re-sessioned per run instead of spawned per run) and one in-memory
    /// evaluation-cache snapshot store. Sharing is transparent — outcomes
    /// are bit-identical with or without it. Set by `sweep_power` and the
    /// synthesis service; `None` keeps every resource private to the run.
    pub shared: Option<Arc<SharedEvalResources>>,
}

/// Configurations compare by value, except the shared-resource handle which
/// compares by identity (two configs sharing the *same* pool are equal;
/// equal-but-distinct pools are not interchangeable).
impl PartialEq for EvalBackendConfig {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
            && self.cache_file == other.cache_file
            && self.cache_max_entries == other.cache_max_entries
            && self.worker_command == other.worker_command
            && self.remote_token_file == other.remote_token_file
            && match (&self.shared, &other.shared) {
                (None, None) => true,
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                _ => false,
            }
    }
}

impl EvalBackendConfig {
    /// The default inline configuration.
    pub fn inline() -> Self {
        Self::default()
    }

    /// Configuration for the given backend kind.
    pub fn new(kind: BackendKind) -> Self {
        Self {
            kind,
            ..Self::default()
        }
    }

    /// Sets the persistent cache file.
    #[must_use]
    pub fn with_cache_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_file = Some(path.into());
        self
    }

    /// Caps candidate-score entries written per cache-file run section
    /// (oldest trimmed first at flush time).
    #[must_use]
    pub fn with_cache_max_entries(mut self, cap: usize) -> Self {
        self.cache_max_entries = Some(cap);
        self
    }

    /// Overrides the subprocess worker executable.
    #[must_use]
    pub fn with_worker_command(mut self, path: impl Into<PathBuf>) -> Self {
        self.worker_command = Some(path.into());
        self
    }

    /// Sets the file holding the shared token remote connections
    /// authenticate with.
    #[must_use]
    pub fn with_remote_token_file(mut self, path: impl Into<PathBuf>) -> Self {
        self.remote_token_file = Some(path.into());
        self
    }

    /// Attaches cross-run shared resources (worker pool, snapshot store).
    #[must_use]
    pub fn with_shared_resources(mut self, shared: Arc<SharedEvalResources>) -> Self {
        self.shared = Some(shared);
        self
    }

    /// Instantiates the configured backend. With shared resources attached,
    /// a subprocess backend leases processes from the shared pool (created
    /// on first use) instead of owning a private one.
    pub fn build(&self) -> Box<dyn EvalBackend> {
        match &self.kind {
            BackendKind::Inline => Box::new(InlineBackend::default()),
            BackendKind::ThreadPool { workers } => Box::new(ThreadPoolBackend::new(*workers)),
            BackendKind::Subprocess { workers } => match &self.shared {
                Some(shared) => Box::new(SubprocessBackend::with_pool(
                    *workers,
                    shared.worker_pool(*workers, self.worker_command.clone()),
                )),
                None => Box::new(SubprocessBackend::new(
                    *workers,
                    self.worker_command.clone(),
                )),
            },
            BackendKind::Remote { endpoints } => {
                let token = self
                    .remote_token_file
                    .as_ref()
                    .and_then(|path| match read_token_file(path) {
                        Ok(token) => Some(token),
                        Err(e) => {
                            eprintln!("pimsyn: {e}; connecting without a token");
                            None
                        }
                    });
                match &self.shared {
                    Some(shared) => Box::new(RemoteBackend::with_pool(
                        shared.remote_pool(endpoints, token),
                    )),
                    None => Box::new(RemoteBackend::new(endpoints.clone(), token)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_cli_spellings() {
        assert_eq!(BackendKind::parse("inline").unwrap(), BackendKind::Inline);
        assert_eq!(
            BackendKind::parse("threads").unwrap(),
            BackendKind::ThreadPool { workers: 0 }
        );
        assert_eq!(
            BackendKind::parse("threads:3").unwrap(),
            BackendKind::ThreadPool { workers: 3 }
        );
        assert_eq!(
            BackendKind::parse("subprocess:2").unwrap(),
            BackendKind::Subprocess { workers: 2 }
        );
        assert!(BackendKind::parse("inline:2").is_err());
        assert!(BackendKind::parse("subprocess:0").is_err());
        assert!(BackendKind::parse("subprocess:x").is_err());
        assert!(BackendKind::parse("gpu").is_err());
    }

    #[test]
    fn remote_rosters_parse() {
        assert_eq!(
            BackendKind::parse("remote:127.0.0.1:7801").unwrap(),
            BackendKind::Remote {
                endpoints: vec!["127.0.0.1:7801".to_string()]
            }
        );
        assert_eq!(
            BackendKind::parse("remote:alpha:1,beta:2").unwrap(),
            BackendKind::Remote {
                endpoints: vec!["alpha:1".to_string(), "beta:2".to_string()]
            }
        );
        // Whitespace around endpoints is tolerated.
        assert_eq!(
            parse_remote_roster("a:1, b:2").unwrap(),
            vec!["a:1".to_string(), "b:2".to_string()]
        );
    }

    #[test]
    fn bad_remote_rosters_are_rejected() {
        for (spec, needle) in [
            ("remote", "roster"),                  // no roster at all
            ("remote:", "empty endpoint"),         // empty roster
            ("remote:a:1,,b:2", "empty endpoint"), // empty entry
            ("remote:justahost", "host:port"),     // no port
            ("remote::7801", "lacks a host"),      // no host
            ("remote:h:0", "invalid port"),        // port 0 is not dialable
            ("remote:h:x", "invalid port"),        // non-numeric port
            ("remote:h:70000", "invalid port"),    // beyond u16
            ("remote:h:1,h:1", "duplicate"),       // duplicate endpoint
        ] {
            let err = BackendKind::parse(spec).unwrap_err();
            assert!(err.contains(needle), "`{spec}` -> `{err}`");
        }
    }

    #[test]
    fn remote_display_round_trips() {
        for spec in ["remote:127.0.0.1:7801", "remote:a:1,b:2,c:3"] {
            let kind = BackendKind::parse(spec).unwrap();
            assert_eq!(kind.to_string(), spec);
            assert_eq!(BackendKind::parse(&kind.to_string()).unwrap(), kind);
        }
    }

    #[test]
    fn backend_kind_displays_round_trip() {
        for kind in [
            BackendKind::Inline,
            BackendKind::ThreadPool { workers: 0 },
            BackendKind::ThreadPool { workers: 4 },
            BackendKind::Subprocess { workers: 2 },
        ] {
            assert_eq!(BackendKind::parse(&kind.to_string()).unwrap(), kind);
        }
    }

    #[test]
    fn config_builds_the_configured_backend() {
        assert_eq!(EvalBackendConfig::inline().build().name(), "inline");
        assert_eq!(
            EvalBackendConfig::new(BackendKind::ThreadPool { workers: 2 })
                .build()
                .name(),
            "threads"
        );
        assert_eq!(
            EvalBackendConfig::new(BackendKind::Subprocess { workers: 1 })
                .build()
                .name(),
            "subprocess"
        );
    }
}
