//! The inline backend: candidate scoring on the calling thread, exactly the
//! analytic path the synthesis flow has always used. The default, and the
//! reference every other backend must match bit for bit.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::eval::{CandidateScore, EvalCore};

use super::{BackendStats, EvalBackend, EvalJob, StopCheck};

/// Scores candidates on the calling thread.
#[derive(Debug, Default)]
pub struct InlineBackend {
    batches: AtomicUsize,
    jobs: AtomicUsize,
}

impl EvalBackend for InlineBackend {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn score_batch(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        stop: StopCheck<'_>,
    ) -> Vec<CandidateScore> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(jobs.len(), Ordering::Relaxed);
        jobs.iter()
            .map(|job| {
                if stop() {
                    CandidateScore::INFEASIBLE
                } else {
                    core.score(job.df, job.point, job.gene)
                }
            })
            .collect()
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            ..BackendStats::default()
        }
    }
}
