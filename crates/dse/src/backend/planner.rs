//! The pure chunk planner behind the remote backend's adaptive scheduling.
//!
//! Splitting a batch across fleet connections is a *planning* problem —
//! how many jobs each connection should carry — and a *transport* problem
//! — dialing, framing, failure isolation. This module owns only the first:
//! [`ChunkPlanner`] is a pure function from per-connection throughput
//! weights to a contiguous partition of the batch, so scheduling policy is
//! unit- and property-testable without a socket in sight.
//!
//! **Weighting.** Each connection carries a weight: its endpoint's
//! estimated scoring throughput in candidates per second (an EWMA of
//! observed exchange rates, see
//! [`RemoteBackend`](super::RemoteBackend)). Connections with no
//! measurement yet (a fresh endpoint, or one whose estimate was reset
//! after a failure or registry eviction) weigh in at the *mean of the
//! measured weights* — a cold worker gets a fair share, earns a
//! measurement on its first exchange, and converges from there. With no
//! measurements at all every weight is equal and the plan degenerates to
//! the classic count-balanced split.
//!
//! **Partitioning.** A batch of `n` jobs funds at most
//! `n / MIN_JOBS_PER_CHUNK` chunks (a network round trip must carry enough
//! work to be worth its latency), so only the heaviest that-many
//! connections receive jobs. Shares are apportioned by largest remainder
//! over the weights, then repaired so every nonempty chunk holds at least
//! [`MIN_JOBS_PER_CHUNK`] jobs (taking the excess from the largest chunks)
//! — except when the whole batch is smaller than a minimum chunk, in which
//! case the single tail chunk is the batch. Finally the chunk sizes are
//! re-dealt in weight order, making the plan *monotone*: a connection
//! never receives a smaller chunk than a lighter-weighted one.
//!
//! The plan fixes only *where* jobs are first queued. Results are always
//! reduced in input order by the caller, so any plan — and any straggler
//! requeue that later moves tail pieces between connections — produces
//! bit-identical scores.

/// Minimum jobs per remote chunk: a network round trip is only worth
/// paying when it carries enough work. Plans never produce a nonempty
/// chunk smaller than this, except the single chunk of a batch that is
/// itself smaller.
pub const MIN_JOBS_PER_CHUNK: usize = 8;

/// How the remote backend partitions batches across connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkPolicy {
    /// Throughput-weighted chunks with straggler requeue (the default):
    /// fast endpoints carry more of each batch, and idle connections take
    /// over the queued tail of a straggling chunk.
    #[default]
    Adaptive,
    /// The pre-adaptive behavior: equal shares (sizes differ by at most
    /// one), no requeue. Kept for benchmarks and A/B tests; results are
    /// bit-identical under either policy, only wall-clock differs.
    CountBalanced,
}

/// A pure planner: per-connection weights in, a contiguous partition of
/// the batch out.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkPlanner {
    weights: Vec<f64>,
}

impl ChunkPlanner {
    /// A planner over one weight per connection: `Some(rate)` is a
    /// measured throughput estimate (candidates per second; non-finite or
    /// non-positive values are treated as unmeasured), `None` is a
    /// connection with no estimate yet. Unmeasured connections weigh in
    /// at the mean of the measured ones (or `1.0` when nothing is
    /// measured, making the plan count-balanced).
    pub fn new(weights: &[Option<f64>]) -> Self {
        let measured: Vec<f64> = weights
            .iter()
            .filter_map(|w| w.filter(|x| x.is_finite() && *x > 0.0))
            .collect();
        let cold = if measured.is_empty() {
            1.0
        } else {
            measured.iter().sum::<f64>() / measured.len() as f64
        };
        Self {
            weights: weights
                .iter()
                .map(|w| w.filter(|x| x.is_finite() && *x > 0.0).unwrap_or(cold))
                .collect(),
        }
    }

    /// The count-balanced planner over `connections` equal weights.
    pub fn count_balanced(connections: usize) -> Self {
        Self {
            weights: vec![1.0; connections],
        }
    }

    /// The sanitized weight per connection (unmeasured entries already
    /// filled with the cold default).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Plans a batch of `jobs` jobs: one `(lo, hi)` range per connection,
    /// in connection order, concatenating to exactly `0..jobs` (empty
    /// ranges for connections the batch is too small to feed). Nonempty
    /// chunks hold at least [`MIN_JOBS_PER_CHUNK`] jobs unless the whole
    /// batch is smaller (then its single chunk is the tail), and chunk
    /// sizes are monotone in weight: a heavier connection never receives
    /// fewer jobs than a lighter one.
    pub fn plan(&self, jobs: usize) -> Vec<(usize, usize)> {
        let sizes = self.chunk_sizes(jobs);
        let mut ranges = Vec::with_capacity(sizes.len());
        let mut offset = 0usize;
        for len in sizes {
            ranges.push((offset, offset + len));
            offset += len;
        }
        ranges
    }

    /// The chunk size per connection (the lengths of [`plan`](Self::plan)'s
    /// ranges).
    fn chunk_sizes(&self, jobs: usize) -> Vec<usize> {
        let n = self.weights.len();
        if n == 0 || jobs == 0 {
            return vec![0; n];
        }
        // A batch funds at most jobs / MIN_JOBS_PER_CHUNK round trips;
        // only the heaviest that-many connections receive jobs.
        let active = (jobs / MIN_JOBS_PER_CHUNK).clamp(1, n);
        // Weight-descending connection order, index-stable on ties.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            self.weights[b]
                .partial_cmp(&self.weights[a])
                .expect("weights are sanitized finite")
                .then(a.cmp(&b))
        });
        let chosen = &order[..active];
        let total: f64 = chosen.iter().map(|&i| self.weights[i]).sum();

        // Largest-remainder apportionment of the batch over the chosen
        // weights: floor the ideal shares, then hand the leftover units
        // to the largest fractional remainders (weight-first on ties, so
        // the result stays monotone before repair).
        let ideals: Vec<f64> = chosen
            .iter()
            .map(|&i| jobs as f64 * self.weights[i] / total)
            .collect();
        let mut shares: Vec<usize> = ideals.iter().map(|x| x.floor() as usize).collect();
        let mut leftover = jobs - shares.iter().sum::<usize>();
        let mut by_remainder: Vec<usize> = (0..active).collect();
        by_remainder.sort_by(|&a, &b| {
            let ra = ideals[a] - ideals[a].floor();
            let rb = ideals[b] - ideals[b].floor();
            rb.partial_cmp(&ra)
                .expect("remainders are finite")
                .then(a.cmp(&b))
        });
        let mut cursor = 0usize;
        while leftover > 0 {
            shares[by_remainder[cursor % active]] += 1;
            cursor += 1;
            leftover -= 1;
        }

        // Minimum-chunk repair: raise every sub-minimum chunk to the
        // floor, funding it from the currently-largest chunks one job at
        // a time. Feasible whenever jobs >= active * MIN_JOBS_PER_CHUNK,
        // which the active cap guarantees (the only exception is a batch
        // smaller than one minimum chunk, whose single chunk is the tail).
        if jobs >= active * MIN_JOBS_PER_CHUNK {
            let mut debt = 0usize;
            for share in shares.iter_mut() {
                if *share < MIN_JOBS_PER_CHUNK {
                    debt += MIN_JOBS_PER_CHUNK - *share;
                    *share = MIN_JOBS_PER_CHUNK;
                }
            }
            while debt > 0 {
                let richest = (0..active).max_by_key(|&k| shares[k]).expect("active >= 1");
                debug_assert!(shares[richest] > MIN_JOBS_PER_CHUNK);
                shares[richest] -= 1;
                debt -= 1;
            }
        }

        // Monotone re-deal: the sorted share multiset assigned in weight
        // order, so a heavier connection never gets the smaller chunk.
        shares.sort_unstable_by(|a, b| b.cmp(a));
        let mut sizes = vec![0usize; n];
        for (rank, &i) in chosen.iter().enumerate() {
            sizes[i] = shares[rank];
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic LCG so the property loops are seeded and
    /// reproducible without any RNG dependency.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 11
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound.max(1)
        }
    }

    fn assert_plan_invariants(planner: &ChunkPlanner, jobs: usize) {
        let ranges = planner.plan(jobs);
        assert_eq!(ranges.len(), planner.weights().len());
        // Exact contiguous partition: ranges concatenate to 0..jobs with
        // no gap and no overlap.
        let mut offset = 0usize;
        for &(lo, hi) in &ranges {
            assert_eq!(lo, offset, "ranges must be contiguous");
            assert!(hi >= lo);
            offset = hi;
        }
        assert_eq!(offset, jobs, "ranges must cover the batch exactly once");
        // Minimum chunk respected, except the single tail chunk of a
        // batch smaller than one minimum chunk.
        let nonempty: Vec<usize> = ranges
            .iter()
            .map(|&(lo, hi)| hi - lo)
            .filter(|&l| l > 0)
            .collect();
        if jobs >= MIN_JOBS_PER_CHUNK {
            for &len in &nonempty {
                assert!(
                    len >= MIN_JOBS_PER_CHUNK,
                    "chunk of {len} below the {MIN_JOBS_PER_CHUNK}-job floor (jobs={jobs}, weights={:?})",
                    planner.weights()
                );
            }
        } else if jobs > 0 {
            assert_eq!(
                nonempty,
                vec![jobs],
                "a sub-minimum batch is one tail chunk"
            );
        }
        // Monotone in weight: a strictly heavier connection never gets a
        // smaller chunk.
        let w = planner.weights();
        for i in 0..ranges.len() {
            for j in 0..ranges.len() {
                if w[i] > w[j] {
                    assert!(
                        ranges[i].1 - ranges[i].0 >= ranges[j].1 - ranges[j].0,
                        "weight {} got a smaller chunk than weight {} (jobs={jobs}, weights={w:?})",
                        w[i],
                        w[j]
                    );
                }
            }
        }
    }

    #[test]
    fn equal_weights_reproduce_the_count_balanced_split() {
        let planner = ChunkPlanner::count_balanced(3);
        // 30 jobs over 3 equal connections: 10 each.
        assert_eq!(planner.plan(30), vec![(0, 10), (10, 20), (20, 30)]);
        // 10 jobs fund only one minimum chunk; ties resolve to the first
        // connection, deterministically.
        assert_eq!(planner.plan(10), vec![(0, 10), (10, 10), (10, 10)]);
        // 31 jobs: the leftover job goes to exactly one connection.
        let sizes: Vec<usize> = planner.plan(31).iter().map(|&(lo, hi)| hi - lo).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 31);
        assert!(sizes.iter().all(|&s| s == 10 || s == 11));
    }

    #[test]
    fn empty_inputs_plan_trivially() {
        assert!(ChunkPlanner::new(&[]).plan(64).is_empty());
        assert_eq!(
            ChunkPlanner::count_balanced(2).plan(0),
            vec![(0, 0), (0, 0)]
        );
    }

    #[test]
    fn fast_endpoints_carry_more_of_the_batch() {
        // 10x the throughput => roughly 10/11ths of the jobs.
        let planner = ChunkPlanner::new(&[Some(10.0), Some(1.0)]);
        let ranges = planner.plan(110);
        assert_eq!(ranges[0], (0, 100));
        assert_eq!(ranges[1], (100, 110));
        // And in reverse connection order the big chunk moves with the
        // big weight.
        let planner = ChunkPlanner::new(&[Some(1.0), Some(10.0)]);
        let ranges = planner.plan(110);
        assert_eq!(ranges[0].1 - ranges[0].0, 10);
        assert_eq!(ranges[1].1 - ranges[1].0, 100);
    }

    #[test]
    fn unmeasured_connections_get_the_mean_measured_weight() {
        let planner = ChunkPlanner::new(&[Some(30.0), None, Some(10.0)]);
        assert_eq!(planner.weights(), &[30.0, 20.0, 10.0]);
        // Garbage measurements count as unmeasured, not as zero.
        let planner = ChunkPlanner::new(&[Some(f64::NAN), Some(-3.0), None]);
        assert_eq!(planner.weights(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn extreme_weight_ratios_still_respect_the_chunk_floor() {
        // A 1000x-slower endpoint's ideal share is under one job; the
        // repair pass must still hand it a minimum chunk, funded from the
        // fast endpoint.
        let planner = ChunkPlanner::new(&[Some(1000.0), Some(1.0)]);
        let ranges = planner.plan(64);
        assert_eq!(ranges[0], (0, 56));
        assert_eq!(ranges[1], (56, 64));
    }

    #[test]
    fn small_batches_stay_on_the_heaviest_connection() {
        let planner = ChunkPlanner::new(&[Some(1.0), Some(5.0), Some(2.0)]);
        // 12 jobs fund one chunk; it must land on the weight-5 connection.
        assert_eq!(planner.plan(12), vec![(0, 0), (0, 12), (12, 12)]);
        // 3 jobs are below the floor: the single tail chunk is allowed.
        assert_eq!(planner.plan(3), vec![(0, 0), (0, 3), (3, 3)]);
    }

    #[test]
    fn property_plans_partition_respect_floor_and_stay_monotone() {
        // Seeded random fleets: the three satellite properties hold on
        // every plan.
        for seed in 0..200u64 {
            let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15) + 1);
            let conns = 1 + rng.below(12) as usize;
            let weights: Vec<Option<f64>> = (0..conns)
                .map(|_| match rng.below(4) {
                    0 => None,
                    _ => Some(1.0 + rng.below(10_000) as f64 / 10.0),
                })
                .collect();
            let jobs = rng.below(600) as usize;
            assert_plan_invariants(&ChunkPlanner::new(&weights), jobs);
            assert_plan_invariants(&ChunkPlanner::count_balanced(conns), jobs);
        }
    }

    #[test]
    fn count_balanced_sizes_differ_by_at_most_one() {
        for seed in 0..50u64 {
            let mut rng = Lcg(seed + 7);
            let conns = 1 + rng.below(9) as usize;
            let jobs = (MIN_JOBS_PER_CHUNK * conns) as u64 + rng.below(500);
            let sizes: Vec<usize> = ChunkPlanner::count_balanced(conns)
                .plan(jobs as usize)
                .iter()
                .map(|&(lo, hi)| hi - lo)
                .collect();
            let used: Vec<usize> = sizes.into_iter().filter(|&s| s > 0).collect();
            let min = used.iter().min().unwrap();
            let max = used.iter().max().unwrap();
            assert!(max - min <= 1, "count-balanced chunks must stay even");
        }
    }
}
