//! The thread-pool backend: one batch spread over scoped worker threads
//! with deterministic input-order reduction.
//!
//! This generalizes what used to be `EaConfig::parallel_batch`: any stage
//! that scores through the evaluator now parallelizes when this backend is
//! selected, not just the EA generation loop. Chunks are joined in
//! submission order, so the reduction is deterministic regardless of thread
//! scheduling and results are bit-identical to the inline backend.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::eval::{CandidateScore, EvalCore};

use super::{pool_width, BackendStats, EvalBackend, EvalJob, StopCheck};

/// Scores batches across scoped worker threads.
#[derive(Debug)]
pub struct ThreadPoolBackend {
    workers: usize,
    batches: AtomicUsize,
    jobs: AtomicUsize,
}

impl ThreadPoolBackend {
    /// A pool of `workers` threads per batch; `0` sizes the pool to the
    /// available parallelism. Threads are scoped per batch (no idle pool
    /// between batches), so construction is free.
    pub fn new(workers: usize) -> Self {
        Self {
            workers,
            batches: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
        }
    }
}

impl EvalBackend for ThreadPoolBackend {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn score_batch(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        stop: StopCheck<'_>,
    ) -> Vec<CandidateScore> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(jobs.len(), Ordering::Relaxed);
        let score_chunk = |chunk_jobs: &[EvalJob<'_>]| {
            chunk_jobs
                .iter()
                .map(|job| {
                    if stop() {
                        CandidateScore::INFEASIBLE
                    } else {
                        core.score(job.df, job.point, job.gene)
                    }
                })
                .collect::<Vec<_>>()
        };
        let workers = pool_width(self.workers, jobs.len());
        if workers < 2 || jobs.len() < 2 {
            return score_chunk(jobs);
        }
        let chunk = jobs.len().div_ceil(workers);
        let mut out = Vec::with_capacity(jobs.len());
        let score_chunk = &score_chunk;
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .chunks(chunk)
                .map(|chunk_jobs| s.spawn(move || score_chunk(chunk_jobs)))
                .collect();
            // Chunks joined in submission order: the reduction is
            // deterministic regardless of thread scheduling.
            for handle in handles {
                out.extend(handle.join().expect("batch scorer panicked"));
            }
        });
        out
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            ..BackendStats::default()
        }
    }
}
