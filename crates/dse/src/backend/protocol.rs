//! The versioned JSON-lines protocol between the [`SubprocessBackend`]
//! (client) and `pimsyn --worker` child processes (server).
//!
//! Every message is one JSON object per line. The session opens with an
//! [`WorkerInit`] fixing everything that is constant for a synthesis run
//! (model, hardware parameters, power budget, macro mode, objective); the
//! worker answers with a `ready` line, then serves [`ScoreRequest`]s with
//! [`ScoreResponse`]s until its stdin closes. Floats travel as
//! `f64::to_bits` hex strings, so a worker's scores are *bit-identical* to
//! inline scoring — JSON number formatting never enters the loop.
//!
//! ```text
//! > {"type":"init","pimsyn_worker":1,"model":"{...}","hw":"{...}",
//!    "power":"4022000000000000","macro_mode":"specialized","objective":"eff"}
//! < {"type":"ready","pimsyn_worker":1}
//! > {"type":"score","id":0,"ratio":"3fd3333333333333","xb":128,"cell":2,
//!    "dac":1,"wt_dup":[1,1],"gene":[1,1001]}
//! < {"type":"score","id":0,"fitness":"3ff8a3d70a3d70a4","feasible":true}
//! ```
//!
//! Version negotiation is strict: an init whose `pimsyn_worker` field does
//! not equal [`PROTOCOL_VERSION`] is rejected, and the backend falls back to
//! inline scoring rather than risking a silent mismatch.
//!
//! [`SubprocessBackend`]: super::SubprocessBackend

use pimsyn_arch::MacroMode;
use pimsyn_model::json::JsonValue;

use crate::ea::Objective;
use crate::eval::CandidateScore;

/// Wire-format version; bumped on any incompatible message change.
pub const PROTOCOL_VERSION: u32 = 1;

fn hex_bits(v: f64) -> JsonValue {
    JsonValue::String(super::u64_hex(v.to_bits()))
}

fn parse_bits(v: Option<&JsonValue>, key: &str) -> Result<f64, String> {
    let s = v
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing bit-pattern field `{key}`"))?;
    super::parse_u64_hex(s)
        .map(f64::from_bits)
        .ok_or_else(|| format!("`{key}` is not a hex bit pattern"))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn usize_array(v: &JsonValue, key: &str) -> Result<Vec<usize>, String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing array field `{key}`"))?
        .iter()
        .map(|x| {
            x.as_usize()
                .ok_or_else(|| format!("`{key}` entries must be non-negative integers"))
        })
        .collect()
}

/// Stable string tag of a [`MacroMode`].
pub fn macro_mode_tag(mode: MacroMode) -> &'static str {
    match mode {
        MacroMode::Specialized => "specialized",
        MacroMode::Identical => "identical",
    }
}

/// Parses a [`macro_mode_tag`] back.
///
/// # Errors
///
/// A message naming the unknown tag.
pub fn parse_macro_mode(s: &str) -> Result<MacroMode, String> {
    match s {
        "specialized" => Ok(MacroMode::Specialized),
        "identical" => Ok(MacroMode::Identical),
        other => Err(format!("unknown macro mode `{other}`")),
    }
}

/// Stable string tag of an [`Objective`].
pub fn objective_tag(objective: Objective) -> &'static str {
    match objective {
        Objective::PowerEfficiency => "eff",
        Objective::EnergyDelayProduct => "edp",
    }
}

/// Parses an [`objective_tag`] back.
///
/// # Errors
///
/// A message naming the unknown tag.
pub fn parse_objective(s: &str) -> Result<Objective, String> {
    match s {
        "eff" => Ok(Objective::PowerEfficiency),
        "edp" => Ok(Objective::EnergyDelayProduct),
        other => Err(format!("unknown objective `{other}`")),
    }
}

/// Session-opening message: everything constant across one synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerInit {
    /// The CNN in the ONNX-style JSON of `pimsyn_model::onnx` (lossless for
    /// the layer graph, which is all-integer).
    pub model_json: String,
    /// Hardware parameters in the *bit-exact* format of
    /// `pimsyn_arch::hardware_config::to_json_exact`.
    pub hw_json: String,
    /// Total power constraint, `f64::to_bits`.
    pub power_bits: u64,
    /// Identical vs specialized macros.
    pub macro_mode: MacroMode,
    /// What fitness maximizes.
    pub objective: Objective,
}

impl WorkerInit {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("init".into())),
            (
                "pimsyn_worker".into(),
                JsonValue::Number(PROTOCOL_VERSION as f64),
            ),
            ("model".into(), JsonValue::String(self.model_json.clone())),
            ("hw".into(), JsonValue::String(self.hw_json.clone())),
            (
                "power".into(),
                JsonValue::String(super::u64_hex(self.power_bits)),
            ),
            (
                "macro_mode".into(),
                JsonValue::String(macro_mode_tag(self.macro_mode).into()),
            ),
            (
                "objective".into(),
                JsonValue::String(objective_tag(self.objective).into()),
            ),
        ])
        .to_string()
    }

    fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let version = doc
            .get("pimsyn_worker")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| "missing `pimsyn_worker` version".to_string())?;
        if version != PROTOCOL_VERSION as usize {
            return Err(format!(
                "protocol version mismatch: peer speaks {version}, this build speaks {PROTOCOL_VERSION}"
            ));
        }
        let text = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        Ok(Self {
            model_json: text("model")?,
            hw_json: text("hw")?,
            power_bits: super::parse_u64_hex(&text("power")?)
                .ok_or_else(|| "`power` is not a hex bit pattern".to_string())?,
            macro_mode: parse_macro_mode(&text("macro_mode")?)?,
            objective: parse_objective(&text("objective")?)?,
        })
    }
}

/// One candidate to score, fully serialized (the worker recompiles the
/// dataflow from `(crossbar, dac, wt_dup)` — compilation is deterministic
/// and costs microseconds, and consecutive requests reuse the compiled
/// dataflow through a worker-side cache).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Request id, echoed in the response.
    pub id: u64,
    /// `RatioRram` as `f64::to_bits`.
    pub ratio_bits: u64,
    /// Crossbar rows/columns.
    pub xb_size: usize,
    /// ReRAM cell resolution in bits.
    pub cell_bits: u32,
    /// DAC resolution in bits.
    pub dac_bits: u32,
    /// Per-layer weight duplication (fixes the dataflow).
    pub wt_dup: Vec<usize>,
    /// The `MacAlloc` gene (`owner*1000 + n` encoding).
    pub gene: Vec<u32>,
}

impl ScoreRequest {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("score".into())),
            ("id".into(), JsonValue::Number(self.id as f64)),
            (
                "ratio".into(),
                JsonValue::String(super::u64_hex(self.ratio_bits)),
            ),
            ("xb".into(), JsonValue::Number(self.xb_size as f64)),
            ("cell".into(), JsonValue::Number(self.cell_bits as f64)),
            ("dac".into(), JsonValue::Number(self.dac_bits as f64)),
            (
                "wt_dup".into(),
                JsonValue::Array(
                    self.wt_dup
                        .iter()
                        .map(|&d| JsonValue::Number(d as f64))
                        .collect(),
                ),
            ),
            (
                "gene".into(),
                JsonValue::Array(
                    self.gene
                        .iter()
                        .map(|&g| JsonValue::Number(g as f64))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let ratio = doc
            .get("ratio")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing `ratio`".to_string())?;
        Ok(Self {
            id: field_usize(doc, "id")? as u64,
            ratio_bits: super::parse_u64_hex(ratio)
                .ok_or_else(|| "`ratio` is not a hex bit pattern".to_string())?,
            xb_size: field_usize(doc, "xb")?,
            cell_bits: field_usize(doc, "cell")? as u32,
            dac_bits: field_usize(doc, "dac")? as u32,
            wt_dup: usize_array(doc, "wt_dup")?,
            gene: usize_array(doc, "gene")?
                .into_iter()
                .map(|g| g as u32)
                .collect(),
        })
    }
}

/// Any message a worker may receive.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerRequest {
    /// Session setup (must be the first message).
    Init(WorkerInit),
    /// A candidate to score.
    Score(ScoreRequest),
}

impl WorkerRequest {
    /// Parses one received line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed JSON, unknown message types or
    /// missing fields.
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("init") => WorkerInit::from_json(&doc).map(WorkerRequest::Init),
            Some("score") => ScoreRequest::from_json(&doc).map(WorkerRequest::Score),
            Some(other) => Err(format!("unknown request type `{other}`")),
            None => Err("missing request `type`".to_string()),
        }
    }
}

/// The worker's `ready` acknowledgment after a successful init.
pub fn ready_line() -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("ready".into())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ])
    .to_string()
}

/// Checks a received `ready` line (type and version).
///
/// # Errors
///
/// A human-readable message when the line is not a matching `ready`.
pub fn parse_ready(line: &str) -> Result<(), String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed ready line: {e}"))?;
    if doc.get("type").and_then(JsonValue::as_str) != Some("ready") {
        return Err(format!("expected a ready line, got: {line}"));
    }
    match doc.get("pimsyn_worker").and_then(JsonValue::as_usize) {
        Some(v) if v == PROTOCOL_VERSION as usize => Ok(()),
        Some(v) => Err(format!(
            "protocol version mismatch: worker speaks {v}, this build speaks {PROTOCOL_VERSION}"
        )),
        None => Err("ready line lacks a version".to_string()),
    }
}

/// An error report from the worker (also usable before exiting).
pub fn error_line(detail: &str) -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("error".into())),
        ("detail".into(), JsonValue::String(detail.to_string())),
    ])
    .to_string()
}

/// One scored candidate, keyed back to its request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreResponse {
    /// The request id this answers.
    pub id: u64,
    /// The score (fitness bit pattern survives the wire exactly).
    pub score: CandidateScore,
}

impl ScoreResponse {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("score".into())),
            ("id".into(), JsonValue::Number(self.id as f64)),
            ("fitness".into(), hex_bits(self.score.fitness)),
            ("feasible".into(), JsonValue::Bool(self.score.feasible)),
        ])
        .to_string()
    }

    /// Parses one received line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed or non-`score` lines (an
    /// `error` line's detail is surfaced as the message).
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(line).map_err(|e| format!("malformed response: {e}"))?;
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("score") => {}
            Some("error") => {
                let detail = doc
                    .get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unspecified");
                return Err(format!("worker reported an error: {detail}"));
            }
            _ => return Err(format!("expected a score line, got: {line}")),
        }
        Ok(Self {
            id: field_usize(&doc, "id")? as u64,
            score: CandidateScore {
                fitness: parse_bits(doc.get("fitness"), "fitness")?,
                feasible: doc
                    .get("feasible")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| "missing `feasible`".to_string())?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_round_trips() {
        let init = WorkerInit {
            model_json: r#"{"name":"m"}"#.to_string(),
            hw_json: r#"{"clock":"0"}"#.to_string(),
            power_bits: 9.0f64.to_bits(),
            macro_mode: MacroMode::Identical,
            objective: Objective::EnergyDelayProduct,
        };
        match WorkerRequest::parse(&init.to_line()).unwrap() {
            WorkerRequest::Init(back) => assert_eq!(back, init),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn score_request_round_trips() {
        let req = ScoreRequest {
            id: 42,
            ratio_bits: 0.3f64.to_bits(),
            xb_size: 128,
            cell_bits: 2,
            dac_bits: 1,
            wt_dup: vec![1, 2, 3],
            gene: vec![1, 1001, 2002],
        };
        match WorkerRequest::parse(&req.to_line()).unwrap() {
            WorkerRequest::Score(back) => assert_eq!(back, req),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn score_response_round_trips_awkward_floats() {
        // Bit patterns JSON number formatting could disturb.
        for fitness in [0.1 + 0.2, 1.0000000000000002, f64::MIN_POSITIVE, 0.0] {
            let resp = ScoreResponse {
                id: 7,
                score: CandidateScore {
                    fitness,
                    feasible: true,
                },
            };
            let back = ScoreResponse::parse(&resp.to_line()).unwrap();
            assert_eq!(back.score.fitness.to_bits(), fitness.to_bits());
            assert_eq!(back.id, 7);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let line = r#"{"type":"init","pimsyn_worker":999,"model":"{}","hw":"{}","power":"0","macro_mode":"specialized","objective":"eff"}"#;
        let err = WorkerRequest::parse(line).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        assert!(parse_ready(r#"{"type":"ready","pimsyn_worker":2}"#).is_err());
        assert!(parse_ready(&ready_line()).is_ok());
    }

    #[test]
    fn error_lines_surface_their_detail() {
        let err = ScoreResponse::parse(&error_line("boom")).unwrap_err();
        assert!(err.contains("boom"), "{err}");
        assert!(WorkerRequest::parse("not json").is_err());
        assert!(WorkerRequest::parse(r#"{"type":"dance"}"#).is_err());
    }
}
