//! The versioned JSON-lines protocol between the [`SubprocessBackend`]
//! (client) and `pimsyn --worker` child processes (server).
//!
//! Every message is one JSON object per line. The session opens with an
//! [`WorkerInit`] fixing everything that is constant for a synthesis run
//! (model, hardware parameters, power budget, macro mode, objective); the
//! worker answers with a `ready` line, then serves [`ScoreRequest`]s with
//! [`ScoreResponse`]s until its stdin closes. Floats travel as
//! `f64::to_bits` hex strings, so a worker's scores are *bit-identical* to
//! inline scoring — JSON number formatting never enters the loop.
//!
//! ```text
//! > {"type":"init","pimsyn_worker":1,"model":"{...}","hw":"{...}",
//!    "power":"4022000000000000","macro_mode":"specialized","objective":"eff"}
//! < {"type":"ready","pimsyn_worker":1}
//! > {"type":"score","id":0,"ratio":"3fd3333333333333","xb":128,"cell":2,
//!    "dac":1,"wt_dup":[1,1],"gene":[1,1001]}
//! < {"type":"score","id":0,"fitness":"3ff8a3d70a3d70a4","feasible":true}
//! ```
//!
//! Version negotiation is strict about the *base* version: an init whose
//! `pimsyn_worker` field does not equal [`PROTOCOL_VERSION`] is rejected,
//! and the backend falls back to inline scoring rather than risking a
//! silent mismatch. *Upgrades* beyond the base version are negotiated
//! downward through an optional `max` field (ignored by v1 peers, which
//! tolerate unknown fields on init/ready): both sides advertise the
//! highest version they speak, and the session runs at the minimum of the
//! two. Version 2 replaces the per-candidate JSON score lines with
//! length-prefixed binary frames carrying whole batches — see
//! [`write_frame`]/[`read_frame`] and the `encode_*`/`decode_*` codecs.
//! Everything else (init/ready, the TCP hello/welcome handshake) stays
//! JSON lines in every version.
//!
//! [`SubprocessBackend`]: super::SubprocessBackend

use std::io::{self, BufRead, Write};

use pimsyn_arch::MacroMode;
use pimsyn_model::json::JsonValue;

use crate::ea::Objective;
use crate::eval::CandidateScore;

/// Base wire-format version; bumped on any incompatible message change.
/// Every peer must speak at least this.
pub const PROTOCOL_VERSION: u32 = 1;

/// Highest wire-format version this build speaks. Sessions run at the
/// minimum of both peers' maxima (a peer that advertises nothing is a v1
/// peer).
pub const PROTOCOL_VERSION_MAX: u32 = 2;

fn hex_bits(v: f64) -> JsonValue {
    JsonValue::String(super::u64_hex(v.to_bits()))
}

fn parse_bits(v: Option<&JsonValue>, key: &str) -> Result<f64, String> {
    let s = v
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing bit-pattern field `{key}`"))?;
    super::parse_u64_hex(s)
        .map(f64::from_bits)
        .ok_or_else(|| format!("`{key}` is not a hex bit pattern"))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn usize_array(v: &JsonValue, key: &str) -> Result<Vec<usize>, String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing array field `{key}`"))?
        .iter()
        .map(|x| {
            x.as_usize()
                .ok_or_else(|| format!("`{key}` entries must be non-negative integers"))
        })
        .collect()
}

/// Stable string tag of a [`MacroMode`].
pub fn macro_mode_tag(mode: MacroMode) -> &'static str {
    match mode {
        MacroMode::Specialized => "specialized",
        MacroMode::Identical => "identical",
    }
}

/// Parses a [`macro_mode_tag`] back.
///
/// # Errors
///
/// A message naming the unknown tag.
pub fn parse_macro_mode(s: &str) -> Result<MacroMode, String> {
    match s {
        "specialized" => Ok(MacroMode::Specialized),
        "identical" => Ok(MacroMode::Identical),
        other => Err(format!("unknown macro mode `{other}`")),
    }
}

/// Stable string tag of an [`Objective`].
pub fn objective_tag(objective: Objective) -> &'static str {
    match objective {
        Objective::PowerEfficiency => "eff",
        Objective::EnergyDelayProduct => "edp",
    }
}

/// Parses an [`objective_tag`] back.
///
/// # Errors
///
/// A message naming the unknown tag.
pub fn parse_objective(s: &str) -> Result<Objective, String> {
    match s {
        "eff" => Ok(Objective::PowerEfficiency),
        "edp" => Ok(Objective::EnergyDelayProduct),
        other => Err(format!("unknown objective `{other}`")),
    }
}

/// Session-opening message: everything constant across one synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerInit {
    /// The CNN in the ONNX-style JSON of `pimsyn_model::onnx` (lossless for
    /// the layer graph, which is all-integer).
    pub model_json: String,
    /// Hardware parameters in the *bit-exact* format of
    /// `pimsyn_arch::hardware_config::to_json_exact`.
    pub hw_json: String,
    /// Total power constraint, `f64::to_bits`.
    pub power_bits: u64,
    /// Identical vs specialized macros.
    pub macro_mode: MacroMode,
    /// What fitness maximizes.
    pub objective: Objective,
}

impl WorkerInit {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("init".into())),
            (
                "pimsyn_worker".into(),
                JsonValue::Number(PROTOCOL_VERSION as f64),
            ),
            ("model".into(), JsonValue::String(self.model_json.clone())),
            ("hw".into(), JsonValue::String(self.hw_json.clone())),
            (
                "power".into(),
                JsonValue::String(super::u64_hex(self.power_bits)),
            ),
            (
                "macro_mode".into(),
                JsonValue::String(macro_mode_tag(self.macro_mode).into()),
            ),
            (
                "objective".into(),
                JsonValue::String(objective_tag(self.objective).into()),
            ),
            // Version negotiation: advertise the highest version we speak.
            // v1 peers ignore unknown fields and answer a plain `ready`,
            // which negotiates the session down to v1.
            ("max".into(), JsonValue::Number(PROTOCOL_VERSION_MAX as f64)),
        ])
        .to_string()
    }

    fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let version = doc
            .get("pimsyn_worker")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| "missing `pimsyn_worker` version".to_string())?;
        if version != PROTOCOL_VERSION as usize {
            return Err(format!(
                "protocol version mismatch: peer speaks {version}, this build speaks {PROTOCOL_VERSION}"
            ));
        }
        let text = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        Ok(Self {
            model_json: text("model")?,
            hw_json: text("hw")?,
            power_bits: super::parse_u64_hex(&text("power")?)
                .ok_or_else(|| "`power` is not a hex bit pattern".to_string())?,
            macro_mode: parse_macro_mode(&text("macro_mode")?)?,
            objective: parse_objective(&text("objective")?)?,
        })
    }
}

/// One candidate to score, fully serialized (the worker recompiles the
/// dataflow from `(crossbar, dac, wt_dup)` — compilation is deterministic
/// and costs microseconds, and consecutive requests reuse the compiled
/// dataflow through a worker-side cache).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Request id, echoed in the response.
    pub id: u64,
    /// `RatioRram` as `f64::to_bits`.
    pub ratio_bits: u64,
    /// Crossbar rows/columns.
    pub xb_size: usize,
    /// ReRAM cell resolution in bits.
    pub cell_bits: u32,
    /// DAC resolution in bits.
    pub dac_bits: u32,
    /// Per-layer weight duplication (fixes the dataflow).
    pub wt_dup: Vec<usize>,
    /// The `MacAlloc` gene (`owner*1000 + n` encoding).
    pub gene: Vec<u32>,
}

impl ScoreRequest {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("score".into())),
            ("id".into(), JsonValue::Number(self.id as f64)),
            (
                "ratio".into(),
                JsonValue::String(super::u64_hex(self.ratio_bits)),
            ),
            ("xb".into(), JsonValue::Number(self.xb_size as f64)),
            ("cell".into(), JsonValue::Number(self.cell_bits as f64)),
            ("dac".into(), JsonValue::Number(self.dac_bits as f64)),
            (
                "wt_dup".into(),
                JsonValue::Array(
                    self.wt_dup
                        .iter()
                        .map(|&d| JsonValue::Number(d as f64))
                        .collect(),
                ),
            ),
            (
                "gene".into(),
                JsonValue::Array(
                    self.gene
                        .iter()
                        .map(|&g| JsonValue::Number(g as f64))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let ratio = doc
            .get("ratio")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing `ratio`".to_string())?;
        Ok(Self {
            id: field_usize(doc, "id")? as u64,
            ratio_bits: super::parse_u64_hex(ratio)
                .ok_or_else(|| "`ratio` is not a hex bit pattern".to_string())?,
            xb_size: field_usize(doc, "xb")?,
            cell_bits: field_usize(doc, "cell")? as u32,
            dac_bits: field_usize(doc, "dac")? as u32,
            wt_dup: usize_array(doc, "wt_dup")?,
            gene: usize_array(doc, "gene")?
                .into_iter()
                .map(|g| g as u32)
                .collect(),
        })
    }
}

/// Any message a worker may receive.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerRequest {
    /// Session setup (must be the first message).
    Init(WorkerInit),
    /// A candidate to score.
    Score(ScoreRequest),
}

impl WorkerRequest {
    /// Parses one received line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed JSON, unknown message types or
    /// missing fields.
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("init") => WorkerInit::from_json(&doc).map(WorkerRequest::Init),
            Some("score") => ScoreRequest::from_json(&doc).map(WorkerRequest::Score),
            Some(other) => Err(format!("unknown request type `{other}`")),
            None => Err("missing request `type`".to_string()),
        }
    }
}

/// The worker's `ready` acknowledgment after a successful init. A plain
/// ready (no `max` field) is what a v1 worker sends; it negotiates the
/// session to v1.
pub fn ready_line() -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("ready".into())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ])
    .to_string()
}

/// A `ready` acknowledgment that also advertises the session version the
/// worker settled on (the minimum of both peers' maxima).
pub fn ready_line_with_max(max: u32) -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("ready".into())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
        ("max".into(), JsonValue::Number(max as f64)),
    ])
    .to_string()
}

/// Checks a received `ready` line (type and version).
///
/// # Errors
///
/// A human-readable message when the line is not a matching `ready`.
pub fn parse_ready(line: &str) -> Result<(), String> {
    parse_ready_version(line).map(|_| ())
}

/// Checks a received `ready` line and returns the negotiated session
/// version: the minimum of this build's [`PROTOCOL_VERSION_MAX`] and what
/// the worker advertised (a ready without `max` is a v1 worker).
///
/// # Errors
///
/// A human-readable message when the line is not a matching `ready`.
pub fn parse_ready_version(line: &str) -> Result<u32, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed ready line: {e}"))?;
    if doc.get("type").and_then(JsonValue::as_str) != Some("ready") {
        return Err(format!("expected a ready line, got: {line}"));
    }
    match doc.get("pimsyn_worker").and_then(JsonValue::as_usize) {
        Some(v) if v == PROTOCOL_VERSION as usize => {}
        Some(v) => {
            return Err(format!(
                "protocol version mismatch: worker speaks {v}, this build speaks {PROTOCOL_VERSION}"
            ))
        }
        None => return Err("ready line lacks a version".to_string()),
    }
    let peer_max = doc
        .get("max")
        .and_then(JsonValue::as_usize)
        .unwrap_or(PROTOCOL_VERSION as usize) as u32;
    Ok(peer_max.clamp(PROTOCOL_VERSION, PROTOCOL_VERSION_MAX))
}

/// The highest protocol version a received init/ready/hello line
/// advertises: its `max` field, or [`PROTOCOL_VERSION`] when absent (a v1
/// peer). Tolerant by design — never fails, so it can be read off any
/// already-validated line.
pub fn peer_max_version(line: &str) -> u32 {
    JsonValue::parse(line)
        .ok()
        .and_then(|doc| doc.get("max").and_then(JsonValue::as_usize))
        .map(|v| (v as u32).max(PROTOCOL_VERSION))
        .unwrap_or(PROTOCOL_VERSION)
}

// ---------------------------------------------------------------------------
// Protocol v2: length-prefixed binary frames.
//
// A v2 session still opens with the JSON init/ready lines above; only the
// score exchange switches to binary frames. Frame layout:
//
//     [ kind: u8 ][ len: u32 LE ][ payload: len bytes ]
//
// Every frame kind is < 0x20, so the first byte of a frame can never be
// `{` (0x7b) — a server reading a mixed stream peeks one byte to tell a
// JSON line (session re-init) from a binary frame. All integers are
// little-endian; floats travel as their IEEE-754 bit patterns, so v2
// scores are bit-identical to v1 and inline scores.
// ---------------------------------------------------------------------------

/// Frame kind: a whole batch of candidates to score (client → worker).
pub const FRAME_SCORE_BATCH: u8 = 0x01;
/// Frame kind: the scores for a whole batch, in request order (worker →
/// client).
pub const FRAME_SCORE_REPLY: u8 = 0x02;
/// Frame kind: a UTF-8 error detail (worker → client, terminal for the
/// batch).
pub const FRAME_ERROR: u8 = 0x03;

/// Upper bound on a frame payload; a length beyond this is treated as a
/// corrupt stream rather than an allocation request.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Writes one v2 frame. The caller flushes (batches are one frame, so one
/// flush per batch).
///
/// # Errors
///
/// Any transport write error.
pub fn write_frame(writer: &mut dyn Write, kind: u8, payload: &[u8]) -> io::Result<()> {
    let mut head = [0u8; 5];
    head[0] = kind;
    head[1..5].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    writer.write_all(&head)?;
    writer.write_all(payload)
}

/// Reads one v2 frame, returning its kind and payload.
///
/// # Errors
///
/// Any transport read error; a clean EOF before the header surfaces as
/// [`io::ErrorKind::UnexpectedEof`]; an over-long length as
/// [`io::ErrorKind::InvalidData`].
pub fn read_frame(reader: &mut dyn BufRead) -> io::Result<(u8, Vec<u8>)> {
    let mut head = [0u8; 5];
    reader.read_exact(&mut head)?;
    let len = u32::from_le_bytes([head[1], head[2], head[3], head[4]]);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN} cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    Ok((head[0], payload))
}

/// One candidate inside a v2 [`FRAME_SCORE_BATCH`] payload: the fields of
/// a v1 [`ScoreRequest`] minus the id, which is implicit (`id_base +
/// index`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchItem {
    /// `RatioRram` as `f64::to_bits`.
    pub ratio_bits: u64,
    /// Crossbar rows/columns.
    pub xb_size: u32,
    /// ReRAM cell resolution in bits.
    pub cell_bits: u32,
    /// DAC resolution in bits.
    pub dac_bits: u32,
    /// Per-layer weight duplication (fixes the dataflow).
    pub wt_dup: Vec<u32>,
    /// The `MacAlloc` gene (`owner*1000 + n` encoding).
    pub gene: Vec<u32>,
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a frame payload.
struct PayloadCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| "truncated frame payload".to_string())?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn u32_array(&mut self) -> Result<Vec<u32>, String> {
        let len = self.u32()? as usize;
        // Bounds-check before allocating: 4 bytes per element must fit in
        // what remains of the payload.
        if len > (self.buf.len() - self.pos) / 4 {
            return Err("truncated frame payload".to_string());
        }
        (0..len).map(|_| self.u32()).collect()
    }

    fn finish(self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "frame payload has {} trailing bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

/// Encodes a [`FRAME_SCORE_BATCH`] payload:
/// `id_base: u64, count: u32`, then per candidate
/// `ratio_bits: u64, xb: u32, cell: u32, dac: u32,
///  wt_dup_len: u32, wt_dup: [u32], gene_len: u32, gene: [u32]`.
pub fn encode_score_batch(id_base: u64, items: &[BatchItem]) -> Vec<u8> {
    let per_item: usize = items
        .iter()
        .map(|i| 8 + 3 * 4 + 4 + 4 * i.wt_dup.len() + 4 + 4 * i.gene.len())
        .sum();
    let mut buf = Vec::with_capacity(12 + per_item);
    push_u64(&mut buf, id_base);
    push_u32(&mut buf, items.len() as u32);
    for item in items {
        push_u64(&mut buf, item.ratio_bits);
        push_u32(&mut buf, item.xb_size);
        push_u32(&mut buf, item.cell_bits);
        push_u32(&mut buf, item.dac_bits);
        push_u32(&mut buf, item.wt_dup.len() as u32);
        for &d in &item.wt_dup {
            push_u32(&mut buf, d);
        }
        push_u32(&mut buf, item.gene.len() as u32);
        for &g in &item.gene {
            push_u32(&mut buf, g);
        }
    }
    buf
}

/// Decodes a [`FRAME_SCORE_BATCH`] payload back into `(id_base, items)`.
///
/// # Errors
///
/// A human-readable message for truncated or over-long payloads.
pub fn decode_score_batch(payload: &[u8]) -> Result<(u64, Vec<BatchItem>), String> {
    let mut cur = PayloadCursor::new(payload);
    let id_base = cur.u64()?;
    let count = cur.u32()? as usize;
    let mut items = Vec::new();
    for _ in 0..count {
        items.push(BatchItem {
            ratio_bits: cur.u64()?,
            xb_size: cur.u32()?,
            cell_bits: cur.u32()?,
            dac_bits: cur.u32()?,
            wt_dup: cur.u32_array()?,
            gene: cur.u32_array()?,
        });
    }
    cur.finish()?;
    Ok((id_base, items))
}

/// Encodes a [`FRAME_SCORE_REPLY`] payload:
/// `id_base: u64, count: u32`, then per candidate — in request order —
/// `fitness_bits: u64, feasible: u8`.
pub fn encode_score_reply(id_base: u64, scores: &[CandidateScore]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(12 + 9 * scores.len());
    push_u64(&mut buf, id_base);
    push_u32(&mut buf, scores.len() as u32);
    for score in scores {
        push_u64(&mut buf, score.fitness.to_bits());
        buf.push(score.feasible as u8);
    }
    buf
}

/// Decodes a [`FRAME_SCORE_REPLY`] payload back into `(id_base, scores)`.
///
/// # Errors
///
/// A human-readable message for truncated/over-long payloads or a
/// non-boolean feasible byte.
pub fn decode_score_reply(payload: &[u8]) -> Result<(u64, Vec<CandidateScore>), String> {
    let mut cur = PayloadCursor::new(payload);
    let id_base = cur.u64()?;
    let count = cur.u32()? as usize;
    if count > payload.len() / 9 {
        return Err("truncated frame payload".to_string());
    }
    let mut scores = Vec::with_capacity(count);
    for _ in 0..count {
        let fitness = f64::from_bits(cur.u64()?);
        let feasible = match cur.u8()? {
            0 => false,
            1 => true,
            other => return Err(format!("feasible byte must be 0 or 1, got {other}")),
        };
        scores.push(CandidateScore { fitness, feasible });
    }
    cur.finish()?;
    Ok((id_base, scores))
}

/// Decodes a [`FRAME_ERROR`] payload (UTF-8 detail, lossily).
pub fn decode_error_frame(payload: &[u8]) -> String {
    String::from_utf8_lossy(payload).into_owned()
}

/// The transport-handshake frames of the *TCP* flavor of this protocol.
///
/// Over stdio (the [`SubprocessBackend`](super::SubprocessBackend)) the two
/// endpoints trust each other by construction — the parent spawned the
/// child. Over TCP (`pimsyn worker-serve` ↔
/// [`RemoteBackend`](super::RemoteBackend)) the dialing side must first
/// prove it speaks the same protocol version and, when the daemon was
/// started with an auth token, that it knows the shared secret. One
/// handshake exchange opens each connection, *before* the stock
/// init/ready/score session:
///
/// ```text
/// > {"type":"hello","pimsyn_worker":1}                  (or +"token":"…")
/// < {"type":"welcome","pimsyn_worker":1,"slots":4}
/// ... stock worker session (init / ready / score) ...
/// ```
///
/// A rejected handshake — version mismatch, bad or missing token, all
/// slots busy — is answered with an [`error_line`] and the connection is
/// closed; the dialing backend degrades to inline scoring. A `stop` frame
/// in place of `hello` asks the daemon to shut down (same token rule),
/// acknowledged by a `bye` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpHandshake {
    /// Open a worker session on this connection.
    Hello {
        /// Shared secret; must match the daemon's token when it has one.
        token: Option<String>,
    },
    /// Ask the daemon to stop accepting connections and exit.
    Stop {
        /// Shared secret; same rule as for `hello`.
        token: Option<String>,
    },
}

fn handshake_line(kind: &str, token: Option<&str>) -> String {
    let mut fields = vec![
        ("type".to_string(), JsonValue::String(kind.to_string())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ];
    if let Some(token) = token {
        fields.push(("token".into(), JsonValue::String(token.to_string())));
    }
    JsonValue::Object(fields).to_string()
}

/// The connection-opening `hello` frame of the TCP transport.
pub fn hello_line(token: Option<&str>) -> String {
    handshake_line("hello", token)
}

/// The daemon-shutdown `stop` frame of the TCP transport.
pub fn stop_line(token: Option<&str>) -> String {
    handshake_line("stop", token)
}

/// Parses the first line of a TCP worker connection, enforcing the
/// protocol version.
///
/// # Errors
///
/// A human-readable message (suitable for an [`error_line`] reply) for
/// malformed JSON, unknown frame types, or a version mismatch.
pub fn parse_handshake(line: &str) -> Result<TcpHandshake, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed handshake: {e}"))?;
    let kind = match doc.get("type").and_then(JsonValue::as_str) {
        Some(kind @ ("hello" | "stop")) => kind,
        Some(other) => return Err(format!("expected a hello or stop handshake, got `{other}`")),
        None => return Err("missing handshake `type`".to_string()),
    };
    match doc.get("pimsyn_worker").and_then(JsonValue::as_usize) {
        Some(v) if v == PROTOCOL_VERSION as usize => {}
        Some(v) => {
            return Err(format!(
                "protocol version mismatch: peer speaks {v}, this build speaks {PROTOCOL_VERSION}"
            ))
        }
        None => return Err("handshake lacks a `pimsyn_worker` version".to_string()),
    }
    let token = doc
        .get("token")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    Ok(match kind {
        "hello" => TcpHandshake::Hello { token },
        _ => TcpHandshake::Stop { token },
    })
}

/// The daemon's `welcome` acknowledgment of an accepted `hello`,
/// advertising how many sessions remain available to the dialing peer at
/// handshake time (including the one just opened) — a shared daemon
/// throttles each client to what actually remains.
pub fn welcome_line(slots: usize) -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("welcome".into())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
        ("slots".into(), JsonValue::Number(slots as f64)),
    ])
    .to_string()
}

/// Checks a received `welcome` line and returns the advertised slot count.
///
/// # Errors
///
/// A human-readable message for malformed or mismatched lines; an `error`
/// frame's detail (e.g. an authentication failure) is surfaced as the
/// message.
pub fn parse_welcome(line: &str) -> Result<usize, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed welcome line: {e}"))?;
    match doc.get("type").and_then(JsonValue::as_str) {
        Some("welcome") => {}
        Some("error") => {
            let detail = doc
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified");
            return Err(format!("worker daemon rejected the connection: {detail}"));
        }
        _ => return Err(format!("expected a welcome line, got: {line}")),
    }
    match doc.get("pimsyn_worker").and_then(JsonValue::as_usize) {
        Some(v) if v == PROTOCOL_VERSION as usize => {}
        Some(v) => {
            return Err(format!(
                "protocol version mismatch: daemon speaks {v}, this build speaks {PROTOCOL_VERSION}"
            ))
        }
        None => return Err("welcome line lacks a version".to_string()),
    }
    Ok(field_usize(&doc, "slots")?.max(1))
}

/// The daemon's acknowledgment of a `stop` frame, sent just before it
/// exits.
pub fn bye_line() -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("bye".into())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ])
    .to_string()
}

/// Checks a received `bye` acknowledgment.
///
/// # Errors
///
/// A human-readable message for anything that is not a `bye` frame (an
/// `error` frame's detail is surfaced as the message).
pub fn parse_bye(line: &str) -> Result<(), String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed bye line: {e}"))?;
    match doc.get("type").and_then(JsonValue::as_str) {
        Some("bye") => Ok(()),
        Some("error") => {
            let detail = doc
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified");
            Err(format!("worker daemon refused to stop: {detail}"))
        }
        _ => Err(format!("expected a bye line, got: {line}")),
    }
}

/// The normative prefix of the `error` detail a worker daemon answers a
/// `hello` with when every session slot is taken. Dialing backends
/// classify this as a *polite decline* — the daemon is healthy, just
/// fully subscribed — and neither warn nor back off; any other `error` is
/// a real failure. Shared between the daemon reply and the classifier so
/// a rewording cannot silently break the classification.
pub const NO_FREE_SLOTS: &str = "no free worker slots";

/// An error report from the worker (also usable before exiting).
pub fn error_line(detail: &str) -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("error".into())),
        ("detail".into(), JsonValue::String(detail.to_string())),
    ])
    .to_string()
}

/// One scored candidate, keyed back to its request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreResponse {
    /// The request id this answers.
    pub id: u64,
    /// The score (fitness bit pattern survives the wire exactly).
    pub score: CandidateScore,
}

impl ScoreResponse {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("score".into())),
            ("id".into(), JsonValue::Number(self.id as f64)),
            ("fitness".into(), hex_bits(self.score.fitness)),
            ("feasible".into(), JsonValue::Bool(self.score.feasible)),
        ])
        .to_string()
    }

    /// Parses one received line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed or non-`score` lines (an
    /// `error` line's detail is surfaced as the message).
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(line).map_err(|e| format!("malformed response: {e}"))?;
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("score") => {}
            Some("error") => {
                let detail = doc
                    .get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unspecified");
                return Err(format!("worker reported an error: {detail}"));
            }
            _ => return Err(format!("expected a score line, got: {line}")),
        }
        Ok(Self {
            id: field_usize(&doc, "id")? as u64,
            score: CandidateScore {
                fitness: parse_bits(doc.get("fitness"), "fitness")?,
                feasible: doc
                    .get("feasible")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| "missing `feasible`".to_string())?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_round_trips() {
        let init = WorkerInit {
            model_json: r#"{"name":"m"}"#.to_string(),
            hw_json: r#"{"clock":"0"}"#.to_string(),
            power_bits: 9.0f64.to_bits(),
            macro_mode: MacroMode::Identical,
            objective: Objective::EnergyDelayProduct,
        };
        match WorkerRequest::parse(&init.to_line()).unwrap() {
            WorkerRequest::Init(back) => assert_eq!(back, init),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn score_request_round_trips() {
        let req = ScoreRequest {
            id: 42,
            ratio_bits: 0.3f64.to_bits(),
            xb_size: 128,
            cell_bits: 2,
            dac_bits: 1,
            wt_dup: vec![1, 2, 3],
            gene: vec![1, 1001, 2002],
        };
        match WorkerRequest::parse(&req.to_line()).unwrap() {
            WorkerRequest::Score(back) => assert_eq!(back, req),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn score_response_round_trips_awkward_floats() {
        // Bit patterns JSON number formatting could disturb.
        for fitness in [0.1 + 0.2, 1.0000000000000002, f64::MIN_POSITIVE, 0.0] {
            let resp = ScoreResponse {
                id: 7,
                score: CandidateScore {
                    fitness,
                    feasible: true,
                },
            };
            let back = ScoreResponse::parse(&resp.to_line()).unwrap();
            assert_eq!(back.score.fitness.to_bits(), fitness.to_bits());
            assert_eq!(back.id, 7);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let line = r#"{"type":"init","pimsyn_worker":999,"model":"{}","hw":"{}","power":"0","macro_mode":"specialized","objective":"eff"}"#;
        let err = WorkerRequest::parse(line).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        assert!(parse_ready(r#"{"type":"ready","pimsyn_worker":2}"#).is_err());
        assert!(parse_ready(&ready_line()).is_ok());
    }

    #[test]
    fn tcp_handshake_frames_round_trip() {
        assert_eq!(
            parse_handshake(&hello_line(None)).unwrap(),
            TcpHandshake::Hello { token: None }
        );
        assert_eq!(
            parse_handshake(&hello_line(Some("s3cret"))).unwrap(),
            TcpHandshake::Hello {
                token: Some("s3cret".to_string())
            }
        );
        assert_eq!(
            parse_handshake(&stop_line(Some("s3cret"))).unwrap(),
            TcpHandshake::Stop {
                token: Some("s3cret".to_string())
            }
        );
        assert_eq!(parse_welcome(&welcome_line(4)).unwrap(), 4);
        assert_eq!(parse_welcome(&welcome_line(0)).unwrap(), 1, "slots >= 1");
        assert!(parse_bye(&bye_line()).is_ok());
    }

    #[test]
    fn tcp_handshake_rejects_mismatches_and_garbage() {
        let err = parse_handshake(r#"{"type":"hello","pimsyn_worker":9}"#).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        assert!(parse_handshake(r#"{"type":"hello"}"#).is_err());
        assert!(parse_handshake(r#"{"type":"init","pimsyn_worker":1}"#).is_err());
        assert!(parse_handshake("not json").is_err());
        let err = parse_welcome(r#"{"type":"welcome","pimsyn_worker":9,"slots":1}"#).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        // Error frames surface their detail through both reply parsers.
        let err = parse_welcome(&error_line("authentication failed")).unwrap_err();
        assert!(err.contains("authentication failed"), "{err}");
        let err = parse_bye(&error_line("authentication failed")).unwrap_err();
        assert!(err.contains("authentication failed"), "{err}");
    }

    #[test]
    fn error_lines_surface_their_detail() {
        let err = ScoreResponse::parse(&error_line("boom")).unwrap_err();
        assert!(err.contains("boom"), "{err}");
        assert!(WorkerRequest::parse("not json").is_err());
        assert!(WorkerRequest::parse(r#"{"type":"dance"}"#).is_err());
    }

    #[test]
    fn ready_negotiation_picks_the_minimum() {
        // A plain v1 ready (no `max`) negotiates the session to v1.
        assert_eq!(parse_ready_version(&ready_line()).unwrap(), 1);
        // A v2 worker advertises max 2 and the session runs at v2.
        assert_eq!(parse_ready_version(&ready_line_with_max(2)).unwrap(), 2);
        // A future worker advertising beyond our max is capped to our max.
        assert_eq!(parse_ready_version(&ready_line_with_max(99)).unwrap(), 2);
        // A bogus max below the base version clamps up to the base.
        assert_eq!(parse_ready_version(&ready_line_with_max(0)).unwrap(), 1);
        // The base version check stays strict regardless of `max`.
        assert!(parse_ready_version(r#"{"type":"ready","pimsyn_worker":9,"max":2}"#).is_err());
    }

    #[test]
    fn init_lines_advertise_max_and_v1_parsers_ignore_it() {
        let init = WorkerInit {
            model_json: "{}".to_string(),
            hw_json: "{}".to_string(),
            power_bits: 0,
            macro_mode: MacroMode::Specialized,
            objective: Objective::PowerEfficiency,
        };
        let line = init.to_line();
        assert_eq!(peer_max_version(&line), PROTOCOL_VERSION_MAX);
        // The strict v1 parser accepts the line (unknown fields ignored).
        assert!(matches!(
            WorkerRequest::parse(&line),
            Ok(WorkerRequest::Init(_))
        ));
        // A v1 init (no `max`) reads as a v1 peer.
        let v1_line = line.replacen(",\"max\":2", "", 1);
        assert_ne!(v1_line, line, "the max field was present to strip");
        assert_eq!(peer_max_version(&v1_line), 1);
    }

    #[test]
    fn frames_round_trip() {
        let items = vec![
            BatchItem {
                ratio_bits: 0.3f64.to_bits(),
                xb_size: 128,
                cell_bits: 2,
                dac_bits: 1,
                wt_dup: vec![1, 2, 3],
                gene: vec![1, 1001, 2002],
            },
            BatchItem {
                ratio_bits: (0.1f64 + 0.2f64).to_bits(),
                xb_size: 256,
                cell_bits: 4,
                dac_bits: 2,
                wt_dup: vec![],
                gene: vec![7],
            },
        ];
        let payload = encode_score_batch(41, &items);
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_SCORE_BATCH, &payload).unwrap();
        let mut reader = io::BufReader::new(&wire[..]);
        let (kind, got) = read_frame(&mut reader).unwrap();
        assert_eq!(kind, FRAME_SCORE_BATCH);
        let (id_base, back) = decode_score_batch(&got).unwrap();
        assert_eq!(id_base, 41);
        assert_eq!(back, items);

        let scores = vec![
            CandidateScore {
                fitness: 0.1 + 0.2,
                feasible: true,
            },
            CandidateScore {
                fitness: f64::MIN_POSITIVE,
                feasible: false,
            },
        ];
        let reply = encode_score_reply(41, &scores);
        let (id_base, back) = decode_score_reply(&reply).unwrap();
        assert_eq!(id_base, 41);
        assert_eq!(back.len(), 2);
        for (a, b) in back.iter().zip(&scores) {
            assert_eq!(a.fitness.to_bits(), b.fitness.to_bits());
            assert_eq!(a.feasible, b.feasible);
        }
    }

    #[test]
    fn frame_kinds_never_collide_with_json() {
        // The worker loop peeks one byte to tell a binary frame from a JSON
        // line; every frame kind must stay distinct from `{`.
        for kind in [FRAME_SCORE_BATCH, FRAME_SCORE_REPLY, FRAME_ERROR] {
            assert_ne!(kind, b'{');
        }
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        // Truncated payloads fail cleanly instead of panicking.
        let payload = encode_score_batch(
            0,
            &[BatchItem {
                ratio_bits: 0,
                xb_size: 1,
                cell_bits: 1,
                dac_bits: 1,
                wt_dup: vec![1],
                gene: vec![1],
            }],
        );
        for cut in 0..payload.len() {
            assert!(decode_score_batch(&payload[..cut]).is_err(), "cut={cut}");
        }
        // Trailing garbage is rejected too.
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_score_batch(&long).is_err());
        // A hostile element count cannot force a huge allocation.
        let mut hostile = Vec::new();
        push_u64(&mut hostile, 0);
        push_u32(&mut hostile, 1);
        push_u64(&mut hostile, 0);
        push_u32(&mut hostile, 1);
        push_u32(&mut hostile, 1);
        push_u32(&mut hostile, 1);
        push_u32(&mut hostile, u32::MAX); // wt_dup length
        assert!(decode_score_batch(&hostile).is_err());
        // Bad feasible byte.
        let mut reply = encode_score_reply(
            0,
            &[CandidateScore {
                fitness: 1.0,
                feasible: true,
            }],
        );
        *reply.last_mut().unwrap() = 7;
        assert!(decode_score_reply(&reply).is_err());
        // An over-long frame length is refused before allocating.
        let mut head = vec![FRAME_SCORE_BATCH];
        head.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let mut reader = io::BufReader::new(&head[..]);
        assert!(read_frame(&mut reader).is_err());
    }

    #[test]
    fn error_frames_carry_their_detail() {
        let mut wire = Vec::new();
        write_frame(&mut wire, FRAME_ERROR, b"session went sideways").unwrap();
        let mut reader = io::BufReader::new(&wire[..]);
        let (kind, payload) = read_frame(&mut reader).unwrap();
        assert_eq!(kind, FRAME_ERROR);
        assert_eq!(decode_error_frame(&payload), "session went sideways");
    }
}
