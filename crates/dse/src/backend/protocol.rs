//! The versioned JSON-lines protocol between the [`SubprocessBackend`]
//! (client) and `pimsyn --worker` child processes (server).
//!
//! Every message is one JSON object per line. The session opens with an
//! [`WorkerInit`] fixing everything that is constant for a synthesis run
//! (model, hardware parameters, power budget, macro mode, objective); the
//! worker answers with a `ready` line, then serves [`ScoreRequest`]s with
//! [`ScoreResponse`]s until its stdin closes. Floats travel as
//! `f64::to_bits` hex strings, so a worker's scores are *bit-identical* to
//! inline scoring — JSON number formatting never enters the loop.
//!
//! ```text
//! > {"type":"init","pimsyn_worker":1,"model":"{...}","hw":"{...}",
//!    "power":"4022000000000000","macro_mode":"specialized","objective":"eff"}
//! < {"type":"ready","pimsyn_worker":1}
//! > {"type":"score","id":0,"ratio":"3fd3333333333333","xb":128,"cell":2,
//!    "dac":1,"wt_dup":[1,1],"gene":[1,1001]}
//! < {"type":"score","id":0,"fitness":"3ff8a3d70a3d70a4","feasible":true}
//! ```
//!
//! Version negotiation is strict: an init whose `pimsyn_worker` field does
//! not equal [`PROTOCOL_VERSION`] is rejected, and the backend falls back to
//! inline scoring rather than risking a silent mismatch.
//!
//! [`SubprocessBackend`]: super::SubprocessBackend

use pimsyn_arch::MacroMode;
use pimsyn_model::json::JsonValue;

use crate::ea::Objective;
use crate::eval::CandidateScore;

/// Wire-format version; bumped on any incompatible message change.
pub const PROTOCOL_VERSION: u32 = 1;

fn hex_bits(v: f64) -> JsonValue {
    JsonValue::String(super::u64_hex(v.to_bits()))
}

fn parse_bits(v: Option<&JsonValue>, key: &str) -> Result<f64, String> {
    let s = v
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("missing bit-pattern field `{key}`"))?;
    super::parse_u64_hex(s)
        .map(f64::from_bits)
        .ok_or_else(|| format!("`{key}` is not a hex bit pattern"))
}

fn field_usize(v: &JsonValue, key: &str) -> Result<usize, String> {
    v.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn usize_array(v: &JsonValue, key: &str) -> Result<Vec<usize>, String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing array field `{key}`"))?
        .iter()
        .map(|x| {
            x.as_usize()
                .ok_or_else(|| format!("`{key}` entries must be non-negative integers"))
        })
        .collect()
}

/// Stable string tag of a [`MacroMode`].
pub fn macro_mode_tag(mode: MacroMode) -> &'static str {
    match mode {
        MacroMode::Specialized => "specialized",
        MacroMode::Identical => "identical",
    }
}

/// Parses a [`macro_mode_tag`] back.
///
/// # Errors
///
/// A message naming the unknown tag.
pub fn parse_macro_mode(s: &str) -> Result<MacroMode, String> {
    match s {
        "specialized" => Ok(MacroMode::Specialized),
        "identical" => Ok(MacroMode::Identical),
        other => Err(format!("unknown macro mode `{other}`")),
    }
}

/// Stable string tag of an [`Objective`].
pub fn objective_tag(objective: Objective) -> &'static str {
    match objective {
        Objective::PowerEfficiency => "eff",
        Objective::EnergyDelayProduct => "edp",
    }
}

/// Parses an [`objective_tag`] back.
///
/// # Errors
///
/// A message naming the unknown tag.
pub fn parse_objective(s: &str) -> Result<Objective, String> {
    match s {
        "eff" => Ok(Objective::PowerEfficiency),
        "edp" => Ok(Objective::EnergyDelayProduct),
        other => Err(format!("unknown objective `{other}`")),
    }
}

/// Session-opening message: everything constant across one synthesis run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerInit {
    /// The CNN in the ONNX-style JSON of `pimsyn_model::onnx` (lossless for
    /// the layer graph, which is all-integer).
    pub model_json: String,
    /// Hardware parameters in the *bit-exact* format of
    /// `pimsyn_arch::hardware_config::to_json_exact`.
    pub hw_json: String,
    /// Total power constraint, `f64::to_bits`.
    pub power_bits: u64,
    /// Identical vs specialized macros.
    pub macro_mode: MacroMode,
    /// What fitness maximizes.
    pub objective: Objective,
}

impl WorkerInit {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("init".into())),
            (
                "pimsyn_worker".into(),
                JsonValue::Number(PROTOCOL_VERSION as f64),
            ),
            ("model".into(), JsonValue::String(self.model_json.clone())),
            ("hw".into(), JsonValue::String(self.hw_json.clone())),
            (
                "power".into(),
                JsonValue::String(super::u64_hex(self.power_bits)),
            ),
            (
                "macro_mode".into(),
                JsonValue::String(macro_mode_tag(self.macro_mode).into()),
            ),
            (
                "objective".into(),
                JsonValue::String(objective_tag(self.objective).into()),
            ),
        ])
        .to_string()
    }

    fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let version = doc
            .get("pimsyn_worker")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| "missing `pimsyn_worker` version".to_string())?;
        if version != PROTOCOL_VERSION as usize {
            return Err(format!(
                "protocol version mismatch: peer speaks {version}, this build speaks {PROTOCOL_VERSION}"
            ));
        }
        let text = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        Ok(Self {
            model_json: text("model")?,
            hw_json: text("hw")?,
            power_bits: super::parse_u64_hex(&text("power")?)
                .ok_or_else(|| "`power` is not a hex bit pattern".to_string())?,
            macro_mode: parse_macro_mode(&text("macro_mode")?)?,
            objective: parse_objective(&text("objective")?)?,
        })
    }
}

/// One candidate to score, fully serialized (the worker recompiles the
/// dataflow from `(crossbar, dac, wt_dup)` — compilation is deterministic
/// and costs microseconds, and consecutive requests reuse the compiled
/// dataflow through a worker-side cache).
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreRequest {
    /// Request id, echoed in the response.
    pub id: u64,
    /// `RatioRram` as `f64::to_bits`.
    pub ratio_bits: u64,
    /// Crossbar rows/columns.
    pub xb_size: usize,
    /// ReRAM cell resolution in bits.
    pub cell_bits: u32,
    /// DAC resolution in bits.
    pub dac_bits: u32,
    /// Per-layer weight duplication (fixes the dataflow).
    pub wt_dup: Vec<usize>,
    /// The `MacAlloc` gene (`owner*1000 + n` encoding).
    pub gene: Vec<u32>,
}

impl ScoreRequest {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("score".into())),
            ("id".into(), JsonValue::Number(self.id as f64)),
            (
                "ratio".into(),
                JsonValue::String(super::u64_hex(self.ratio_bits)),
            ),
            ("xb".into(), JsonValue::Number(self.xb_size as f64)),
            ("cell".into(), JsonValue::Number(self.cell_bits as f64)),
            ("dac".into(), JsonValue::Number(self.dac_bits as f64)),
            (
                "wt_dup".into(),
                JsonValue::Array(
                    self.wt_dup
                        .iter()
                        .map(|&d| JsonValue::Number(d as f64))
                        .collect(),
                ),
            ),
            (
                "gene".into(),
                JsonValue::Array(
                    self.gene
                        .iter()
                        .map(|&g| JsonValue::Number(g as f64))
                        .collect(),
                ),
            ),
        ])
        .to_string()
    }

    fn from_json(doc: &JsonValue) -> Result<Self, String> {
        let ratio = doc
            .get("ratio")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "missing `ratio`".to_string())?;
        Ok(Self {
            id: field_usize(doc, "id")? as u64,
            ratio_bits: super::parse_u64_hex(ratio)
                .ok_or_else(|| "`ratio` is not a hex bit pattern".to_string())?,
            xb_size: field_usize(doc, "xb")?,
            cell_bits: field_usize(doc, "cell")? as u32,
            dac_bits: field_usize(doc, "dac")? as u32,
            wt_dup: usize_array(doc, "wt_dup")?,
            gene: usize_array(doc, "gene")?
                .into_iter()
                .map(|g| g as u32)
                .collect(),
        })
    }
}

/// Any message a worker may receive.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerRequest {
    /// Session setup (must be the first message).
    Init(WorkerInit),
    /// A candidate to score.
    Score(ScoreRequest),
}

impl WorkerRequest {
    /// Parses one received line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed JSON, unknown message types or
    /// missing fields.
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("init") => WorkerInit::from_json(&doc).map(WorkerRequest::Init),
            Some("score") => ScoreRequest::from_json(&doc).map(WorkerRequest::Score),
            Some(other) => Err(format!("unknown request type `{other}`")),
            None => Err("missing request `type`".to_string()),
        }
    }
}

/// The worker's `ready` acknowledgment after a successful init.
pub fn ready_line() -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("ready".into())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ])
    .to_string()
}

/// Checks a received `ready` line (type and version).
///
/// # Errors
///
/// A human-readable message when the line is not a matching `ready`.
pub fn parse_ready(line: &str) -> Result<(), String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed ready line: {e}"))?;
    if doc.get("type").and_then(JsonValue::as_str) != Some("ready") {
        return Err(format!("expected a ready line, got: {line}"));
    }
    match doc.get("pimsyn_worker").and_then(JsonValue::as_usize) {
        Some(v) if v == PROTOCOL_VERSION as usize => Ok(()),
        Some(v) => Err(format!(
            "protocol version mismatch: worker speaks {v}, this build speaks {PROTOCOL_VERSION}"
        )),
        None => Err("ready line lacks a version".to_string()),
    }
}

/// The transport-handshake frames of the *TCP* flavor of this protocol.
///
/// Over stdio (the [`SubprocessBackend`](super::SubprocessBackend)) the two
/// endpoints trust each other by construction — the parent spawned the
/// child. Over TCP (`pimsyn worker-serve` ↔
/// [`RemoteBackend`](super::RemoteBackend)) the dialing side must first
/// prove it speaks the same protocol version and, when the daemon was
/// started with an auth token, that it knows the shared secret. One
/// handshake exchange opens each connection, *before* the stock
/// init/ready/score session:
///
/// ```text
/// > {"type":"hello","pimsyn_worker":1}                  (or +"token":"…")
/// < {"type":"welcome","pimsyn_worker":1,"slots":4}
/// ... stock worker session (init / ready / score) ...
/// ```
///
/// A rejected handshake — version mismatch, bad or missing token, all
/// slots busy — is answered with an [`error_line`] and the connection is
/// closed; the dialing backend degrades to inline scoring. A `stop` frame
/// in place of `hello` asks the daemon to shut down (same token rule),
/// acknowledged by a `bye` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TcpHandshake {
    /// Open a worker session on this connection.
    Hello {
        /// Shared secret; must match the daemon's token when it has one.
        token: Option<String>,
    },
    /// Ask the daemon to stop accepting connections and exit.
    Stop {
        /// Shared secret; same rule as for `hello`.
        token: Option<String>,
    },
}

fn handshake_line(kind: &str, token: Option<&str>) -> String {
    let mut fields = vec![
        ("type".to_string(), JsonValue::String(kind.to_string())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ];
    if let Some(token) = token {
        fields.push(("token".into(), JsonValue::String(token.to_string())));
    }
    JsonValue::Object(fields).to_string()
}

/// The connection-opening `hello` frame of the TCP transport.
pub fn hello_line(token: Option<&str>) -> String {
    handshake_line("hello", token)
}

/// The daemon-shutdown `stop` frame of the TCP transport.
pub fn stop_line(token: Option<&str>) -> String {
    handshake_line("stop", token)
}

/// Parses the first line of a TCP worker connection, enforcing the
/// protocol version.
///
/// # Errors
///
/// A human-readable message (suitable for an [`error_line`] reply) for
/// malformed JSON, unknown frame types, or a version mismatch.
pub fn parse_handshake(line: &str) -> Result<TcpHandshake, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed handshake: {e}"))?;
    let kind = match doc.get("type").and_then(JsonValue::as_str) {
        Some(kind @ ("hello" | "stop")) => kind,
        Some(other) => return Err(format!("expected a hello or stop handshake, got `{other}`")),
        None => return Err("missing handshake `type`".to_string()),
    };
    match doc.get("pimsyn_worker").and_then(JsonValue::as_usize) {
        Some(v) if v == PROTOCOL_VERSION as usize => {}
        Some(v) => {
            return Err(format!(
                "protocol version mismatch: peer speaks {v}, this build speaks {PROTOCOL_VERSION}"
            ))
        }
        None => return Err("handshake lacks a `pimsyn_worker` version".to_string()),
    }
    let token = doc
        .get("token")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    Ok(match kind {
        "hello" => TcpHandshake::Hello { token },
        _ => TcpHandshake::Stop { token },
    })
}

/// The daemon's `welcome` acknowledgment of an accepted `hello`,
/// advertising how many sessions remain available to the dialing peer at
/// handshake time (including the one just opened) — a shared daemon
/// throttles each client to what actually remains.
pub fn welcome_line(slots: usize) -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("welcome".into())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
        ("slots".into(), JsonValue::Number(slots as f64)),
    ])
    .to_string()
}

/// Checks a received `welcome` line and returns the advertised slot count.
///
/// # Errors
///
/// A human-readable message for malformed or mismatched lines; an `error`
/// frame's detail (e.g. an authentication failure) is surfaced as the
/// message.
pub fn parse_welcome(line: &str) -> Result<usize, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed welcome line: {e}"))?;
    match doc.get("type").and_then(JsonValue::as_str) {
        Some("welcome") => {}
        Some("error") => {
            let detail = doc
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified");
            return Err(format!("worker daemon rejected the connection: {detail}"));
        }
        _ => return Err(format!("expected a welcome line, got: {line}")),
    }
    match doc.get("pimsyn_worker").and_then(JsonValue::as_usize) {
        Some(v) if v == PROTOCOL_VERSION as usize => {}
        Some(v) => {
            return Err(format!(
                "protocol version mismatch: daemon speaks {v}, this build speaks {PROTOCOL_VERSION}"
            ))
        }
        None => return Err("welcome line lacks a version".to_string()),
    }
    Ok(field_usize(&doc, "slots")?.max(1))
}

/// The daemon's acknowledgment of a `stop` frame, sent just before it
/// exits.
pub fn bye_line() -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("bye".into())),
        (
            "pimsyn_worker".into(),
            JsonValue::Number(PROTOCOL_VERSION as f64),
        ),
    ])
    .to_string()
}

/// Checks a received `bye` acknowledgment.
///
/// # Errors
///
/// A human-readable message for anything that is not a `bye` frame (an
/// `error` frame's detail is surfaced as the message).
pub fn parse_bye(line: &str) -> Result<(), String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed bye line: {e}"))?;
    match doc.get("type").and_then(JsonValue::as_str) {
        Some("bye") => Ok(()),
        Some("error") => {
            let detail = doc
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified");
            Err(format!("worker daemon refused to stop: {detail}"))
        }
        _ => Err(format!("expected a bye line, got: {line}")),
    }
}

/// The normative prefix of the `error` detail a worker daemon answers a
/// `hello` with when every session slot is taken. Dialing backends
/// classify this as a *polite decline* — the daemon is healthy, just
/// fully subscribed — and neither warn nor back off; any other `error` is
/// a real failure. Shared between the daemon reply and the classifier so
/// a rewording cannot silently break the classification.
pub const NO_FREE_SLOTS: &str = "no free worker slots";

/// An error report from the worker (also usable before exiting).
pub fn error_line(detail: &str) -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("error".into())),
        ("detail".into(), JsonValue::String(detail.to_string())),
    ])
    .to_string()
}

/// One scored candidate, keyed back to its request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreResponse {
    /// The request id this answers.
    pub id: u64,
    /// The score (fitness bit pattern survives the wire exactly).
    pub score: CandidateScore,
}

impl ScoreResponse {
    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        JsonValue::Object(vec![
            ("type".into(), JsonValue::String("score".into())),
            ("id".into(), JsonValue::Number(self.id as f64)),
            ("fitness".into(), hex_bits(self.score.fitness)),
            ("feasible".into(), JsonValue::Bool(self.score.feasible)),
        ])
        .to_string()
    }

    /// Parses one received line.
    ///
    /// # Errors
    ///
    /// A human-readable message for malformed or non-`score` lines (an
    /// `error` line's detail is surfaced as the message).
    pub fn parse(line: &str) -> Result<Self, String> {
        let doc = JsonValue::parse(line).map_err(|e| format!("malformed response: {e}"))?;
        match doc.get("type").and_then(JsonValue::as_str) {
            Some("score") => {}
            Some("error") => {
                let detail = doc
                    .get("detail")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("unspecified");
                return Err(format!("worker reported an error: {detail}"));
            }
            _ => return Err(format!("expected a score line, got: {line}")),
        }
        Ok(Self {
            id: field_usize(&doc, "id")? as u64,
            score: CandidateScore {
                fitness: parse_bits(doc.get("fitness"), "fitness")?,
                feasible: doc
                    .get("feasible")
                    .and_then(JsonValue::as_bool)
                    .ok_or_else(|| "missing `feasible`".to_string())?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_round_trips() {
        let init = WorkerInit {
            model_json: r#"{"name":"m"}"#.to_string(),
            hw_json: r#"{"clock":"0"}"#.to_string(),
            power_bits: 9.0f64.to_bits(),
            macro_mode: MacroMode::Identical,
            objective: Objective::EnergyDelayProduct,
        };
        match WorkerRequest::parse(&init.to_line()).unwrap() {
            WorkerRequest::Init(back) => assert_eq!(back, init),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn score_request_round_trips() {
        let req = ScoreRequest {
            id: 42,
            ratio_bits: 0.3f64.to_bits(),
            xb_size: 128,
            cell_bits: 2,
            dac_bits: 1,
            wt_dup: vec![1, 2, 3],
            gene: vec![1, 1001, 2002],
        };
        match WorkerRequest::parse(&req.to_line()).unwrap() {
            WorkerRequest::Score(back) => assert_eq!(back, req),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn score_response_round_trips_awkward_floats() {
        // Bit patterns JSON number formatting could disturb.
        for fitness in [0.1 + 0.2, 1.0000000000000002, f64::MIN_POSITIVE, 0.0] {
            let resp = ScoreResponse {
                id: 7,
                score: CandidateScore {
                    fitness,
                    feasible: true,
                },
            };
            let back = ScoreResponse::parse(&resp.to_line()).unwrap();
            assert_eq!(back.score.fitness.to_bits(), fitness.to_bits());
            assert_eq!(back.id, 7);
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let line = r#"{"type":"init","pimsyn_worker":999,"model":"{}","hw":"{}","power":"0","macro_mode":"specialized","objective":"eff"}"#;
        let err = WorkerRequest::parse(line).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        assert!(parse_ready(r#"{"type":"ready","pimsyn_worker":2}"#).is_err());
        assert!(parse_ready(&ready_line()).is_ok());
    }

    #[test]
    fn tcp_handshake_frames_round_trip() {
        assert_eq!(
            parse_handshake(&hello_line(None)).unwrap(),
            TcpHandshake::Hello { token: None }
        );
        assert_eq!(
            parse_handshake(&hello_line(Some("s3cret"))).unwrap(),
            TcpHandshake::Hello {
                token: Some("s3cret".to_string())
            }
        );
        assert_eq!(
            parse_handshake(&stop_line(Some("s3cret"))).unwrap(),
            TcpHandshake::Stop {
                token: Some("s3cret".to_string())
            }
        );
        assert_eq!(parse_welcome(&welcome_line(4)).unwrap(), 4);
        assert_eq!(parse_welcome(&welcome_line(0)).unwrap(), 1, "slots >= 1");
        assert!(parse_bye(&bye_line()).is_ok());
    }

    #[test]
    fn tcp_handshake_rejects_mismatches_and_garbage() {
        let err = parse_handshake(r#"{"type":"hello","pimsyn_worker":9}"#).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        assert!(parse_handshake(r#"{"type":"hello"}"#).is_err());
        assert!(parse_handshake(r#"{"type":"init","pimsyn_worker":1}"#).is_err());
        assert!(parse_handshake("not json").is_err());
        let err = parse_welcome(r#"{"type":"welcome","pimsyn_worker":9,"slots":1}"#).unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        // Error frames surface their detail through both reply parsers.
        let err = parse_welcome(&error_line("authentication failed")).unwrap_err();
        assert!(err.contains("authentication failed"), "{err}");
        let err = parse_bye(&error_line("authentication failed")).unwrap_err();
        assert!(err.contains("authentication failed"), "{err}");
    }

    #[test]
    fn error_lines_surface_their_detail() {
        let err = ScoreResponse::parse(&error_line("boom")).unwrap_err();
        assert!(err.contains("boom"), "{err}");
        assert!(WorkerRequest::parse("not json").is_err());
        assert!(WorkerRequest::parse(r#"{"type":"dance"}"#).is_err());
    }
}
