//! The remote backend: scoring candidates on `pimsyn worker-serve` daemons
//! over TCP, speaking the versioned worker [`protocol`](super::protocol)
//! (JSON-lines v1, binary-framed v2 — negotiated per session).
//!
//! Connection ownership and per-run session state are separate layers,
//! mirroring the subprocess backend's pool/backend split:
//!
//! - A [`RemotePool`] owns the TCP *connections* and the endpoint roster.
//!   The roster starts from the statically configured endpoints
//!   (`host:port`, CLI spelling `--backend remote:host1:port,host2:port`)
//!   and, when a [`WorkerDirectory`] is attached (the serve/gateway worker
//!   registry), is re-unioned with the directory's live roster before
//!   every batch — endpoints join as workers announce themselves and
//!   retire as they drain or get evicted. Transport-handshaked
//!   connections are kept *open across runs*: a run returns them to the
//!   pool at flush, and the next run re-opens its own session on them
//!   instead of paying dial + handshake again.
//! - A [`RemoteBackend`] holds one run's *session*: the init line fixing
//!   the run's model/hardware/power/objective and the leased connections
//!   that have already acknowledged it (each at its negotiated protocol
//!   version).
//!
//! Each connection is one worker *slot* on a daemon:
//!
//! 1. **Transport handshake** (once per connection): a `hello` frame
//!    carrying the protocol version and, when configured, a shared auth
//!    token; the daemon answers `welcome` (advertising how many sessions
//!    remain available to this pool, which caps how many connections it
//!    opens to that endpoint) or an `error` frame and a close.
//! 2. **Session** (once per run, re-opened when a connection is recycled):
//!    the stock `init` → `ready` exchange fixing the run's model,
//!    hardware, power, macro mode and objective — and negotiating the
//!    session's protocol version (v2 peers switch to binary frames, v1
//!    peers keep JSON lines).
//! 3. **Scoring**: whole batches in one binary frame (v2) or per-candidate
//!    JSON lines (v1); floats travel as IEEE-754 bit patterns either way —
//!    remote scores are bit-identical to inline ones.
//!
//! **Chunking is latency-aware.** The subprocess backend splits every
//! batch across all workers because pipes are cheap; a network round trip
//! is not, so small batches would drown in per-chunk latency. The remote
//! backend instead targets at least [`MIN_CHUNK`] jobs per connection and
//! splits the batch into *count-balanced* chunks (sizes differing by at
//! most one) across however many connections that justifies — one
//! connection scores a small batch whole, large batches fan out across the
//! roster.
//!
//! **Failure isolation matches the subprocess backend.** A connection that
//! dies, answers garbage or fails the handshake (including a version
//! mismatch or rejected token) is dropped, its in-flight chunk is
//! recomputed inline, and the endpoint backs off from reconnection
//! attempts for [`RECONNECT_BACKOFF`]. With no reachable endpoint at all,
//! whole batches silently degrade to inline scoring — results are
//! bit-identical either way, so a daemon killed, drained or evicted
//! mid-run never changes a synthesis outcome. The first degradation
//! prints a single stderr warning per run (the only diagnostic; every
//! later failure is silent).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::eval::{CandidateScore, EvalCore};

use super::protocol::{hello_line, parse_welcome, NO_FREE_SLOTS};
use super::session::WireMode;
use super::{session, BackendStats, EvalBackend, EvalJob, StopCheck, WorkerDirectory};

/// Resolving + dialing an endpoint that does not answer must not stall the
/// search; connects beyond this are treated as endpoint failures.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the daemon gets to answer the `hello` → `welcome` handshake
/// and the `init` → `ready` session opening.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Socket read timeout while waiting for score responses. Scoring a chunk
/// is CPU-bound work on the daemon, so this is generous; it exists so a
/// wedged daemon stalls its chunk for a bounded time (the chunk then
/// recomputes inline) instead of hanging the run forever.
const SCORE_TIMEOUT: Duration = Duration::from_secs(300);

/// How long an endpoint is skipped after a connect/handshake/session
/// failure before reconnection is attempted again.
pub(crate) const RECONNECT_BACKOFF: Duration = Duration::from_secs(30);

/// Minimum jobs per remote chunk: a network round trip is only worth
/// paying when it carries enough work. Batches smaller than `2 *
/// MIN_CHUNK` go to a single connection whole.
const MIN_CHUNK: usize = 8;

/// Per-endpoint connection accounting.
struct EndpointHealth {
    /// Our connection cap for this endpoint, derived from the capacity
    /// the daemon advertised in its last `welcome` (`1` until the first
    /// successful handshake).
    slots: usize,
    /// Connections currently open (idle in the pool, sessioned to a run,
    /// or reserved for an in-flight dial).
    live: usize,
    /// Until when reconnection attempts are suspended after a failure.
    backoff_until: Option<Instant>,
    /// Cumulative wall-clock seconds spent in successful scoring round
    /// trips to this endpoint (send chunk -> receive scores).
    batch_seconds: f64,
    /// Successful scoring round trips, the divisor for `batch_seconds`.
    batches: usize,
}

/// One endpoint of the fleet. Connections hold an `Arc` to their endpoint
/// (not an index), so accounting stays correct while the roster itself
/// grows and shrinks under registry churn.
struct Endpoint {
    addr: String,
    /// Discovered through the [`WorkerDirectory`] (vs statically
    /// configured). Only discovered endpoints are retired when they leave
    /// the directory's roster; static ones are permanent.
    discovered: bool,
    /// Set when the endpoint left the roster; surviving connections are
    /// closed as they return to the pool.
    retired: AtomicBool,
    /// Protocol version negotiated by the most recent session on this
    /// endpoint (`0` until one succeeds) — observability only.
    protocol: AtomicU32,
    health: Mutex<EndpointHealth>,
}

impl Endpoint {
    fn new(addr: String, discovered: bool) -> Arc<Self> {
        Arc::new(Self {
            addr,
            discovered,
            retired: AtomicBool::new(false),
            protocol: AtomicU32::new(0),
            health: Mutex::new(EndpointHealth {
                slots: 1,
                live: 0,
                backoff_until: None,
                batch_seconds: 0.0,
                batches: 0,
            }),
        })
    }

    fn release_one(&self) {
        self.health.lock().expect("endpoint").live -= 1;
    }
}

/// One live TCP connection: transport handshake done, possibly sessioned
/// at the negotiated wire mode.
struct RemoteConn {
    endpoint: Arc<Endpoint>,
    /// The framing the current session negotiated (v1 until a session is
    /// opened; re-negotiated on every re-init).
    wire: WireMode,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One endpoint's status in a [`RemoteFleetSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteEndpointStatus {
    /// The endpoint's `host:port`.
    pub addr: String,
    /// Whether it was discovered through a worker directory (vs statically
    /// configured).
    pub discovered: bool,
    /// Connections currently open to it (idle + sessioned + reserved).
    pub live: usize,
    /// Protocol version of the most recent session (`0` = none yet).
    pub protocol: u32,
    /// Cumulative wall-clock seconds this pool spent in successful scoring
    /// round trips to the endpoint. With [`batches`] this yields the
    /// mean per-batch scoring latency (a Prometheus summary pair).
    ///
    /// [`batches`]: RemoteEndpointStatus::batches
    pub batch_seconds: f64,
    /// Successful scoring round trips to the endpoint.
    pub batches: usize,
}

/// A point-in-time view of a [`RemotePool`] for metrics and summaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RemoteFleetSnapshot {
    /// Every endpoint currently in the roster, in roster order.
    pub endpoints: Vec<RemoteEndpointStatus>,
    /// Connections open across all endpoints (idle + sessioned).
    pub live_connections: usize,
    /// Of those, connections idle in the pool between runs.
    pub idle_connections: usize,
    /// TCP connects + handshakes performed over the pool's lifetime — the
    /// measure of how well persistent connections amortize dial cost.
    pub connects: usize,
}

/// A pool of transport-handshaked worker connections and the endpoint
/// roster they belong to, shareable across runs.
///
/// The pool knows nothing about any particular synthesis run: it dials,
/// handshakes, stores and retires raw connections. Run-specific state
/// (the init line, which connections acknowledged it, at which protocol
/// version) lives in the [`RemoteBackend`] leasing from it. Dropping the
/// pool closes every idle connection.
pub struct RemotePool {
    token: Option<String>,
    /// The live roster: static seeds plus directory-discovered endpoints.
    endpoints: Mutex<Vec<Arc<Endpoint>>>,
    /// Transport-handshaked connections idle between runs. Their last
    /// session (if any) belongs to a finished run; leasing re-opens it.
    idle: Mutex<Vec<RemoteConn>>,
    /// The dynamic-roster hook (the serve/gateway worker registry).
    directory: Mutex<Option<Arc<dyn WorkerDirectory>>>,
    /// Round-robin cursor so consecutive leases spread across the roster.
    rotate: AtomicUsize,
    /// Cumulative connects over the pool's lifetime.
    connects: AtomicUsize,
}

impl std::fmt::Debug for RemotePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let endpoints = self.endpoints.lock().expect("remote roster");
        f.debug_struct("RemotePool")
            .field(
                "endpoints",
                &endpoints.iter().map(|e| &e.addr).collect::<Vec<_>>(),
            )
            .field("idle", &self.idle.lock().expect("remote idle").len())
            .field("authenticated", &self.token.is_some())
            .field("connects", &self.connects.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Drop for RemotePool {
    fn drop(&mut self) {
        // Close idle connections deterministically (the daemon's slots free
        // on EOF) and release their accounting.
        for conn in self.idle.lock().expect("remote idle").drain(..) {
            conn.endpoint.release_one();
        }
    }
}

impl RemotePool {
    /// A pool over the given static endpoint roster (`host:port` each),
    /// authenticating every connection with `token` when one is given. The
    /// roster may be empty when a [`WorkerDirectory`] will supply it.
    pub fn new(endpoints: Vec<String>, token: Option<String>) -> Arc<Self> {
        Arc::new(Self {
            token,
            endpoints: Mutex::new(
                endpoints
                    .into_iter()
                    .map(|addr| Endpoint::new(addr, false))
                    .collect(),
            ),
            idle: Mutex::new(Vec::new()),
            directory: Mutex::new(None),
            rotate: AtomicUsize::new(0),
            connects: AtomicUsize::new(0),
        })
    }

    /// Attaches (or replaces) the dynamic-roster hook. From the next
    /// batch on, the roster is re-unioned with the directory before every
    /// lease.
    pub fn set_directory(&self, directory: Arc<dyn WorkerDirectory>) {
        *self.directory.lock().expect("remote directory") = Some(directory);
    }

    /// Merges more statically configured endpoints into the roster
    /// (duplicates ignored) — a later run configured with extra endpoints
    /// widens the shared pool instead of being silently capped to the
    /// first run's roster.
    pub fn add_static(&self, addrs: &[String]) {
        let mut endpoints = self.endpoints.lock().expect("remote roster");
        for addr in addrs {
            if !endpoints.iter().any(|e| &e.addr == addr) {
                endpoints.push(Endpoint::new(addr.clone(), false));
            }
        }
    }

    /// Re-unions the roster with the directory (when one is attached):
    /// newly announced workers join as discovered endpoints, and
    /// discovered endpoints that left (drained or evicted) are retired —
    /// their idle connections are closed, and sessioned ones close as they
    /// return. Static endpoints are never retired.
    pub(crate) fn refresh_roster(&self) {
        let directory = self.directory.lock().expect("remote directory").clone();
        let Some(directory) = directory else { return };
        let mut roster = directory.roster();
        roster.sort();
        let mut endpoints = self.endpoints.lock().expect("remote roster");
        endpoints.retain(|endpoint| {
            let keep = !endpoint.discovered || roster.iter().any(|a| a == &endpoint.addr);
            if !keep {
                endpoint.retired.store(true, Ordering::SeqCst);
            }
            keep
        });
        for addr in roster {
            if !endpoints.iter().any(|e| e.addr == addr) {
                endpoints.push(Endpoint::new(addr, true));
            }
        }
        drop(endpoints);
        // Idle connections on retired endpoints are useless; close them now.
        let mut idle = self.idle.lock().expect("remote idle");
        let (keep, retired): (Vec<_>, Vec<_>) = idle
            .drain(..)
            .partition(|conn| !conn.endpoint.retired.load(Ordering::SeqCst));
        *idle = keep;
        drop(idle);
        for conn in retired {
            conn.endpoint.release_one();
        }
    }

    /// Reserves a connection slot on the next endpoint that is neither
    /// retired, backing off, nor at its advertised capacity. The
    /// reservation counts as live until released or converted into a real
    /// connection.
    fn reserve_slot(&self) -> Option<Arc<Endpoint>> {
        let endpoints: Vec<Arc<Endpoint>> = self.endpoints.lock().expect("remote roster").clone();
        let n = endpoints.len();
        if n == 0 {
            return None;
        }
        let start = self.rotate.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        for k in 0..n {
            let endpoint = &endpoints[(start + k) % n];
            if endpoint.retired.load(Ordering::SeqCst) {
                continue;
            }
            let mut health = endpoint.health.lock().expect("endpoint");
            let backing_off = health.backoff_until.is_some_and(|until| now < until);
            if !backing_off && health.live < health.slots {
                health.live += 1;
                return Some(Arc::clone(endpoint));
            }
        }
        None
    }

    /// Takes one idle (transport-handshaked, session-stale) connection,
    /// skipping — and closing — any whose endpoint retired meanwhile.
    fn checkout_idle(&self) -> Option<RemoteConn> {
        loop {
            let conn = self.idle.lock().expect("remote idle").pop()?;
            if conn.endpoint.retired.load(Ordering::SeqCst) {
                conn.endpoint.release_one();
                continue;
            }
            return Some(conn);
        }
    }

    /// Returns still-healthy connections to the pool (their session state
    /// is stale; the next lease re-opens it). Connections on retired
    /// endpoints are closed instead.
    fn checkin(&self, conns: Vec<RemoteConn>) {
        let mut idle = self.idle.lock().expect("remote idle");
        for conn in conns {
            if conn.endpoint.retired.load(Ordering::SeqCst) {
                conn.endpoint.release_one();
            } else {
                idle.push(conn);
            }
        }
    }

    /// Dials one endpoint and runs the transport handshake against an
    /// earlier reservation. On success the connection's read timeout is
    /// left at [`SCORE_TIMEOUT`].
    fn connect(&self, endpoint: &Arc<Endpoint>) -> Result<RemoteConn, String> {
        let addr = &endpoint.addr;
        let writer = super::dial_bounded(addr, CONNECT_TIMEOUT)?;
        let _ = writer.set_nodelay(true);
        writer
            .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
            .map_err(|e| format!("cannot configure {addr}: {e}"))?;
        let reader = writer
            .try_clone()
            .map_err(|e| format!("cannot clone the {addr} stream: {e}"))?;
        let mut conn = RemoteConn {
            endpoint: Arc::clone(endpoint),
            wire: WireMode::V1,
            writer,
            reader: BufReader::new(reader),
        };
        writeln!(conn.writer, "{}", hello_line(self.token.as_deref()))
            .and_then(|()| conn.writer.flush())
            .map_err(|e| format!("handshake write to {addr} failed: {e}"))?;
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            Ok(_) => return Err(format!("{addr} closed the connection during handshake")),
            Err(e) => return Err(format!("handshake read from {addr} failed: {e}")),
        }
        let advertised = parse_welcome(line.trim()).map_err(|e| format!("{addr}: {e}"))?;
        conn.writer
            .set_read_timeout(Some(SCORE_TIMEOUT))
            .map_err(|e| format!("cannot configure {addr}: {e}"))?;
        self.connects.fetch_add(1, Ordering::Relaxed);
        {
            // `welcome` advertises the sessions still available to *us* at
            // handshake time, including this one — so a daemon shared by
            // several runs throttles each to what actually remains. Our
            // per-endpoint cap is what we already hold (`live` includes
            // this connection's reservation) plus what remains beyond it.
            let mut health = endpoint.health.lock().expect("endpoint");
            health.slots = (health.live + advertised).saturating_sub(1).max(1);
        }
        Ok(conn)
    }

    /// A point-in-time view for metrics and summaries.
    pub fn fleet_snapshot(&self) -> RemoteFleetSnapshot {
        let endpoints = self.endpoints.lock().expect("remote roster");
        let statuses: Vec<RemoteEndpointStatus> = endpoints
            .iter()
            .map(|e| {
                let health = e.health.lock().expect("endpoint");
                RemoteEndpointStatus {
                    addr: e.addr.clone(),
                    discovered: e.discovered,
                    live: health.live,
                    protocol: e.protocol.load(Ordering::Relaxed),
                    batch_seconds: health.batch_seconds,
                    batches: health.batches,
                }
            })
            .collect();
        drop(endpoints);
        RemoteFleetSnapshot {
            live_connections: statuses.iter().map(|s| s.live).sum(),
            idle_connections: self.idle.lock().expect("remote idle").len(),
            connects: self.connects.load(Ordering::Relaxed),
            endpoints: statuses,
        }
    }
}

/// One run's session over the leased connections: the init line plus the
/// connections that have already acknowledged it, idle between batches.
struct RunSession {
    init_line: Option<String>,
    ready: Vec<RemoteConn>,
    next_id: u64,
}

/// Scores batches across `pimsyn worker-serve` daemons over TCP, leasing
/// connections from a [`RemotePool`].
pub struct RemoteBackend {
    pool: Arc<RemotePool>,
    session: Mutex<RunSession>,
    warned: AtomicBool,
    batches: AtomicUsize,
    jobs: AtomicUsize,
    remote: AtomicUsize,
    fallback: AtomicUsize,
    connects: AtomicUsize,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("pool", &self.pool)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl RemoteBackend {
    /// A backend with a *private* pool over the given worker-daemon roster
    /// (`host:port` each), authenticating every connection with `token`
    /// when one is given. The connections die with the backend — the
    /// classic per-run behavior.
    pub fn new(endpoints: Vec<String>, token: Option<String>) -> Self {
        Self::with_pool(RemotePool::new(endpoints, token))
    }

    /// A backend leasing connections from an existing (typically shared)
    /// pool. Sessions are still per run: every leased connection
    /// re-handshakes with this run's init line, so model and hardware
    /// always ship correctly; the connections themselves outlive the run
    /// and return to the pool on [`flush`](EvalBackend::flush).
    pub fn with_pool(pool: Arc<RemotePool>) -> Self {
        Self {
            pool,
            session: Mutex::new(RunSession {
                init_line: None,
                ready: Vec::new(),
                next_id: 0,
            }),
            warned: AtomicBool::new(false),
            batches: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
            remote: AtomicUsize::new(0),
            fallback: AtomicUsize::new(0),
            connects: AtomicUsize::new(0),
        }
    }

    /// Prints the one-and-only degradation warning: remote scoring is an
    /// optimization, so failures are quiet after the first diagnostic.
    fn warn_once(&self, detail: &str) {
        if !self.warned.swap(true, Ordering::SeqCst) {
            eprintln!("pimsyn: remote evaluation degraded: {detail}; affected chunks are scored inline (results are unaffected)");
        }
    }

    /// Opens this run's session on a connection (fresh or recycled):
    /// `init` → `ready` under the handshake's bounded patience, recording
    /// the negotiated wire mode on the connection and its endpoint.
    fn open_session(conn: &mut RemoteConn, init: &str) -> Result<(), String> {
        let _ = conn.writer.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        let wire = session::open_session_io(&mut conn.writer, &mut conn.reader, init)?;
        let _ = conn.writer.set_read_timeout(Some(SCORE_TIMEOUT));
        conn.wire = wire;
        conn.endpoint
            .protocol
            .store(wire.version(), Ordering::Relaxed);
        Ok(())
    }

    /// Dials one reserved endpoint, runs the transport handshake and opens
    /// the run session.
    fn open_endpoint(&self, endpoint: &Arc<Endpoint>, init: &str) -> Result<RemoteConn, String> {
        let mut conn = self.pool.connect(endpoint)?;
        self.connects.fetch_add(1, Ordering::Relaxed);
        Self::open_session(&mut conn, init)?;
        Ok(conn)
    }

    /// Releases a reservation whose dial/handshake failed and backs its
    /// endpoint off.
    fn fail_reservation(&self, endpoint: &Arc<Endpoint>, detail: &str) {
        let mut health = endpoint.health.lock().expect("endpoint");
        health.live -= 1;
        health.backoff_until = Some(Instant::now() + RECONNECT_BACKOFF);
        drop(health);
        self.warn_once(detail);
    }

    /// Opens sessioned connections until `conns` holds `want` of them (or
    /// the fleet is exhausted). Pool-idle connections are recycled first —
    /// a session re-open is one round trip, a fresh dial is three — then
    /// the remaining shortfall is reserved and dialed *concurrently*, so a
    /// roster with several dead endpoints stalls for one connect timeout,
    /// not one per endpoint. Failures release their slot and back the
    /// endpoint off.
    fn lease_missing(
        &self,
        conns: &mut Vec<RemoteConn>,
        want: usize,
        init: &str,
        stop: StopCheck<'_>,
    ) {
        if stop() {
            return;
        }
        // Recycle idle pooled connections (re-opening this run's session).
        // A recycled connection that fails the re-open is just closed — the
        // daemon may have idle-timed it out long ago, which says nothing
        // about the endpoint's health, so no backoff and no warning; the
        // dial path below still gets its chance.
        while conns.len() < want {
            let Some(mut conn) = self.pool.checkout_idle() else {
                break;
            };
            match Self::open_session(&mut conn, init) {
                Ok(()) => conns.push(conn),
                Err(_) => {
                    conn.endpoint.release_one();
                }
            }
            if stop() {
                return;
            }
        }
        let mut reserved = Vec::new();
        while conns.len() + reserved.len() < want {
            match self.pool.reserve_slot() {
                Some(endpoint) => reserved.push(endpoint),
                None => break,
            }
        }
        match reserved.len() {
            0 => {}
            1 => match self.open_endpoint(&reserved[0], init) {
                Ok(conn) => conns.push(conn),
                Err(detail) => self.handshake_failed(&reserved[0], &detail),
            },
            _ => std::thread::scope(|s| {
                let handles: Vec<_> = reserved
                    .iter()
                    .map(|endpoint| s.spawn(move || self.open_endpoint(endpoint, init)))
                    .collect();
                for (endpoint, handle) in reserved.iter().zip(handles) {
                    match handle.join().expect("endpoint dialer panicked") {
                        Ok(conn) => conns.push(conn),
                        Err(detail) => self.handshake_failed(endpoint, &detail),
                    }
                }
            }),
        }
    }

    /// Routes a failed dial/handshake. A polite [`NO_FREE_SLOTS`] decline
    /// means the daemon is healthy but fully subscribed (by other runs,
    /// or by our own concurrent dials racing the advertised capacity):
    /// shrink our cap to what we actually hold and move on — no warning,
    /// no backoff. Everything else is a real failure.
    fn handshake_failed(&self, endpoint: &Arc<Endpoint>, detail: &str) {
        if detail.contains(NO_FREE_SLOTS) {
            let mut health = endpoint.health.lock().expect("endpoint");
            health.live -= 1;
            health.slots = health.slots.min(health.live.max(1));
        } else {
            self.fail_reservation(endpoint, detail);
        }
    }

    /// Scores one chunk on one connection, recomputing inline when the
    /// connection is missing or fails mid-chunk. Returns the scores, the
    /// still-healthy connection (if any), and the (remote, fallback)
    /// counts.
    fn run_chunk(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        conn: Option<RemoteConn>,
        id_base: u64,
        stop: StopCheck<'_>,
    ) -> (Vec<CandidateScore>, Option<RemoteConn>, usize, usize) {
        if stop() {
            return (vec![CandidateScore::INFEASIBLE; jobs.len()], conn, 0, 0);
        }
        if let Some(mut conn) = conn {
            let started = Instant::now();
            let exchanged = session::exchange_scores_in(
                conn.wire,
                &mut conn.writer,
                &mut conn.reader,
                jobs,
                id_base,
            );
            match exchanged {
                Ok(scores) => {
                    let elapsed = started.elapsed().as_secs_f64();
                    let mut health = conn.endpoint.health.lock().expect("endpoint");
                    health.batch_seconds += elapsed;
                    health.batches += 1;
                    drop(health);
                    return (scores, Some(conn), jobs.len(), 0);
                }
                Err(detail) => {
                    let endpoint = Arc::clone(&conn.endpoint);
                    drop(conn);
                    self.fail_reservation(&endpoint, &format!("{}: {detail}", endpoint.addr));
                }
            }
        }
        let scores = jobs
            .iter()
            .map(|job| {
                if stop() {
                    CandidateScore::INFEASIBLE
                } else {
                    core.score(job.df, job.point, job.gene)
                }
            })
            .collect();
        (scores, None, 0, jobs.len())
    }

    /// How many connections a batch of `jobs` jobs is worth, before the
    /// fleet caps it: at least [`MIN_CHUNK`] jobs per network round trip.
    fn target_connections(jobs: usize) -> usize {
        (jobs / MIN_CHUNK).max(1)
    }
}

impl EvalBackend for RemoteBackend {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn score_batch(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        stop: StopCheck<'_>,
    ) -> Vec<CandidateScore> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(jobs.len(), Ordering::Relaxed);
        if jobs.is_empty() {
            return Vec::new();
        }
        // Registry churn lands here: workers announced since the last
        // batch join the roster, drained/evicted ones retire.
        self.pool.refresh_roster();
        let want = Self::target_connections(jobs.len());

        // Take this run's sessioned connections and an id range under the
        // session lock; dial/handshake the missing connections outside it.
        let (init, mut conns, id_base) = {
            let mut session = self.session.lock().expect("remote session");
            if session.init_line.is_none() {
                session.init_line = Some(session::init_line_for(core));
            }
            let init = session.init_line.clone().expect("just set");
            let take = want.min(session.ready.len());
            let conns: Vec<RemoteConn> = session.ready.drain(..take).collect();
            let id_base = session.next_id;
            session.next_id += jobs.len() as u64;
            (init, conns, id_base)
        };
        // This run's own sessioned connections may sit on endpoints that
        // retired since the last batch; close those now (their chunks, if
        // any, would have been recomputed inline anyway).
        let mut retired = Vec::new();
        conns.retain(|conn| {
            let keep = !conn.endpoint.retired.load(Ordering::SeqCst);
            if !keep {
                retired.push(Arc::clone(&conn.endpoint));
            }
            keep
        });
        for endpoint in retired {
            endpoint.release_one();
        }
        self.lease_missing(&mut conns, want, &init, stop);

        // Count-balanced chunks, one per connection: sizes differ by at
        // most one, so every round trip carries its fair share. With no
        // connection at all the batch runs inline whole.
        let width = conns.len().clamp(1, jobs.len());
        let base = jobs.len() / width;
        let extra = jobs.len() % width;
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(width);
        let mut offset = 0usize;
        for k in 0..width {
            let len = base + usize::from(k < extra);
            ranges.push((offset, offset + len));
            offset += len;
        }

        let mut slots: Vec<Option<RemoteConn>> = conns.into_iter().map(Some).collect();
        slots.resize_with(width, || None);

        let mut out = Vec::with_capacity(jobs.len());
        let mut survivors: Vec<RemoteConn> = Vec::new();
        let mut remote = 0usize;
        let mut fallback = 0usize;
        if width == 1 {
            let (lo, hi) = ranges[0];
            let (scores, conn, r, f) =
                self.run_chunk(core, &jobs[lo..hi], slots[0].take(), id_base, stop);
            out.extend(scores);
            survivors.extend(conn);
            remote += r;
            fallback += f;
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = ranges
                    .iter()
                    .zip(slots.iter_mut())
                    .map(|(&(lo, hi), slot)| {
                        let conn = slot.take();
                        let chunk_base = id_base + lo as u64;
                        s.spawn(move || self.run_chunk(core, &jobs[lo..hi], conn, chunk_base, stop))
                    })
                    .collect();
                // Chunks joined in submission order: deterministic
                // input-order reduction.
                for handle in handles {
                    let (scores, conn, r, f) = handle.join().expect("chunk scorer panicked");
                    out.extend(scores);
                    survivors.extend(conn);
                    remote += r;
                    fallback += f;
                }
            });
        }
        self.remote.fetch_add(remote, Ordering::Relaxed);
        self.fallback.fetch_add(fallback, Ordering::Relaxed);
        self.session
            .lock()
            .expect("remote session")
            .ready
            .extend(survivors);
        out
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            remote_jobs: self.remote.load(Ordering::Relaxed),
            fallback_jobs: self.fallback.load(Ordering::Relaxed),
            worker_spawns: self.connects.load(Ordering::Relaxed),
        }
    }

    /// Ends this run's session: its connections return to the pool alive
    /// (a later run re-opens its own session on them). With a private
    /// pool the connections die when the backend — and with it the pool —
    /// drops; with a shared pool they persist across jobs and amortize
    /// dial + handshake cost over the daemon's lifetime.
    fn flush(&self) {
        let conns = std::mem::take(&mut self.session.lock().expect("remote session").ready);
        self.pool.checkin(conns);
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct FixedDirectory(Mutex<Vec<String>>);

    impl WorkerDirectory for FixedDirectory {
        fn roster(&self) -> Vec<String> {
            self.0.lock().unwrap().clone()
        }
    }

    #[test]
    fn chunk_target_is_latency_aware() {
        // Small batches stay on one connection; larger batches earn one
        // connection per MIN_CHUNK jobs.
        assert_eq!(RemoteBackend::target_connections(1), 1);
        assert_eq!(RemoteBackend::target_connections(MIN_CHUNK - 1), 1);
        assert_eq!(RemoteBackend::target_connections(MIN_CHUNK * 3), 3);
        assert_eq!(RemoteBackend::target_connections(MIN_CHUNK * 3 + 1), 3);
    }

    #[test]
    fn unreachable_roster_reserves_and_releases_slots() {
        // Port 1 on loopback is almost surely closed; and even if a connect
        // somehow succeeded, no handshake answer arrives. Either way the
        // lease must fail cleanly, release its reservation and back off.
        let backend = RemoteBackend::new(vec!["127.0.0.1:1".to_string()], None);
        let mut conns = Vec::new();
        backend.lease_missing(&mut conns, 1, "ignored", &|| false);
        assert!(conns.is_empty());
        let endpoints = backend.pool.endpoints.lock().unwrap();
        let health = endpoints[0].health.lock().unwrap();
        assert_eq!(health.live, 0, "failed lease must release its slot");
        assert!(health.backoff_until.is_some(), "endpoint must back off");
    }

    #[test]
    fn backing_off_endpoint_is_skipped() {
        let pool = RemotePool::new(vec!["127.0.0.1:1".to_string()], None);
        {
            let endpoints = pool.endpoints.lock().unwrap();
            endpoints[0].health.lock().unwrap().backoff_until =
                Some(Instant::now() + RECONNECT_BACKOFF);
        }
        assert!(pool.reserve_slot().is_none());
        // An expired backoff admits reservations again.
        {
            let endpoints = pool.endpoints.lock().unwrap();
            endpoints[0].health.lock().unwrap().backoff_until =
                Some(Instant::now() - Duration::from_secs(1));
        }
        assert!(pool.reserve_slot().is_some());
    }

    #[test]
    fn empty_roster_without_directory_scores_nothing_remotely() {
        let pool = RemotePool::new(Vec::new(), None);
        pool.refresh_roster(); // no directory: a no-op, not a panic
        assert!(pool.reserve_slot().is_none());
        assert_eq!(pool.fleet_snapshot(), RemoteFleetSnapshot::default());
    }

    #[test]
    fn directory_churn_grows_and_retires_the_roster() {
        let pool = RemotePool::new(vec!["127.0.0.1:7001".to_string()], None);
        let directory = Arc::new(FixedDirectory(Mutex::new(vec![
            "127.0.0.1:7002".to_string(),
            "127.0.0.1:7003".to_string(),
        ])));
        pool.set_directory(Arc::clone(&directory) as Arc<dyn WorkerDirectory>);
        pool.refresh_roster();
        let snapshot = pool.fleet_snapshot();
        let addrs: Vec<&str> = snapshot.endpoints.iter().map(|e| e.addr.as_str()).collect();
        assert_eq!(
            addrs,
            vec!["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]
        );
        assert!(!snapshot.endpoints[0].discovered, "static seed");
        assert!(snapshot.endpoints[1].discovered);

        // A worker leaving the directory retires its endpoint; the static
        // seed stays no matter what the directory says.
        *directory.0.lock().unwrap() = vec!["127.0.0.1:7003".to_string()];
        pool.refresh_roster();
        let snapshot = pool.fleet_snapshot();
        let addrs: Vec<&str> = snapshot.endpoints.iter().map(|e| e.addr.as_str()).collect();
        assert_eq!(addrs, vec!["127.0.0.1:7001", "127.0.0.1:7003"]);

        // A drained worker re-announcing re-enters as a fresh endpoint.
        *directory.0.lock().unwrap() =
            vec!["127.0.0.1:7002".to_string(), "127.0.0.1:7003".to_string()];
        pool.refresh_roster();
        assert_eq!(pool.fleet_snapshot().endpoints.len(), 3);
    }

    #[test]
    fn shared_pool_backends_share_the_roster() {
        let pool = RemotePool::new(vec!["127.0.0.1:7001".to_string()], None);
        pool.add_static(&["127.0.0.1:7002".to_string(), "127.0.0.1:7001".to_string()]);
        assert_eq!(pool.fleet_snapshot().endpoints.len(), 2, "no duplicates");
        let a = RemoteBackend::with_pool(Arc::clone(&pool));
        let b = RemoteBackend::with_pool(Arc::clone(&pool));
        assert!(Arc::ptr_eq(&a.pool, &b.pool));
    }
}
