//! The remote backend: scoring candidates on `pimsyn worker-serve` daemons
//! over TCP, speaking the versioned worker [`protocol`](super::protocol)
//! (JSON-lines v1, binary-framed v2 — negotiated per session).
//!
//! Connection ownership and per-run session state are separate layers,
//! mirroring the subprocess backend's pool/backend split:
//!
//! - A [`RemotePool`] owns the TCP *connections* and the endpoint roster.
//!   The roster starts from the statically configured endpoints
//!   (`host:port`, CLI spelling `--backend remote:host1:port,host2:port`)
//!   and, when a [`WorkerDirectory`] is attached (the serve/gateway worker
//!   registry), is re-unioned with the directory's live roster before
//!   every batch — endpoints join as workers announce themselves and
//!   retire as they drain or get evicted. Transport-handshaked
//!   connections are kept *open across runs*: a run returns them to the
//!   pool at flush, and the next run re-opens its own session on them
//!   instead of paying dial + handshake again.
//! - A [`RemoteBackend`] holds one run's *session*: the init line fixing
//!   the run's model/hardware/power/objective and the leased connections
//!   that have already acknowledged it (each at its negotiated protocol
//!   version).
//!
//! Each connection is one worker *slot* on a daemon:
//!
//! 1. **Transport handshake** (once per connection): a `hello` frame
//!    carrying the protocol version and, when configured, a shared auth
//!    token; the daemon answers `welcome` (advertising how many sessions
//!    remain available to this pool, which caps how many connections it
//!    opens to that endpoint) or an `error` frame and a close.
//! 2. **Session** (once per run, re-opened when a connection is recycled):
//!    the stock `init` → `ready` exchange fixing the run's model,
//!    hardware, power, macro mode and objective — and negotiating the
//!    session's protocol version (v2 peers switch to binary frames, v1
//!    peers keep JSON lines).
//! 3. **Scoring**: whole batches in one binary frame (v2) or per-candidate
//!    JSON lines (v1); floats travel as IEEE-754 bit patterns either way —
//!    remote scores are bit-identical to inline ones.
//!
//! **Chunking is latency-aware and throughput-weighted.** The subprocess
//! backend splits every batch across all workers because pipes are cheap;
//! a network round trip is not, so small batches would drown in per-chunk
//! latency. The remote backend instead targets at least
//! [`MIN_JOBS_PER_CHUNK`](super::MIN_JOBS_PER_CHUNK) jobs per connection
//! and hands the batch to the pure [`ChunkPlanner`](super::ChunkPlanner):
//! each connection's share is weighted by its endpoint's estimated
//! throughput — an EWMA of observed exchange rates, seeded from the
//! cumulative batch-latency accounting and decayed back to that seed when
//! a connection fails (a registry eviction resets the estimate entirely,
//! so a re-announced worker starts cold). Each planned chunk is queued as
//! [`PIECES_PER_CHUNK`] requeueable pieces; a connection that drains its
//! own queue *steals the queued tail* of the most backlogged one (the
//! straggler requeue), so one slow worker delays the batch by at most its
//! in-flight piece, not its whole chunk. Scheduling never affects
//! results: every piece keeps its batch offset and scores are reassembled
//! in input order, so any placement is bit-identical to inline.
//!
//! **Multi-session dialing.** An endpoint's connection cap starts at the
//! slot count its registry announcement advertised (1 for static
//! endpoints) and is refined by every `welcome`, so a single job fans out
//! across several sessions of a multi-slot daemon from the first batch.
//!
//! **Failure isolation matches the subprocess backend.** A connection that
//! dies, answers garbage or fails the handshake (including a version
//! mismatch or rejected token) is dropped, its in-flight chunk is
//! recomputed inline, and the endpoint backs off from reconnection
//! attempts for [`RECONNECT_BACKOFF`]. With no reachable endpoint at all,
//! whole batches silently degrade to inline scoring — results are
//! bit-identical either way, so a daemon killed, drained or evicted
//! mid-run never changes a synthesis outcome. The first degradation
//! prints a single stderr warning per run (the only diagnostic; every
//! later failure is silent).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::eval::{CandidateScore, EvalCore};

use super::planner::{ChunkPlanner, ChunkPolicy, MIN_JOBS_PER_CHUNK};
use super::protocol::{hello_line, parse_welcome, NO_FREE_SLOTS};
use super::session::WireMode;
use super::{session, BackendStats, EvalBackend, EvalJob, StopCheck, WorkerDirectory};

/// Resolving + dialing an endpoint that does not answer must not stall the
/// search; connects beyond this are treated as endpoint failures.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the daemon gets to answer the `hello` → `welcome` handshake
/// and the `init` → `ready` session opening.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Socket read timeout while waiting for score responses. Scoring a chunk
/// is CPU-bound work on the daemon, so this is generous; it exists so a
/// wedged daemon stalls its chunk for a bounded time (the chunk then
/// recomputes inline) instead of hanging the run forever.
const SCORE_TIMEOUT: Duration = Duration::from_secs(300);

/// How long an endpoint is skipped after a connect/handshake/session
/// failure before reconnection is attempted again.
pub(crate) const RECONNECT_BACKOFF: Duration = Duration::from_secs(30);

/// How many requeueable pieces an adaptive chunk is split into (each at
/// least [`MIN_JOBS_PER_CHUNK`] jobs, except a short tail). More pieces
/// requeue stragglers at finer grain but pay more round trips; four keeps
/// the extra latency marginal while bounding a straggler's hold on the
/// batch to a quarter of its chunk.
const PIECES_PER_CHUNK: usize = 4;

/// Smoothing factor of the per-endpoint throughput EWMA: each observed
/// exchange rate contributes this fraction. High enough that a worker
/// whose load changed re-converges within a few batches, low enough that
/// one noisy exchange cannot swing the plan.
const EWMA_ALPHA: f64 = 0.4;

/// Per-endpoint connection accounting.
struct EndpointHealth {
    /// Our connection cap for this endpoint: seeded from the slot count
    /// its registry announcement advertised (`1` for static endpoints),
    /// refined by the capacity the daemon advertised in its last
    /// `welcome`.
    slots: usize,
    /// Connections currently open (idle in the pool, sessioned to a run,
    /// or reserved for an in-flight dial).
    live: usize,
    /// Until when reconnection attempts are suspended after a failure.
    backoff_until: Option<Instant>,
    /// Cumulative wall-clock seconds spent in successful scoring round
    /// trips to this endpoint (send chunk -> receive scores).
    batch_seconds: f64,
    /// Successful scoring round trips, the divisor for `batch_seconds`.
    batches: usize,
    /// Candidates scored by this endpoint (across all round trips).
    jobs: usize,
    /// EWMA of observed scoring throughput (candidates per second per
    /// connection), the [`ChunkPlanner`] weight. `None` until the first
    /// exchange; cleared back to the cumulative-average seed on
    /// connection failure and zeroed entirely on registry eviction, so
    /// reconnecting or re-announced workers never inherit stale
    /// measurements.
    ewma_cand_per_sec: Option<f64>,
}

impl EndpointHealth {
    /// Records one successful scoring exchange and folds its rate into
    /// the throughput EWMA.
    fn observe_exchange(&mut self, jobs: usize, seconds: f64) {
        self.batch_seconds += seconds;
        self.batches += 1;
        self.jobs += jobs;
        let rate = jobs as f64 / seconds.max(1e-9);
        self.ewma_cand_per_sec = Some(match self.ewma_cand_per_sec {
            None => rate,
            Some(prev) => prev * (1.0 - EWMA_ALPHA) + rate * EWMA_ALPHA,
        });
    }

    /// The planner weight: the EWMA when one is live, else the cumulative
    /// average rate (the seed from the batch-latency accounting), else
    /// `None` (a cold endpoint — the planner fills in the fleet mean).
    fn throughput_estimate(&self) -> Option<f64> {
        self.ewma_cand_per_sec.or_else(|| {
            (self.batches > 0 && self.batch_seconds > 0.0)
                .then(|| self.jobs as f64 / self.batch_seconds)
        })
    }

    /// Forgets every throughput/latency measurement — the registry
    /// evicted (or re-registered) this endpoint, so whatever answers at
    /// the address next may be a different worker entirely and must start
    /// from a cold estimate.
    fn reset_estimates(&mut self) {
        self.batch_seconds = 0.0;
        self.batches = 0;
        self.jobs = 0;
        self.ewma_cand_per_sec = None;
    }
}

/// One endpoint of the fleet. Connections hold an `Arc` to their endpoint
/// (not an index), so accounting stays correct while the roster itself
/// grows and shrinks under registry churn.
struct Endpoint {
    addr: String,
    /// Discovered through the [`WorkerDirectory`] (vs statically
    /// configured). Only discovered endpoints are retired when they leave
    /// the directory's roster; static ones are permanent.
    discovered: bool,
    /// Set when the endpoint left the roster; surviving connections are
    /// closed as they return to the pool.
    retired: AtomicBool,
    /// Protocol version negotiated by the most recent session on this
    /// endpoint (`0` until one succeeds) — observability only.
    protocol: AtomicU32,
    /// The directory registration epoch this endpoint was last seen at
    /// (`0` when the directory does not track epochs). A changed epoch
    /// means the worker deregistered and re-announced between roster
    /// refreshes — its measurements reset even though the address never
    /// left the roster.
    epoch: AtomicU64,
    health: Mutex<EndpointHealth>,
}

impl Endpoint {
    fn new(addr: String, discovered: bool) -> Arc<Self> {
        Self::with_hints(addr, discovered, 1, 0)
    }

    /// An endpoint seeded with the slot count and registration epoch its
    /// directory entry advertised, so multi-session dialing starts before
    /// the first `welcome` refines the cap.
    fn with_hints(addr: String, discovered: bool, slots: usize, epoch: u64) -> Arc<Self> {
        Arc::new(Self {
            addr,
            discovered,
            retired: AtomicBool::new(false),
            protocol: AtomicU32::new(0),
            epoch: AtomicU64::new(epoch),
            health: Mutex::new(EndpointHealth {
                slots: slots.max(1),
                live: 0,
                backoff_until: None,
                batch_seconds: 0.0,
                batches: 0,
                jobs: 0,
                ewma_cand_per_sec: None,
            }),
        })
    }

    fn release_one(&self) {
        self.health.lock().expect("endpoint").live -= 1;
    }

    /// The current planner weight (see
    /// [`EndpointHealth::throughput_estimate`]).
    fn throughput_estimate(&self) -> Option<f64> {
        self.health.lock().expect("endpoint").throughput_estimate()
    }

    /// Records one successful scoring exchange.
    fn observe_exchange(&self, jobs: usize, seconds: f64) {
        self.health
            .lock()
            .expect("endpoint")
            .observe_exchange(jobs, seconds);
    }
}

/// One live TCP connection: transport handshake done, possibly sessioned
/// at the negotiated wire mode.
struct RemoteConn {
    endpoint: Arc<Endpoint>,
    /// The framing the current session negotiated (v1 until a session is
    /// opened; re-negotiated on every re-init).
    wire: WireMode,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One endpoint's status in a [`RemoteFleetSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteEndpointStatus {
    /// The endpoint's `host:port`.
    pub addr: String,
    /// Whether it was discovered through a worker directory (vs statically
    /// configured).
    pub discovered: bool,
    /// Connections currently open to it (idle + sessioned + reserved).
    pub live: usize,
    /// Protocol version of the most recent session (`0` = none yet).
    pub protocol: u32,
    /// Cumulative wall-clock seconds this pool spent in successful scoring
    /// round trips to the endpoint. With [`batches`] this yields the
    /// mean per-batch scoring latency (a Prometheus summary pair).
    ///
    /// [`batches`]: RemoteEndpointStatus::batches
    pub batch_seconds: f64,
    /// Successful scoring round trips to the endpoint.
    pub batches: usize,
    /// Candidates the endpoint scored (across all round trips) — the
    /// direct read on how the adaptive planner is sharing batches.
    pub jobs: usize,
    /// Estimated scoring throughput (candidates per second per
    /// connection): the live planner weight, `None` while the endpoint is
    /// cold (no measurement yet, or reset by a registry eviction).
    pub throughput: Option<f64>,
}

/// A point-in-time view of a [`RemotePool`] for metrics and summaries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RemoteFleetSnapshot {
    /// Every endpoint currently in the roster, in roster order.
    pub endpoints: Vec<RemoteEndpointStatus>,
    /// Connections open across all endpoints (idle + sessioned).
    pub live_connections: usize,
    /// Of those, connections idle in the pool between runs.
    pub idle_connections: usize,
    /// TCP connects + handshakes performed over the pool's lifetime — the
    /// measure of how well persistent connections amortize dial cost.
    pub connects: usize,
    /// Straggler requeues over the pool's lifetime: queued chunk-tail
    /// pieces an idle connection took over from a backlogged one.
    pub requeued_pieces: usize,
}

/// A pool of transport-handshaked worker connections and the endpoint
/// roster they belong to, shareable across runs.
///
/// The pool knows nothing about any particular synthesis run: it dials,
/// handshakes, stores and retires raw connections. Run-specific state
/// (the init line, which connections acknowledged it, at which protocol
/// version) lives in the [`RemoteBackend`] leasing from it. Dropping the
/// pool closes every idle connection.
pub struct RemotePool {
    token: Option<String>,
    /// The live roster: static seeds plus directory-discovered endpoints.
    endpoints: Mutex<Vec<Arc<Endpoint>>>,
    /// Transport-handshaked connections idle between runs. Their last
    /// session (if any) belongs to a finished run; leasing re-opens it.
    idle: Mutex<Vec<RemoteConn>>,
    /// The dynamic-roster hook (the serve/gateway worker registry).
    directory: Mutex<Option<Arc<dyn WorkerDirectory>>>,
    /// Round-robin cursor so consecutive leases spread across the roster.
    rotate: AtomicUsize,
    /// Cumulative connects over the pool's lifetime.
    connects: AtomicUsize,
    /// Cumulative straggler requeues (stolen chunk-tail pieces).
    requeues: AtomicUsize,
}

impl std::fmt::Debug for RemotePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let endpoints = self.endpoints.lock().expect("remote roster");
        f.debug_struct("RemotePool")
            .field(
                "endpoints",
                &endpoints.iter().map(|e| &e.addr).collect::<Vec<_>>(),
            )
            .field("idle", &self.idle.lock().expect("remote idle").len())
            .field("authenticated", &self.token.is_some())
            .field("connects", &self.connects.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Drop for RemotePool {
    fn drop(&mut self) {
        // Close idle connections deterministically (the daemon's slots free
        // on EOF) and release their accounting.
        for conn in self.idle.lock().expect("remote idle").drain(..) {
            conn.endpoint.release_one();
        }
    }
}

impl RemotePool {
    /// A pool over the given static endpoint roster (`host:port` each),
    /// authenticating every connection with `token` when one is given. The
    /// roster may be empty when a [`WorkerDirectory`] will supply it.
    pub fn new(endpoints: Vec<String>, token: Option<String>) -> Arc<Self> {
        Arc::new(Self {
            token,
            endpoints: Mutex::new(
                endpoints
                    .into_iter()
                    .map(|addr| Endpoint::new(addr, false))
                    .collect(),
            ),
            idle: Mutex::new(Vec::new()),
            directory: Mutex::new(None),
            rotate: AtomicUsize::new(0),
            connects: AtomicUsize::new(0),
            requeues: AtomicUsize::new(0),
        })
    }

    /// Attaches (or replaces) the dynamic-roster hook. From the next
    /// batch on, the roster is re-unioned with the directory before every
    /// lease.
    pub fn set_directory(&self, directory: Arc<dyn WorkerDirectory>) {
        *self.directory.lock().expect("remote directory") = Some(directory);
    }

    /// Merges more statically configured endpoints into the roster
    /// (duplicates ignored) — a later run configured with extra endpoints
    /// widens the shared pool instead of being silently capped to the
    /// first run's roster.
    pub fn add_static(&self, addrs: &[String]) {
        let mut endpoints = self.endpoints.lock().expect("remote roster");
        for addr in addrs {
            if !endpoints.iter().any(|e| &e.addr == addr) {
                endpoints.push(Endpoint::new(addr.clone(), false));
            }
        }
    }

    /// Re-unions the roster with the directory (when one is attached):
    /// newly announced workers join as discovered endpoints — seeded with
    /// the slot count their registration advertised, so multi-session
    /// dialing starts on the first batch — and discovered endpoints that
    /// left (drained or evicted) are retired: their throughput estimates
    /// are reset, their idle connections are closed, and sessioned ones
    /// close as they return. An endpoint whose registration *epoch*
    /// changed (it deregistered and re-announced between refreshes, so
    /// the address never visibly left the roster) also resets its
    /// estimates: whatever answers there now starts from a cold weight.
    /// Static endpoints are never retired.
    pub(crate) fn refresh_roster(&self) {
        let directory = self.directory.lock().expect("remote directory").clone();
        let Some(directory) = directory else { return };
        let mut entries = directory.entries();
        entries.sort_by(|a, b| a.addr.cmp(&b.addr));
        let mut endpoints = self.endpoints.lock().expect("remote roster");
        endpoints.retain(|endpoint| {
            let keep = !endpoint.discovered || entries.iter().any(|e| e.addr == endpoint.addr);
            if !keep {
                endpoint.retired.store(true, Ordering::SeqCst);
                // The eviction fix: a worker re-announced at this address
                // later must start from a cold estimate, and connections
                // still holding this endpoint must stop feeding a stale
                // weight.
                endpoint.health.lock().expect("endpoint").reset_estimates();
            }
            keep
        });
        for entry in entries {
            match endpoints.iter().find(|e| e.addr == entry.addr) {
                Some(endpoint) => {
                    let prev = endpoint.epoch.swap(entry.epoch, Ordering::SeqCst);
                    if entry.epoch != 0 && prev != 0 && prev != entry.epoch {
                        let mut health = endpoint.health.lock().expect("endpoint");
                        health.reset_estimates();
                        health.slots = entry.slots.max(1);
                    } else if endpoint.protocol.load(Ordering::Relaxed) == 0 {
                        // No session yet: keep the advertised slot count
                        // fresh until a `welcome` takes over.
                        let mut health = endpoint.health.lock().expect("endpoint");
                        health.slots = health.slots.max(entry.slots);
                    }
                }
                None => {
                    endpoints.push(Endpoint::with_hints(
                        entry.addr,
                        true,
                        entry.slots,
                        entry.epoch,
                    ));
                }
            }
        }
        drop(endpoints);
        // Idle connections on retired endpoints are useless; close them now.
        let mut idle = self.idle.lock().expect("remote idle");
        let (keep, retired): (Vec<_>, Vec<_>) = idle
            .drain(..)
            .partition(|conn| !conn.endpoint.retired.load(Ordering::SeqCst));
        *idle = keep;
        drop(idle);
        for conn in retired {
            conn.endpoint.release_one();
        }
    }

    /// Reserves a connection slot on the next endpoint that is neither
    /// retired, backing off, nor at its advertised capacity. The
    /// reservation counts as live until released or converted into a real
    /// connection.
    fn reserve_slot(&self) -> Option<Arc<Endpoint>> {
        let endpoints: Vec<Arc<Endpoint>> = self.endpoints.lock().expect("remote roster").clone();
        let n = endpoints.len();
        if n == 0 {
            return None;
        }
        let start = self.rotate.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        for k in 0..n {
            let endpoint = &endpoints[(start + k) % n];
            if endpoint.retired.load(Ordering::SeqCst) {
                continue;
            }
            let mut health = endpoint.health.lock().expect("endpoint");
            let backing_off = health.backoff_until.is_some_and(|until| now < until);
            if !backing_off && health.live < health.slots {
                health.live += 1;
                return Some(Arc::clone(endpoint));
            }
        }
        None
    }

    /// Takes one idle (transport-handshaked, session-stale) connection,
    /// skipping — and closing — any whose endpoint retired meanwhile.
    fn checkout_idle(&self) -> Option<RemoteConn> {
        loop {
            let conn = self.idle.lock().expect("remote idle").pop()?;
            if conn.endpoint.retired.load(Ordering::SeqCst) {
                conn.endpoint.release_one();
                continue;
            }
            return Some(conn);
        }
    }

    /// Returns still-healthy connections to the pool (their session state
    /// is stale; the next lease re-opens it). Connections on retired
    /// endpoints are closed instead.
    fn checkin(&self, conns: Vec<RemoteConn>) {
        let mut idle = self.idle.lock().expect("remote idle");
        for conn in conns {
            if conn.endpoint.retired.load(Ordering::SeqCst) {
                conn.endpoint.release_one();
            } else {
                idle.push(conn);
            }
        }
    }

    /// Dials one endpoint and runs the transport handshake against an
    /// earlier reservation. On success the connection's read timeout is
    /// left at [`SCORE_TIMEOUT`].
    fn connect(&self, endpoint: &Arc<Endpoint>) -> Result<RemoteConn, String> {
        let addr = &endpoint.addr;
        let writer = super::dial_bounded(addr, CONNECT_TIMEOUT)?;
        let _ = writer.set_nodelay(true);
        writer
            .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
            .map_err(|e| format!("cannot configure {addr}: {e}"))?;
        let reader = writer
            .try_clone()
            .map_err(|e| format!("cannot clone the {addr} stream: {e}"))?;
        let mut conn = RemoteConn {
            endpoint: Arc::clone(endpoint),
            wire: WireMode::V1,
            writer,
            reader: BufReader::new(reader),
        };
        writeln!(conn.writer, "{}", hello_line(self.token.as_deref()))
            .and_then(|()| conn.writer.flush())
            .map_err(|e| format!("handshake write to {addr} failed: {e}"))?;
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            Ok(_) => return Err(format!("{addr} closed the connection during handshake")),
            Err(e) => return Err(format!("handshake read from {addr} failed: {e}")),
        }
        let advertised = parse_welcome(line.trim()).map_err(|e| format!("{addr}: {e}"))?;
        conn.writer
            .set_read_timeout(Some(SCORE_TIMEOUT))
            .map_err(|e| format!("cannot configure {addr}: {e}"))?;
        self.connects.fetch_add(1, Ordering::Relaxed);
        {
            // `welcome` advertises the sessions still available to *us* at
            // handshake time, including this one — so a daemon shared by
            // several runs throttles each to what actually remains. Our
            // per-endpoint cap is what we already hold (`live` includes
            // this connection's reservation) plus what remains beyond it.
            let mut health = endpoint.health.lock().expect("endpoint");
            health.slots = (health.live + advertised).saturating_sub(1).max(1);
        }
        Ok(conn)
    }

    /// A point-in-time view for metrics and summaries.
    pub fn fleet_snapshot(&self) -> RemoteFleetSnapshot {
        let endpoints = self.endpoints.lock().expect("remote roster");
        let statuses: Vec<RemoteEndpointStatus> = endpoints
            .iter()
            .map(|e| {
                let health = e.health.lock().expect("endpoint");
                RemoteEndpointStatus {
                    addr: e.addr.clone(),
                    discovered: e.discovered,
                    live: health.live,
                    protocol: e.protocol.load(Ordering::Relaxed),
                    batch_seconds: health.batch_seconds,
                    batches: health.batches,
                    jobs: health.jobs,
                    throughput: health.throughput_estimate(),
                }
            })
            .collect();
        drop(endpoints);
        RemoteFleetSnapshot {
            live_connections: statuses.iter().map(|s| s.live).sum(),
            idle_connections: self.idle.lock().expect("remote idle").len(),
            connects: self.connects.load(Ordering::Relaxed),
            requeued_pieces: self.requeues.load(Ordering::Relaxed),
            endpoints: statuses,
        }
    }
}

/// One run's session over the leased connections: the init line plus the
/// connections that have already acknowledged it, idle between batches.
struct RunSession {
    init_line: Option<String>,
    ready: Vec<RemoteConn>,
    next_id: u64,
}

/// Scores batches across `pimsyn worker-serve` daemons over TCP, leasing
/// connections from a [`RemotePool`].
pub struct RemoteBackend {
    pool: Arc<RemotePool>,
    policy: ChunkPolicy,
    session: Mutex<RunSession>,
    warned: AtomicBool,
    batches: AtomicUsize,
    jobs: AtomicUsize,
    remote: AtomicUsize,
    fallback: AtomicUsize,
    connects: AtomicUsize,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field("pool", &self.pool)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl RemoteBackend {
    /// A backend with a *private* pool over the given worker-daemon roster
    /// (`host:port` each), authenticating every connection with `token`
    /// when one is given. The connections die with the backend — the
    /// classic per-run behavior.
    pub fn new(endpoints: Vec<String>, token: Option<String>) -> Self {
        Self::with_pool(RemotePool::new(endpoints, token))
    }

    /// A backend leasing connections from an existing (typically shared)
    /// pool. Sessions are still per run: every leased connection
    /// re-handshakes with this run's init line, so model and hardware
    /// always ship correctly; the connections themselves outlive the run
    /// and return to the pool on [`flush`](EvalBackend::flush).
    pub fn with_pool(pool: Arc<RemotePool>) -> Self {
        Self::with_pool_policy(pool, ChunkPolicy::Adaptive)
    }

    /// [`with_pool`](Self::with_pool) with an explicit [`ChunkPolicy`].
    /// [`ChunkPolicy::CountBalanced`] restores the pre-adaptive equal
    /// split with no straggler requeue — the benchmark baseline.
    pub fn with_pool_policy(pool: Arc<RemotePool>, policy: ChunkPolicy) -> Self {
        Self {
            pool,
            policy,
            session: Mutex::new(RunSession {
                init_line: None,
                ready: Vec::new(),
                next_id: 0,
            }),
            warned: AtomicBool::new(false),
            batches: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
            remote: AtomicUsize::new(0),
            fallback: AtomicUsize::new(0),
            connects: AtomicUsize::new(0),
        }
    }

    /// Prints the one-and-only degradation warning: remote scoring is an
    /// optimization, so failures are quiet after the first diagnostic.
    fn warn_once(&self, detail: &str) {
        if !self.warned.swap(true, Ordering::SeqCst) {
            eprintln!("pimsyn: remote evaluation degraded: {detail}; affected chunks are scored inline (results are unaffected)");
        }
    }

    /// Opens this run's session on a connection (fresh or recycled):
    /// `init` → `ready` under the handshake's bounded patience, recording
    /// the negotiated wire mode on the connection and its endpoint.
    fn open_session(conn: &mut RemoteConn, init: &str) -> Result<(), String> {
        let _ = conn.writer.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        let wire = session::open_session_io(&mut conn.writer, &mut conn.reader, init)?;
        let _ = conn.writer.set_read_timeout(Some(SCORE_TIMEOUT));
        conn.wire = wire;
        conn.endpoint
            .protocol
            .store(wire.version(), Ordering::Relaxed);
        Ok(())
    }

    /// Dials one reserved endpoint, runs the transport handshake and opens
    /// the run session.
    fn open_endpoint(&self, endpoint: &Arc<Endpoint>, init: &str) -> Result<RemoteConn, String> {
        let mut conn = self.pool.connect(endpoint)?;
        self.connects.fetch_add(1, Ordering::Relaxed);
        Self::open_session(&mut conn, init)?;
        Ok(conn)
    }

    /// Releases a reservation whose dial/handshake failed and backs its
    /// endpoint off. The throughput EWMA decays back to its cumulative-
    /// average seed: the worker that reconnects after the backoff may be
    /// restarted or differently loaded, so the recent-history estimate is
    /// not trusted across the failure.
    fn fail_reservation(&self, endpoint: &Arc<Endpoint>, detail: &str) {
        let mut health = endpoint.health.lock().expect("endpoint");
        health.live -= 1;
        health.backoff_until = Some(Instant::now() + RECONNECT_BACKOFF);
        health.ewma_cand_per_sec = None;
        drop(health);
        self.warn_once(detail);
    }

    /// Opens sessioned connections until `conns` holds `want` of them (or
    /// the fleet is exhausted). Pool-idle connections are recycled first —
    /// a session re-open is one round trip, a fresh dial is three — then
    /// the remaining shortfall is reserved and dialed *concurrently*, so a
    /// roster with several dead endpoints stalls for one connect timeout,
    /// not one per endpoint. Failures release their slot and back the
    /// endpoint off.
    fn lease_missing(
        &self,
        conns: &mut Vec<RemoteConn>,
        want: usize,
        init: &str,
        stop: StopCheck<'_>,
    ) {
        if stop() {
            return;
        }
        // Recycle idle pooled connections (re-opening this run's session).
        // A recycled connection that fails the re-open is just closed — the
        // daemon may have idle-timed it out long ago, which says nothing
        // about the endpoint's health, so no backoff and no warning; the
        // dial path below still gets its chance.
        while conns.len() < want {
            let Some(mut conn) = self.pool.checkout_idle() else {
                break;
            };
            match Self::open_session(&mut conn, init) {
                Ok(()) => conns.push(conn),
                Err(_) => {
                    conn.endpoint.release_one();
                }
            }
            if stop() {
                return;
            }
        }
        let mut reserved = Vec::new();
        while conns.len() + reserved.len() < want {
            match self.pool.reserve_slot() {
                Some(endpoint) => reserved.push(endpoint),
                None => break,
            }
        }
        match reserved.len() {
            0 => {}
            1 => match self.open_endpoint(&reserved[0], init) {
                Ok(conn) => conns.push(conn),
                Err(detail) => self.handshake_failed(&reserved[0], &detail),
            },
            _ => std::thread::scope(|s| {
                let handles: Vec<_> = reserved
                    .iter()
                    .map(|endpoint| s.spawn(move || self.open_endpoint(endpoint, init)))
                    .collect();
                for (endpoint, handle) in reserved.iter().zip(handles) {
                    match handle.join().expect("endpoint dialer panicked") {
                        Ok(conn) => conns.push(conn),
                        Err(detail) => self.handshake_failed(endpoint, &detail),
                    }
                }
            }),
        }
    }

    /// Routes a failed dial/handshake. A polite [`NO_FREE_SLOTS`] decline
    /// means the daemon is healthy but fully subscribed (by other runs,
    /// or by our own concurrent dials racing the advertised capacity):
    /// shrink our cap to what we actually hold and move on — no warning,
    /// no backoff. Everything else is a real failure.
    fn handshake_failed(&self, endpoint: &Arc<Endpoint>, detail: &str) {
        if detail.contains(NO_FREE_SLOTS) {
            let mut health = endpoint.health.lock().expect("endpoint");
            health.live -= 1;
            health.slots = health.slots.min(health.live.max(1));
        } else {
            self.fail_reservation(endpoint, detail);
        }
    }

    /// Scores one chunk on one connection, recomputing inline when the
    /// connection is missing or fails mid-chunk. Returns the scores, the
    /// still-healthy connection (if any), and the (remote, fallback)
    /// counts.
    fn run_chunk(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        conn: Option<RemoteConn>,
        id_base: u64,
        stop: StopCheck<'_>,
    ) -> (Vec<CandidateScore>, Option<RemoteConn>, usize, usize) {
        if stop() {
            return (vec![CandidateScore::INFEASIBLE; jobs.len()], conn, 0, 0);
        }
        if let Some(mut conn) = conn {
            let started = Instant::now();
            let exchanged = session::exchange_scores_in(
                conn.wire,
                &mut conn.writer,
                &mut conn.reader,
                jobs,
                id_base,
            );
            match exchanged {
                Ok(scores) => {
                    let elapsed = started.elapsed().as_secs_f64();
                    conn.endpoint.observe_exchange(jobs.len(), elapsed);
                    return (scores, Some(conn), jobs.len(), 0);
                }
                Err(detail) => {
                    let endpoint = Arc::clone(&conn.endpoint);
                    drop(conn);
                    self.fail_reservation(&endpoint, &format!("{}: {detail}", endpoint.addr));
                }
            }
        }
        let scores = jobs
            .iter()
            .map(|job| {
                if stop() {
                    CandidateScore::INFEASIBLE
                } else {
                    core.score(job.df, job.point, job.gene)
                }
            })
            .collect();
        (scores, None, 0, jobs.len())
    }

    /// How many connections a batch of `jobs` jobs is worth, before the
    /// fleet caps it: at least [`MIN_JOBS_PER_CHUNK`] jobs per network
    /// round trip.
    fn target_connections(jobs: usize) -> usize {
        (jobs / MIN_JOBS_PER_CHUNK).max(1)
    }
}

/// The shared queue of batch pieces the scorer threads drain. Each
/// connection owns one FIFO of contiguous `(lo, hi)` job ranges — its
/// planned chunk, pre-split into pieces — and pops from its own queue
/// front first. A connection whose queue runs dry *steals* from the back
/// of the most-backlogged queue: that tail piece is exactly the
/// "remaining tail of an unfinished chunk", requeued onto an idle
/// connection instead of waited on. Pieces carry their batch offsets, so
/// wherever a piece runs its scores land at the same input positions.
struct PieceBoard {
    queues: Mutex<Vec<VecDeque<(usize, usize)>>>,
}

impl PieceBoard {
    fn new(queues: Vec<VecDeque<(usize, usize)>>) -> Self {
        Self {
            queues: Mutex::new(queues),
        }
    }

    /// Next piece for connection `own`: its own front, else the back of
    /// the longest-tailed other queue. The `bool` is true for a steal.
    fn pop(&self, own: usize) -> Option<(usize, usize, bool)> {
        let mut queues = self.queues.lock().expect("piece board");
        if let Some((lo, hi)) = queues[own].pop_front() {
            return Some((lo, hi, false));
        }
        let victim = (0..queues.len())
            .filter(|&k| k != own)
            .max_by_key(|&k| queues[k].iter().map(|&(lo, hi)| hi - lo).sum::<usize>())
            .filter(|&k| !queues[k].is_empty())?;
        let (lo, hi) = queues[victim].pop_back().expect("non-empty victim");
        Some((lo, hi, true))
    }
}

impl EvalBackend for RemoteBackend {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn score_batch(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        stop: StopCheck<'_>,
    ) -> Vec<CandidateScore> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(jobs.len(), Ordering::Relaxed);
        if jobs.is_empty() {
            return Vec::new();
        }
        // Registry churn lands here: workers announced since the last
        // batch join the roster, drained/evicted ones retire.
        self.pool.refresh_roster();
        let want = Self::target_connections(jobs.len());

        // Take this run's sessioned connections and an id range under the
        // session lock; dial/handshake the missing connections outside it.
        let (init, mut conns, id_base) = {
            let mut session = self.session.lock().expect("remote session");
            if session.init_line.is_none() {
                session.init_line = Some(session::init_line_for(core));
            }
            let init = session.init_line.clone().expect("just set");
            let take = want.min(session.ready.len());
            let conns: Vec<RemoteConn> = session.ready.drain(..take).collect();
            let id_base = session.next_id;
            session.next_id += jobs.len() as u64;
            (init, conns, id_base)
        };
        // This run's own sessioned connections may sit on endpoints that
        // retired since the last batch; close those now (their chunks, if
        // any, would have been recomputed inline anyway).
        let mut retired = Vec::new();
        conns.retain(|conn| {
            let keep = !conn.endpoint.retired.load(Ordering::SeqCst);
            if !keep {
                retired.push(Arc::clone(&conn.endpoint));
            }
            keep
        });
        for endpoint in retired {
            endpoint.release_one();
        }
        self.lease_missing(&mut conns, want, &init, stop);

        // Throughput-weighted chunks, one per connection (equal-weighted
        // under [`ChunkPolicy::CountBalanced`]). With no connection at all
        // the batch runs inline whole.
        let width = conns.len().clamp(1, jobs.len());

        let mut out = Vec::with_capacity(jobs.len());
        let mut survivors: Vec<RemoteConn> = Vec::new();
        let mut remote = 0usize;
        let mut fallback = 0usize;
        // A tiny batch can earn fewer chunks than we hold connections;
        // park the surplus back in the session rather than scoring with
        // sub-minimum chunks.
        let mut conns = conns;
        while conns.len() > width {
            survivors.extend(conns.pop());
        }
        if width <= 1 {
            let conn = conns.into_iter().next();
            let (scores, conn, r, f) = self.run_chunk(core, jobs, conn, id_base, stop);
            out.extend(scores);
            survivors.extend(conn);
            remote += r;
            fallback += f;
        } else {
            let planner = match self.policy {
                ChunkPolicy::Adaptive => ChunkPlanner::new(
                    &conns
                        .iter()
                        .map(|c| c.endpoint.throughput_estimate())
                        .collect::<Vec<_>>(),
                ),
                ChunkPolicy::CountBalanced => ChunkPlanner::count_balanced(width),
            };
            let ranges = planner.plan(jobs.len());
            // Pre-split each planned chunk into pieces so a straggling
            // connection's unfinished tail can be stolen by an idle one.
            // CountBalanced keeps whole chunks: the baseline has no
            // requeue.
            let split = matches!(self.policy, ChunkPolicy::Adaptive);
            let board = PieceBoard::new(
                ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        let mut pieces = VecDeque::new();
                        if hi > lo {
                            let step = if split {
                                (hi - lo).div_ceil(PIECES_PER_CHUNK).max(MIN_JOBS_PER_CHUNK)
                            } else {
                                hi - lo
                            };
                            let mut at = lo;
                            while at < hi {
                                let next = (at + step).min(hi);
                                pieces.push_back((at, next));
                                at = next;
                            }
                        }
                        pieces
                    })
                    .collect(),
            );
            let board = &board;
            let mut pieced: Vec<(usize, Vec<CandidateScore>)> = Vec::new();
            std::thread::scope(|s| {
                let handles: Vec<_> = conns
                    .into_iter()
                    .enumerate()
                    .map(|(k, conn)| {
                        s.spawn(move || {
                            let mut conn = Some(conn);
                            let mut results: Vec<(usize, Vec<CandidateScore>)> = Vec::new();
                            let (mut r, mut f, mut steals) = (0usize, 0usize, 0usize);
                            while let Some((lo, hi, stolen)) = board.pop(k) {
                                steals += usize::from(stolen);
                                let (scores, kept, pr, pf) = self.run_chunk(
                                    core,
                                    &jobs[lo..hi],
                                    conn.take(),
                                    id_base + lo as u64,
                                    stop,
                                );
                                conn = kept;
                                results.push((lo, scores));
                                r += pr;
                                f += pf;
                            }
                            (results, conn, r, f, steals)
                        })
                    })
                    .collect();
                for handle in handles {
                    let (results, conn, r, f, steals) =
                        handle.join().expect("chunk scorer panicked");
                    pieced.extend(results);
                    survivors.extend(conn);
                    remote += r;
                    fallback += f;
                    self.pool.requeues.fetch_add(steals, Ordering::Relaxed);
                }
            });
            // Deterministic input-order reduction: the pieces partition
            // the batch exactly, so reassembling them by offset rebuilds
            // the inline score vector bit for bit no matter where each
            // piece actually ran.
            pieced.sort_unstable_by_key(|&(lo, _)| lo);
            for (_, scores) in pieced {
                out.extend(scores);
            }
        }
        self.remote.fetch_add(remote, Ordering::Relaxed);
        self.fallback.fetch_add(fallback, Ordering::Relaxed);
        self.session
            .lock()
            .expect("remote session")
            .ready
            .extend(survivors);
        out
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            remote_jobs: self.remote.load(Ordering::Relaxed),
            fallback_jobs: self.fallback.load(Ordering::Relaxed),
            worker_spawns: self.connects.load(Ordering::Relaxed),
        }
    }

    /// Ends this run's session: its connections return to the pool alive
    /// (a later run re-opens its own session on them). With a private
    /// pool the connections die when the backend — and with it the pool —
    /// drops; with a shared pool they persist across jobs and amortize
    /// dial + handshake cost over the daemon's lifetime.
    fn flush(&self) {
        let conns = std::mem::take(&mut self.session.lock().expect("remote session").ready);
        self.pool.checkin(conns);
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct FixedDirectory(Mutex<Vec<String>>);

    impl WorkerDirectory for FixedDirectory {
        fn roster(&self) -> Vec<String> {
            self.0.lock().unwrap().clone()
        }
    }

    #[test]
    fn chunk_target_is_latency_aware() {
        // Small batches stay on one connection; larger batches earn one
        // connection per MIN_JOBS_PER_CHUNK jobs.
        assert_eq!(RemoteBackend::target_connections(1), 1);
        assert_eq!(RemoteBackend::target_connections(MIN_JOBS_PER_CHUNK - 1), 1);
        assert_eq!(RemoteBackend::target_connections(MIN_JOBS_PER_CHUNK * 3), 3);
        assert_eq!(
            RemoteBackend::target_connections(MIN_JOBS_PER_CHUNK * 3 + 1),
            3
        );
    }

    #[test]
    fn unreachable_roster_reserves_and_releases_slots() {
        // Port 1 on loopback is almost surely closed; and even if a connect
        // somehow succeeded, no handshake answer arrives. Either way the
        // lease must fail cleanly, release its reservation and back off.
        let backend = RemoteBackend::new(vec!["127.0.0.1:1".to_string()], None);
        let mut conns = Vec::new();
        backend.lease_missing(&mut conns, 1, "ignored", &|| false);
        assert!(conns.is_empty());
        let endpoints = backend.pool.endpoints.lock().unwrap();
        let health = endpoints[0].health.lock().unwrap();
        assert_eq!(health.live, 0, "failed lease must release its slot");
        assert!(health.backoff_until.is_some(), "endpoint must back off");
    }

    #[test]
    fn backing_off_endpoint_is_skipped() {
        let pool = RemotePool::new(vec!["127.0.0.1:1".to_string()], None);
        {
            let endpoints = pool.endpoints.lock().unwrap();
            endpoints[0].health.lock().unwrap().backoff_until =
                Some(Instant::now() + RECONNECT_BACKOFF);
        }
        assert!(pool.reserve_slot().is_none());
        // An expired backoff admits reservations again.
        {
            let endpoints = pool.endpoints.lock().unwrap();
            endpoints[0].health.lock().unwrap().backoff_until =
                Some(Instant::now() - Duration::from_secs(1));
        }
        assert!(pool.reserve_slot().is_some());
    }

    #[test]
    fn empty_roster_without_directory_scores_nothing_remotely() {
        let pool = RemotePool::new(Vec::new(), None);
        pool.refresh_roster(); // no directory: a no-op, not a panic
        assert!(pool.reserve_slot().is_none());
        assert_eq!(pool.fleet_snapshot(), RemoteFleetSnapshot::default());
    }

    #[test]
    fn directory_churn_grows_and_retires_the_roster() {
        let pool = RemotePool::new(vec!["127.0.0.1:7001".to_string()], None);
        let directory = Arc::new(FixedDirectory(Mutex::new(vec![
            "127.0.0.1:7002".to_string(),
            "127.0.0.1:7003".to_string(),
        ])));
        pool.set_directory(Arc::clone(&directory) as Arc<dyn WorkerDirectory>);
        pool.refresh_roster();
        let snapshot = pool.fleet_snapshot();
        let addrs: Vec<&str> = snapshot.endpoints.iter().map(|e| e.addr.as_str()).collect();
        assert_eq!(
            addrs,
            vec!["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]
        );
        assert!(!snapshot.endpoints[0].discovered, "static seed");
        assert!(snapshot.endpoints[1].discovered);

        // A worker leaving the directory retires its endpoint; the static
        // seed stays no matter what the directory says.
        *directory.0.lock().unwrap() = vec!["127.0.0.1:7003".to_string()];
        pool.refresh_roster();
        let snapshot = pool.fleet_snapshot();
        let addrs: Vec<&str> = snapshot.endpoints.iter().map(|e| e.addr.as_str()).collect();
        assert_eq!(addrs, vec!["127.0.0.1:7001", "127.0.0.1:7003"]);

        // A drained worker re-announcing re-enters as a fresh endpoint.
        *directory.0.lock().unwrap() =
            vec!["127.0.0.1:7002".to_string(), "127.0.0.1:7003".to_string()];
        pool.refresh_roster();
        assert_eq!(pool.fleet_snapshot().endpoints.len(), 3);
    }

    #[test]
    fn shared_pool_backends_share_the_roster() {
        let pool = RemotePool::new(vec!["127.0.0.1:7001".to_string()], None);
        pool.add_static(&["127.0.0.1:7002".to_string(), "127.0.0.1:7001".to_string()]);
        assert_eq!(pool.fleet_snapshot().endpoints.len(), 2, "no duplicates");
        let a = RemoteBackend::with_pool(Arc::clone(&pool));
        let b = RemoteBackend::with_pool(Arc::clone(&pool));
        assert!(Arc::ptr_eq(&a.pool, &b.pool));
    }

    use super::super::DirectoryEntry;

    #[derive(Debug)]
    struct EpochDirectory(Mutex<Vec<DirectoryEntry>>);

    impl WorkerDirectory for EpochDirectory {
        fn roster(&self) -> Vec<String> {
            self.0
                .lock()
                .unwrap()
                .iter()
                .map(|e| e.addr.clone())
                .collect()
        }

        fn entries(&self) -> Vec<DirectoryEntry> {
            self.0.lock().unwrap().clone()
        }
    }

    #[test]
    fn advertised_slots_seed_multi_session_dialing() {
        // A registration advertising 3 slots lets one job reserve 3
        // concurrent sessions on the endpoint *before* any welcome has
        // refined the cap.
        let pool = RemotePool::new(Vec::new(), None);
        let directory = Arc::new(EpochDirectory(Mutex::new(vec![DirectoryEntry {
            addr: "127.0.0.1:7101".to_string(),
            slots: 3,
            epoch: 1,
        }])));
        pool.set_directory(Arc::clone(&directory) as Arc<dyn WorkerDirectory>);
        pool.refresh_roster();
        assert!(pool.reserve_slot().is_some());
        assert!(pool.reserve_slot().is_some());
        assert!(pool.reserve_slot().is_some());
        assert!(pool.reserve_slot().is_none(), "capacity is still bounded");
    }

    #[test]
    fn epoch_change_resets_throughput_estimates() {
        let pool = RemotePool::new(Vec::new(), None);
        let directory = Arc::new(EpochDirectory(Mutex::new(vec![DirectoryEntry {
            addr: "127.0.0.1:7102".to_string(),
            slots: 1,
            epoch: 7,
        }])));
        pool.set_directory(Arc::clone(&directory) as Arc<dyn WorkerDirectory>);
        pool.refresh_roster();
        {
            let endpoints = pool.endpoints.lock().unwrap();
            endpoints[0].observe_exchange(100, 1.0);
        }
        // Same epoch across a refresh: the estimate survives.
        pool.refresh_roster();
        {
            let endpoints = pool.endpoints.lock().unwrap();
            assert_eq!(endpoints[0].throughput_estimate(), Some(100.0));
        }
        // The worker restarted between refreshes — the address never left
        // the roster, but the epoch moved. Cold estimate.
        directory.0.lock().unwrap()[0].epoch = 8;
        pool.refresh_roster();
        {
            let endpoints = pool.endpoints.lock().unwrap();
            assert_eq!(
                endpoints[0].throughput_estimate(),
                None,
                "a re-announced worker must not inherit stale measurements"
            );
        }
    }

    #[test]
    fn eviction_resets_estimates_for_reannounced_workers() {
        let pool = RemotePool::new(Vec::new(), None);
        let directory = Arc::new(FixedDirectory(Mutex::new(vec![
            "127.0.0.1:7103".to_string()
        ])));
        pool.set_directory(Arc::clone(&directory) as Arc<dyn WorkerDirectory>);
        pool.refresh_roster();
        let first = {
            let endpoints = pool.endpoints.lock().unwrap();
            endpoints[0].observe_exchange(50, 1.0);
            Arc::clone(&endpoints[0])
        };
        // Evicted from the registry: the endpoint retires and its
        // accumulators zero, so code still holding the Arc reads a cold
        // estimate too.
        *directory.0.lock().unwrap() = Vec::new();
        pool.refresh_roster();
        assert!(first.retired.load(Ordering::SeqCst));
        assert_eq!(first.throughput_estimate(), None);
        // Re-announced at the same address: a fresh endpoint, cold weight.
        *directory.0.lock().unwrap() = vec!["127.0.0.1:7103".to_string()];
        pool.refresh_roster();
        let endpoints = pool.endpoints.lock().unwrap();
        assert_eq!(endpoints[0].throughput_estimate(), None);
    }

    #[test]
    fn connection_failure_decays_ewma_to_cumulative_seed() {
        let backend = RemoteBackend::new(vec!["127.0.0.1:1".to_string()], None);
        let endpoint = Arc::clone(&backend.pool.endpoints.lock().unwrap()[0]);
        endpoint.observe_exchange(10, 1.0);
        endpoint.observe_exchange(40, 1.0);
        assert_ne!(endpoint.throughput_estimate(), Some(25.0), "EWMA leads");
        endpoint.health.lock().unwrap().live = 1;
        backend.fail_reservation(&endpoint, "test failure");
        // The EWMA is forgotten; the cumulative average (50 jobs over 2 s)
        // remains as the cautious seed for the next session.
        assert_eq!(endpoint.throughput_estimate(), Some(25.0));
    }

    #[test]
    fn piece_board_steals_from_the_most_backlogged_tail() {
        let board = PieceBoard::new(vec![
            VecDeque::from(vec![(0, 4)]),
            VecDeque::from(vec![(4, 10), (10, 16), (16, 20)]),
            VecDeque::new(),
        ]);
        assert_eq!(board.pop(0), Some((0, 4, false)), "own queue first");
        // Queue 0 is dry: steal the *tail* of the longest backlog so the
        // victim keeps its earlier (already-planned) pieces in order.
        assert_eq!(board.pop(0), Some((16, 20, true)));
        assert_eq!(board.pop(1), Some((4, 10, false)));
        assert_eq!(board.pop(2), Some((10, 16, true)));
        assert_eq!(board.pop(1), None);
        assert_eq!(board.pop(0), None);
    }
}
