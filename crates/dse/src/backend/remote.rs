//! The remote backend: scoring candidates on `pimsyn worker-serve` daemons
//! over TCP, speaking the same versioned JSON-lines
//! [`protocol`](super::protocol) as the subprocess backend.
//!
//! A [`RemoteBackend`] is configured with a fixed *roster* of endpoints
//! (`host:port`, CLI spelling `--backend remote:host1:port,host2:port`).
//! Each connection it opens is one worker *slot* on a daemon:
//!
//! 1. **Transport handshake** (once per connection): a `hello` frame
//!    carrying the protocol version and, when configured, a shared auth
//!    token; the daemon answers `welcome` (advertising how many sessions
//!    remain available to this backend, which caps how many connections
//!    it opens to that endpoint) or an `error` frame and a close.
//! 2. **Session** (once per run, re-opened when a connection is recycled):
//!    the stock `init` → `ready` exchange fixing the run's model,
//!    hardware, power, macro mode and objective.
//! 3. **Scoring**: `score` requests and responses, floats as
//!    `f64::to_bits` hex — remote scores are bit-identical to inline ones.
//!
//! **Chunking is latency-aware.** The subprocess backend splits every
//! batch across all workers because pipes are cheap; a network round trip
//! is not, so small batches would drown in per-chunk latency. The remote
//! backend instead targets at least [`MIN_CHUNK`] jobs per connection and
//! splits the batch into *count-balanced* chunks (sizes differing by at
//! most one) across however many connections that justifies — one
//! connection scores a small batch whole, large batches fan out across the
//! roster.
//!
//! **Failure isolation matches the subprocess backend.** A connection that
//! dies, answers garbage or fails the handshake (including a version
//! mismatch or rejected token) is dropped, its in-flight chunk is
//! recomputed inline, and the endpoint backs off from reconnection
//! attempts for [`RECONNECT_BACKOFF`]. With no reachable endpoint at all,
//! whole batches silently degrade to inline scoring — results are
//! bit-identical either way, so a daemon killed mid-run never changes a
//! synthesis outcome. The first degradation prints a single stderr
//! warning (the only diagnostic; every later failure is silent).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::eval::{CandidateScore, EvalCore};

use super::protocol::{hello_line, parse_welcome, NO_FREE_SLOTS};
use super::{session, BackendStats, EvalBackend, EvalJob, StopCheck};

/// Resolving + dialing an endpoint that does not answer must not stall the
/// search; connects beyond this are treated as endpoint failures.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the daemon gets to answer the `hello` → `welcome` handshake
/// and the `init` → `ready` session opening.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Socket read timeout while waiting for score responses. Scoring a chunk
/// is CPU-bound work on the daemon, so this is generous; it exists so a
/// wedged daemon stalls its chunk for a bounded time (the chunk then
/// recomputes inline) instead of hanging the run forever.
const SCORE_TIMEOUT: Duration = Duration::from_secs(300);

/// How long an endpoint is skipped after a connect/handshake/session
/// failure before reconnection is attempted again.
pub(crate) const RECONNECT_BACKOFF: Duration = Duration::from_secs(30);

/// Minimum jobs per remote chunk: a network round trip is only worth
/// paying when it carries enough work. Batches smaller than `2 *
/// MIN_CHUNK` go to a single connection whole.
const MIN_CHUNK: usize = 8;

/// One live TCP connection: transport handshake done, possibly sessioned.
struct RemoteConn {
    /// Index into the backend's endpoint roster.
    endpoint: usize,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Per-endpoint connection accounting.
struct EndpointHealth {
    /// Our connection cap for this endpoint, derived from the capacity
    /// the daemon advertised in its last `welcome` (`1` until the first
    /// successful handshake).
    slots: usize,
    /// Connections currently open (sessioned or checked out to a batch).
    live: usize,
    /// Until when reconnection attempts are suspended after a failure.
    backoff_until: Option<Instant>,
}

struct Endpoint {
    addr: String,
    health: Mutex<EndpointHealth>,
}

/// One run's session over the connections: the init line plus the
/// connections that have already acknowledged it, idle between batches.
struct RunSession {
    init_line: Option<String>,
    ready: Vec<RemoteConn>,
    next_id: u64,
}

/// Scores batches across `pimsyn worker-serve` daemons over TCP.
pub struct RemoteBackend {
    endpoints: Vec<Endpoint>,
    token: Option<String>,
    session: Mutex<RunSession>,
    /// Round-robin cursor so consecutive leases spread across the roster.
    rotate: AtomicUsize,
    warned: AtomicBool,
    batches: AtomicUsize,
    jobs: AtomicUsize,
    remote: AtomicUsize,
    fallback: AtomicUsize,
    connects: AtomicUsize,
}

impl std::fmt::Debug for RemoteBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBackend")
            .field(
                "endpoints",
                &self.endpoints.iter().map(|e| &e.addr).collect::<Vec<_>>(),
            )
            .field("authenticated", &self.token.is_some())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl RemoteBackend {
    /// A backend scoring against the given worker-daemon roster
    /// (`host:port` each), authenticating every connection with `token`
    /// when one is given.
    pub fn new(endpoints: Vec<String>, token: Option<String>) -> Self {
        Self {
            endpoints: endpoints
                .into_iter()
                .map(|addr| Endpoint {
                    addr,
                    health: Mutex::new(EndpointHealth {
                        slots: 1,
                        live: 0,
                        backoff_until: None,
                    }),
                })
                .collect(),
            token,
            session: Mutex::new(RunSession {
                init_line: None,
                ready: Vec::new(),
                next_id: 0,
            }),
            rotate: AtomicUsize::new(0),
            warned: AtomicBool::new(false),
            batches: AtomicUsize::new(0),
            jobs: AtomicUsize::new(0),
            remote: AtomicUsize::new(0),
            fallback: AtomicUsize::new(0),
            connects: AtomicUsize::new(0),
        }
    }

    /// Prints the one-and-only degradation warning: remote scoring is an
    /// optimization, so failures are quiet after the first diagnostic.
    fn warn_once(&self, detail: &str) {
        if !self.warned.swap(true, Ordering::SeqCst) {
            eprintln!("pimsyn: remote evaluation degraded: {detail}; affected chunks are scored inline (results are unaffected)");
        }
    }

    /// Dials one endpoint and runs the transport handshake. On success the
    /// connection's read timeout is left at [`SCORE_TIMEOUT`].
    fn connect(&self, index: usize) -> Result<RemoteConn, String> {
        let addr = &self.endpoints[index].addr;
        let writer = super::dial_bounded(addr, CONNECT_TIMEOUT)?;
        let _ = writer.set_nodelay(true);
        writer
            .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
            .map_err(|e| format!("cannot configure {addr}: {e}"))?;
        let reader = writer
            .try_clone()
            .map_err(|e| format!("cannot clone the {addr} stream: {e}"))?;
        let mut conn = RemoteConn {
            endpoint: index,
            writer,
            reader: BufReader::new(reader),
        };
        writeln!(conn.writer, "{}", hello_line(self.token.as_deref()))
            .and_then(|()| conn.writer.flush())
            .map_err(|e| format!("handshake write to {addr} failed: {e}"))?;
        let mut line = String::new();
        match conn.reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            Ok(_) => return Err(format!("{addr} closed the connection during handshake")),
            Err(e) => return Err(format!("handshake read from {addr} failed: {e}")),
        }
        let advertised = parse_welcome(line.trim()).map_err(|e| format!("{addr}: {e}"))?;
        conn.writer
            .set_read_timeout(Some(SCORE_TIMEOUT))
            .map_err(|e| format!("cannot configure {addr}: {e}"))?;
        self.connects.fetch_add(1, Ordering::Relaxed);
        {
            // `welcome` advertises the sessions still available to *us* at
            // handshake time, including this one — so a daemon shared by
            // several runs throttles each to what actually remains. Our
            // per-endpoint cap is what we already hold (`live` includes
            // this connection's reservation) plus what remains beyond it.
            let mut health = self.endpoints[index].health.lock().expect("endpoint");
            health.slots = (health.live + advertised).saturating_sub(1).max(1);
        }
        Ok(conn)
    }

    /// Records a connection death and backs its endpoint off from
    /// reconnection attempts.
    fn drop_conn(&self, conn: RemoteConn, detail: &str) {
        let index = conn.endpoint;
        drop(conn);
        self.fail_reservation(index, detail);
    }

    /// Reserves a connection slot on the next endpoint that is neither
    /// backing off nor at its advertised capacity. The reservation counts
    /// as live until released or converted into a real connection.
    fn reserve_slot(&self) -> Option<usize> {
        let n = self.endpoints.len();
        let start = self.rotate.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        for k in 0..n {
            let index = (start + k) % n;
            let mut health = self.endpoints[index].health.lock().expect("endpoint");
            let backing_off = health.backoff_until.is_some_and(|until| now < until);
            if !backing_off && health.live < health.slots {
                health.live += 1;
                return Some(index);
            }
        }
        None
    }

    /// Dials one reserved endpoint, runs the transport handshake and opens
    /// the run session.
    fn open_endpoint(&self, index: usize, init: &str) -> Result<RemoteConn, String> {
        let mut conn = self.connect(index)?;
        // The session opening shares the handshake's bounded patience (the
        // daemon answers `ready` from memory).
        let _ = conn.writer.set_read_timeout(Some(HANDSHAKE_TIMEOUT));
        session::open_session_io(&mut conn.writer, &mut conn.reader, init)?;
        let _ = conn.writer.set_read_timeout(Some(SCORE_TIMEOUT));
        Ok(conn)
    }

    /// Releases a reservation whose dial/handshake failed and backs its
    /// endpoint off.
    fn fail_reservation(&self, index: usize, detail: &str) {
        let mut health = self.endpoints[index].health.lock().expect("endpoint");
        health.live -= 1;
        health.backoff_until = Some(Instant::now() + RECONNECT_BACKOFF);
        drop(health);
        self.warn_once(detail);
    }

    /// Opens sessioned connections until `conns` holds `want` of them (or
    /// the roster is exhausted): reserve slots, then dial + handshake +
    /// open the run session on every reservation *concurrently*, so a
    /// roster with several dead endpoints stalls for one connect timeout,
    /// not one per endpoint. Failures release their slot and back the
    /// endpoint off.
    fn lease_missing(
        &self,
        conns: &mut Vec<RemoteConn>,
        want: usize,
        init: &str,
        stop: StopCheck<'_>,
    ) {
        if stop() {
            return;
        }
        let mut reserved = Vec::new();
        while conns.len() + reserved.len() < want {
            match self.reserve_slot() {
                Some(index) => reserved.push(index),
                None => break,
            }
        }
        match reserved.len() {
            0 => {}
            1 => match self.open_endpoint(reserved[0], init) {
                Ok(conn) => conns.push(conn),
                Err(detail) => self.handshake_failed(reserved[0], &detail),
            },
            _ => std::thread::scope(|s| {
                let handles: Vec<_> = reserved
                    .iter()
                    .map(|&index| s.spawn(move || (index, self.open_endpoint(index, init))))
                    .collect();
                for handle in handles {
                    match handle.join().expect("endpoint dialer panicked") {
                        (_, Ok(conn)) => conns.push(conn),
                        (index, Err(detail)) => self.handshake_failed(index, &detail),
                    }
                }
            }),
        }
    }

    /// Routes a failed dial/handshake. A polite [`NO_FREE_SLOTS`] decline
    /// means the daemon is healthy but fully subscribed (by other runs,
    /// or by our own concurrent dials racing the advertised capacity):
    /// shrink our cap to what we actually hold and move on — no warning,
    /// no backoff. Everything else is a real failure.
    fn handshake_failed(&self, index: usize, detail: &str) {
        if detail.contains(NO_FREE_SLOTS) {
            let mut health = self.endpoints[index].health.lock().expect("endpoint");
            health.live -= 1;
            health.slots = health.slots.min(health.live.max(1));
        } else {
            self.fail_reservation(index, detail);
        }
    }

    /// Scores one chunk on one connection, recomputing inline when the
    /// connection is missing or fails mid-chunk. Returns the scores, the
    /// still-healthy connection (if any), and the (remote, fallback)
    /// counts.
    fn run_chunk(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        conn: Option<RemoteConn>,
        id_base: u64,
        stop: StopCheck<'_>,
    ) -> (Vec<CandidateScore>, Option<RemoteConn>, usize, usize) {
        if stop() {
            return (vec![CandidateScore::INFEASIBLE; jobs.len()], conn, 0, 0);
        }
        if let Some(mut conn) = conn {
            let exchanged =
                session::exchange_scores(&mut conn.writer, &mut conn.reader, jobs, id_base);
            match exchanged {
                Ok(scores) => return (scores, Some(conn), jobs.len(), 0),
                Err(detail) => {
                    let addr = self.endpoints[conn.endpoint].addr.clone();
                    self.drop_conn(conn, &format!("{addr}: {detail}"));
                }
            }
        }
        let scores = jobs
            .iter()
            .map(|job| {
                if stop() {
                    CandidateScore::INFEASIBLE
                } else {
                    core.score(job.df, job.point, job.gene)
                }
            })
            .collect();
        (scores, None, 0, jobs.len())
    }

    /// How many connections a batch of `jobs` jobs is worth, before the
    /// roster caps it: at least [`MIN_CHUNK`] jobs per network round trip.
    fn target_connections(jobs: usize) -> usize {
        (jobs / MIN_CHUNK).max(1)
    }
}

impl EvalBackend for RemoteBackend {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn score_batch(
        &self,
        core: &EvalCore<'_>,
        jobs: &[EvalJob<'_>],
        stop: StopCheck<'_>,
    ) -> Vec<CandidateScore> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(jobs.len(), Ordering::Relaxed);
        if jobs.is_empty() {
            return Vec::new();
        }
        let want = Self::target_connections(jobs.len());

        // Take this run's sessioned connections and an id range under the
        // session lock; dial/handshake the missing connections outside it.
        let (init, mut conns, id_base) = {
            let mut session = self.session.lock().expect("remote session");
            if session.init_line.is_none() {
                session.init_line = Some(session::init_line_for(core));
            }
            let init = session.init_line.clone().expect("just set");
            let take = want.min(session.ready.len());
            let conns: Vec<RemoteConn> = session.ready.drain(..take).collect();
            let id_base = session.next_id;
            session.next_id += jobs.len() as u64;
            (init, conns, id_base)
        };
        self.lease_missing(&mut conns, want, &init, stop);

        // Count-balanced chunks, one per connection: sizes differ by at
        // most one, so every round trip carries its fair share. With no
        // connection at all the batch runs inline whole.
        let width = conns.len().clamp(1, jobs.len());
        let base = jobs.len() / width;
        let extra = jobs.len() % width;
        let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(width);
        let mut offset = 0usize;
        for k in 0..width {
            let len = base + usize::from(k < extra);
            ranges.push((offset, offset + len));
            offset += len;
        }

        let mut slots: Vec<Option<RemoteConn>> = conns.into_iter().map(Some).collect();
        slots.resize_with(width, || None);

        let mut out = Vec::with_capacity(jobs.len());
        let mut survivors: Vec<RemoteConn> = Vec::new();
        let mut remote = 0usize;
        let mut fallback = 0usize;
        if width == 1 {
            let (lo, hi) = ranges[0];
            let (scores, conn, r, f) =
                self.run_chunk(core, &jobs[lo..hi], slots[0].take(), id_base, stop);
            out.extend(scores);
            survivors.extend(conn);
            remote += r;
            fallback += f;
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = ranges
                    .iter()
                    .zip(slots.iter_mut())
                    .map(|(&(lo, hi), slot)| {
                        let conn = slot.take();
                        let chunk_base = id_base + lo as u64;
                        s.spawn(move || self.run_chunk(core, &jobs[lo..hi], conn, chunk_base, stop))
                    })
                    .collect();
                // Chunks joined in submission order: deterministic
                // input-order reduction.
                for handle in handles {
                    let (scores, conn, r, f) = handle.join().expect("chunk scorer panicked");
                    out.extend(scores);
                    survivors.extend(conn);
                    remote += r;
                    fallback += f;
                }
            });
        }
        self.remote.fetch_add(remote, Ordering::Relaxed);
        self.fallback.fetch_add(fallback, Ordering::Relaxed);
        self.session
            .lock()
            .expect("remote session")
            .ready
            .extend(survivors);
        out
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            batches: self.batches.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            remote_jobs: self.remote.load(Ordering::Relaxed),
            fallback_jobs: self.fallback.load(Ordering::Relaxed),
            worker_spawns: self.connects.load(Ordering::Relaxed),
        }
    }

    /// Ends this run's session: every connection is closed (the daemon's
    /// slot frees when it sees EOF) and endpoint accounting is reset.
    fn flush(&self) {
        let conns = std::mem::take(&mut self.session.lock().expect("remote session").ready);
        for conn in conns {
            self.endpoints[conn.endpoint]
                .health
                .lock()
                .expect("endpoint")
                .live -= 1;
        }
    }
}

impl Drop for RemoteBackend {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_target_is_latency_aware() {
        // Small batches stay on one connection; larger batches earn one
        // connection per MIN_CHUNK jobs.
        assert_eq!(RemoteBackend::target_connections(1), 1);
        assert_eq!(RemoteBackend::target_connections(MIN_CHUNK - 1), 1);
        assert_eq!(RemoteBackend::target_connections(MIN_CHUNK * 3), 3);
        assert_eq!(RemoteBackend::target_connections(MIN_CHUNK * 3 + 1), 3);
    }

    #[test]
    fn unreachable_roster_reserves_and_releases_slots() {
        // Port 1 on loopback is almost surely closed; and even if a connect
        // somehow succeeded, no handshake answer arrives. Either way the
        // lease must fail cleanly, release its reservation and back off.
        let backend = RemoteBackend::new(vec!["127.0.0.1:1".to_string()], None);
        let mut conns = Vec::new();
        backend.lease_missing(&mut conns, 1, "ignored", &|| false);
        assert!(conns.is_empty());
        let health = backend.endpoints[0].health.lock().unwrap();
        assert_eq!(health.live, 0, "failed lease must release its slot");
        assert!(health.backoff_until.is_some(), "endpoint must back off");
    }

    #[test]
    fn backing_off_endpoint_is_skipped() {
        let backend = RemoteBackend::new(vec!["127.0.0.1:1".to_string()], None);
        backend.endpoints[0].health.lock().unwrap().backoff_until =
            Some(Instant::now() + RECONNECT_BACKOFF);
        assert!(backend.reserve_slot().is_none());
        // An expired backoff admits reservations again.
        backend.endpoints[0].health.lock().unwrap().backoff_until =
            Some(Instant::now() - Duration::from_secs(1));
        assert_eq!(backend.reserve_slot(), Some(0));
    }
}
