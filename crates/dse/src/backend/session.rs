//! Transport-agnostic worker-session machinery shared by the
//! [`SubprocessBackend`](super::SubprocessBackend) (stdio pipes) and the
//! [`RemoteBackend`](super::RemoteBackend) (TCP sockets).
//!
//! Both backends drive the same versioned JSON-lines
//! [`protocol`](super::protocol) against the same server loop
//! (`run_worker` in the `pimsyn` crate); only the byte transport differs.
//! This module holds everything above the transport: building the
//! session-opening init line from an [`EvalCore`], the init → `ready`
//! exchange that (re-)opens a session, and the write-requests /
//! read-responses loop that scores one chunk. Timeout handling stays with
//! the caller — pipes need a helper thread, sockets use
//! `set_read_timeout` — which is why these helpers take plain
//! `Write`/`BufRead` endpoints.

use std::io::{BufRead, Write};

use crate::eval::{CandidateScore, EvalCore};

use super::protocol::{parse_ready, ScoreRequest, ScoreResponse, WorkerInit};
use super::EvalJob;

/// The session-opening init line fixing one run's model, hardware, power,
/// macro mode and objective (bit-exact encodings throughout).
pub(crate) fn init_line_for(core: &EvalCore<'_>) -> String {
    WorkerInit {
        model_json: pimsyn_model::onnx::to_json(core.model()),
        hw_json: pimsyn_arch::hardware_config::to_json_exact(core.hw()),
        power_bits: core.total_power().value().to_bits(),
        macro_mode: core.macro_mode(),
        objective: core.objective(),
    }
    .to_line()
}

/// Opens (or re-opens) a run session over an established transport: writes
/// the init line and reads the matching `ready` acknowledgment. The caller
/// guards against a peer that never answers (helper thread for pipes,
/// socket read timeout for TCP).
pub(crate) fn open_session_io(
    writer: &mut dyn Write,
    reader: &mut dyn BufRead,
    init_line: &str,
) -> Result<(), String> {
    writeln!(writer, "{init_line}").map_err(|e| format!("session write failed: {e}"))?;
    writer
        .flush()
        .map_err(|e| format!("session flush failed: {e}"))?;
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => parse_ready(line.trim()),
        Ok(_) => Err("worker closed the stream before acknowledging init".to_string()),
        Err(e) => Err(format!("session read failed: {e}")),
    }
}

/// Scores one chunk over an open session: writes every request as a single
/// payload, then reads the matching responses (replies may arrive in any
/// order; they are re-slotted by id).
pub(crate) fn exchange_scores(
    writer: &mut dyn Write,
    reader: &mut dyn BufRead,
    jobs: &[EvalJob<'_>],
    id_base: u64,
) -> Result<Vec<CandidateScore>, String> {
    let mut payload = String::new();
    for (k, job) in jobs.iter().enumerate() {
        let request = ScoreRequest {
            id: id_base + k as u64,
            ratio_bits: job.point.ratio_rram.to_bits(),
            xb_size: job.point.crossbar.size(),
            cell_bits: job.point.crossbar.cell_bits(),
            dac_bits: job.df.dac().bits(),
            wt_dup: job.df.programs().iter().map(|p| p.wt_dup).collect(),
            gene: job.gene.as_slice().to_vec(),
        };
        payload.push_str(&request.to_line());
        payload.push('\n');
    }
    writer
        .write_all(payload.as_bytes())
        .map_err(|e| format!("worker write failed: {e}"))?;
    writer
        .flush()
        .map_err(|e| format!("worker flush failed: {e}"))?;
    let mut out: Vec<Option<CandidateScore>> = vec![None; jobs.len()];
    for _ in 0..jobs.len() {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("worker read failed: {e}"))?;
        if n == 0 {
            return Err("worker closed its output mid-batch".to_string());
        }
        let response = ScoreResponse::parse(line.trim())?;
        let index = response
            .id
            .checked_sub(id_base)
            .filter(|&i| (i as usize) < jobs.len())
            .ok_or_else(|| format!("worker answered unknown id {}", response.id))?
            as usize;
        if out[index].replace(response.score).is_some() {
            return Err(format!("worker answered id {} twice", response.id));
        }
    }
    Ok(out.into_iter().map(|s| s.expect("all ids seen")).collect())
}
