//! Transport-agnostic worker-session machinery shared by the
//! [`SubprocessBackend`](super::SubprocessBackend) (stdio pipes) and the
//! [`RemoteBackend`](super::RemoteBackend) (TCP sockets).
//!
//! Both backends drive the same versioned JSON-lines
//! [`protocol`](super::protocol) against the same server loop
//! (`run_worker` in the `pimsyn` crate); only the byte transport differs.
//! This module holds everything above the transport: building the
//! session-opening init line from an [`EvalCore`], the init → `ready`
//! exchange that (re-)opens a session, and the write-requests /
//! read-responses loop that scores one chunk. Timeout handling stays with
//! the caller — pipes need a helper thread, sockets use
//! `set_read_timeout` — which is why these helpers take plain
//! `Write`/`BufRead` endpoints.

use std::io::{BufRead, Write};

use crate::eval::{CandidateScore, EvalCore};

use super::protocol::{
    decode_error_frame, decode_score_reply, encode_score_batch, parse_ready_version, read_frame,
    write_frame, BatchItem, ScoreRequest, ScoreResponse, WorkerInit, FRAME_ERROR,
    FRAME_SCORE_BATCH, FRAME_SCORE_REPLY,
};
use super::EvalJob;

/// Which framing a negotiated session speaks for score exchanges.
/// Init/ready (and the TCP hello/welcome handshake) are JSON lines in
/// both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WireMode {
    /// Protocol v1: one JSON line per request and per response.
    V1,
    /// Protocol v2: whole batches in one length-prefixed binary frame.
    V2,
}

impl WireMode {
    /// The mode a negotiated session version maps to.
    pub(crate) fn for_version(version: u32) -> Self {
        if version >= 2 {
            WireMode::V2
        } else {
            WireMode::V1
        }
    }

    /// The numeric protocol version of this mode.
    pub(crate) fn version(self) -> u32 {
        match self {
            WireMode::V1 => 1,
            WireMode::V2 => 2,
        }
    }
}

/// The session-opening init line fixing one run's model, hardware, power,
/// macro mode and objective (bit-exact encodings throughout).
pub(crate) fn init_line_for(core: &EvalCore<'_>) -> String {
    WorkerInit {
        model_json: pimsyn_model::onnx::to_json(core.model()),
        hw_json: pimsyn_arch::hardware_config::to_json_exact(core.hw()),
        power_bits: core.total_power().value().to_bits(),
        macro_mode: core.macro_mode(),
        objective: core.objective(),
    }
    .to_line()
}

/// Opens (or re-opens) a run session over an established transport: writes
/// the init line and reads the matching `ready` acknowledgment, returning
/// the [`WireMode`] the worker negotiated (v1 workers answer a plain ready
/// and the session stays on JSON lines). The caller guards against a peer
/// that never answers (helper thread for pipes, socket read timeout for
/// TCP).
pub(crate) fn open_session_io(
    writer: &mut dyn Write,
    reader: &mut dyn BufRead,
    init_line: &str,
) -> Result<WireMode, String> {
    writeln!(writer, "{init_line}").map_err(|e| format!("session write failed: {e}"))?;
    writer
        .flush()
        .map_err(|e| format!("session flush failed: {e}"))?;
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => parse_ready_version(line.trim()).map(WireMode::for_version),
        Ok(_) => Err("worker closed the stream before acknowledging init".to_string()),
        Err(e) => Err(format!("session read failed: {e}")),
    }
}

/// Scores one chunk over an open session using whichever framing the
/// session negotiated.
pub(crate) fn exchange_scores_in(
    mode: WireMode,
    writer: &mut dyn Write,
    reader: &mut dyn BufRead,
    jobs: &[EvalJob<'_>],
    id_base: u64,
) -> Result<Vec<CandidateScore>, String> {
    match mode {
        WireMode::V1 => exchange_scores(writer, reader, jobs, id_base),
        WireMode::V2 => exchange_scores_v2(writer, reader, jobs, id_base),
    }
}

/// Scores one chunk over an open *v2* session: the whole chunk goes out as
/// one `score_batch` frame and comes back as one `score_reply` frame in
/// request order — two syscalls per chunk instead of two per candidate.
pub(crate) fn exchange_scores_v2(
    writer: &mut dyn Write,
    reader: &mut dyn BufRead,
    jobs: &[EvalJob<'_>],
    id_base: u64,
) -> Result<Vec<CandidateScore>, String> {
    let items: Vec<BatchItem> = jobs
        .iter()
        .map(|job| BatchItem {
            ratio_bits: job.point.ratio_rram.to_bits(),
            xb_size: job.point.crossbar.size() as u32,
            cell_bits: job.point.crossbar.cell_bits(),
            dac_bits: job.df.dac().bits(),
            wt_dup: job.df.programs().iter().map(|p| p.wt_dup as u32).collect(),
            gene: job.gene.as_slice().to_vec(),
        })
        .collect();
    let payload = encode_score_batch(id_base, &items);
    write_frame(writer, FRAME_SCORE_BATCH, &payload)
        .map_err(|e| format!("worker write failed: {e}"))?;
    writer
        .flush()
        .map_err(|e| format!("worker flush failed: {e}"))?;
    let (kind, payload) = read_frame(reader).map_err(|e| format!("worker read failed: {e}"))?;
    match kind {
        FRAME_SCORE_REPLY => {}
        FRAME_ERROR => {
            return Err(format!(
                "worker reported an error: {}",
                decode_error_frame(&payload)
            ))
        }
        other => return Err(format!("unexpected frame kind 0x{other:02x}")),
    }
    let (reply_base, scores) = decode_score_reply(&payload)?;
    if reply_base != id_base {
        return Err(format!(
            "worker answered batch {reply_base}, expected {id_base}"
        ));
    }
    if scores.len() != jobs.len() {
        return Err(format!(
            "worker answered {} scores for {} candidates",
            scores.len(),
            jobs.len()
        ));
    }
    Ok(scores)
}

/// Scores one chunk over an open session: writes every request as a single
/// payload, then reads the matching responses (replies may arrive in any
/// order; they are re-slotted by id).
pub(crate) fn exchange_scores(
    writer: &mut dyn Write,
    reader: &mut dyn BufRead,
    jobs: &[EvalJob<'_>],
    id_base: u64,
) -> Result<Vec<CandidateScore>, String> {
    let mut payload = String::new();
    for (k, job) in jobs.iter().enumerate() {
        let request = ScoreRequest {
            id: id_base + k as u64,
            ratio_bits: job.point.ratio_rram.to_bits(),
            xb_size: job.point.crossbar.size(),
            cell_bits: job.point.crossbar.cell_bits(),
            dac_bits: job.df.dac().bits(),
            wt_dup: job.df.programs().iter().map(|p| p.wt_dup).collect(),
            gene: job.gene.as_slice().to_vec(),
        };
        payload.push_str(&request.to_line());
        payload.push('\n');
    }
    writer
        .write_all(payload.as_bytes())
        .map_err(|e| format!("worker write failed: {e}"))?;
    writer
        .flush()
        .map_err(|e| format!("worker flush failed: {e}"))?;
    let mut out: Vec<Option<CandidateScore>> = vec![None; jobs.len()];
    for _ in 0..jobs.len() {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("worker read failed: {e}"))?;
        if n == 0 {
            return Err("worker closed its output mid-batch".to_string());
        }
        let response = ScoreResponse::parse(line.trim())?;
        let index = response
            .id
            .checked_sub(id_base)
            .filter(|&i| (i as usize) < jobs.len())
            .ok_or_else(|| format!("worker answered unknown id {}", response.id))?
            as usize;
        if out[index].replace(response.score).is_some() {
            return Err(format!("worker answered id {} twice", response.id));
        }
    }
    Ok(out.into_iter().map(|s| s.expect("all ids seen")).collect())
}
