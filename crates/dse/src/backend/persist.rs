//! Persistent cross-run evaluation cache.
//!
//! The [`CandidateEvaluator`](crate::CandidateEvaluator)'s memo lives for
//! one synthesis run; sweeps and repeated CLI invocations re-score the same
//! candidates from scratch. This module serializes the two memo maps that
//! matter — the candidate-key → score map and the per-layer base-cost map —
//! to a JSON cache file keyed by a **fingerprint** of everything scoring
//! depends on: the model, the hardware parameters (bit-exact), the power
//! budget, the macro mode, the objective, and the cache-schema version. A
//! later run with the same fingerprint warm-starts from the file; any
//! mismatch (different hardware, different power, newer schema) silently
//! invalidates it, as does a corrupt or unreadable file — a cache can speed
//! a run up, never fail it.
//!
//! Floats are stored as `f64::to_bits` hex strings, so warm-started runs
//! remain bit-identical to cold ones.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};

use pimsyn_arch::{HardwareParams, MacroMode, Watts};
use pimsyn_model::json::JsonValue;
use pimsyn_model::Model;
use pimsyn_sim::{LayerBaseCosts, LayerCostKey};

use crate::ea::Objective;
use crate::eval::{CandidateKey, CandidateScore};

use super::protocol::{macro_mode_tag, objective_tag};

/// Cache-file schema version; part of the fingerprint, so bumping it
/// invalidates every existing cache file.
pub const EVAL_CACHE_SCHEMA: u32 = 1;

/// The serializable state of one evaluator: candidate scores plus per-layer
/// base costs.
#[derive(Debug, Clone, Default)]
pub struct CacheSnapshot {
    /// Candidate-key → score entries.
    pub scores: Vec<(CandidateKey, CandidateScore)>,
    /// Per-layer base-cost entries (see [`pimsyn_sim::LayerCostCache`]).
    pub layer_costs: Vec<(LayerCostKey, LayerBaseCosts)>,
}

/// Fingerprint of everything candidate scoring depends on. Equal
/// fingerprints guarantee a cached score is valid for this run.
pub(crate) fn run_fingerprint(
    model: &Model,
    total_power: Watts,
    hw: &HardwareParams,
    macro_mode: MacroMode,
    objective: Objective,
) -> String {
    let mut h = DefaultHasher::new();
    EVAL_CACHE_SCHEMA.hash(&mut h);
    pimsyn_model::onnx::to_json(model).hash(&mut h);
    pimsyn_arch::hardware_config::to_json_exact(hw).hash(&mut h);
    total_power.value().to_bits().hash(&mut h);
    macro_mode_tag(macro_mode).hash(&mut h);
    objective_tag(objective).hash(&mut h);
    format!("{:016x}", h.finish())
}

fn hex64(v: u64) -> JsonValue {
    JsonValue::String(super::u64_hex(v))
}

fn parse_hex64(v: Option<&JsonValue>) -> Option<u64> {
    super::parse_u64_hex(v?.as_str()?)
}

fn num(v: usize) -> JsonValue {
    JsonValue::Number(v as f64)
}

fn usizes(v: Option<&JsonValue>) -> Option<Vec<usize>> {
    v?.as_array()?.iter().map(JsonValue::as_usize).collect()
}

/// A cache file bound to one run fingerprint.
#[derive(Debug, Clone)]
pub struct PersistentEvalCache {
    path: PathBuf,
    fingerprint: String,
}

impl PersistentEvalCache {
    /// A handle for `path`, valid for the run described by the fingerprint
    /// inputs.
    pub fn for_run(
        path: impl Into<PathBuf>,
        model: &Model,
        total_power: Watts,
        hw: &HardwareParams,
        macro_mode: MacroMode,
        objective: Objective,
    ) -> Self {
        Self {
            path: path.into(),
            fingerprint: run_fingerprint(model, total_power, hw, macro_mode, objective),
        }
    }

    /// The cache file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run fingerprint this handle accepts.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// The existing file's run sections, or empty when the file is missing,
    /// corrupt, or a different schema (never fatal).
    fn read_runs(&self) -> Vec<JsonValue> {
        let Ok(text) = std::fs::read_to_string(&self.path) else {
            return Vec::new();
        };
        let Ok(doc) = JsonValue::parse(&text) else {
            return Vec::new();
        };
        if doc.get("pimsyn_eval_cache").and_then(JsonValue::as_usize)
            != Some(EVAL_CACHE_SCHEMA as usize)
        {
            return Vec::new();
        }
        doc.get("runs")
            .and_then(JsonValue::as_array)
            .map(<[JsonValue]>::to_vec)
            .unwrap_or_default()
    }

    /// Loads the run section matching this run's fingerprint, if the file
    /// exists, parses, and holds one; `None` otherwise (missing, corrupt,
    /// or stale caches are ignored, never fatal).
    pub fn load(&self) -> Option<CacheSnapshot> {
        let run = self.read_runs().into_iter().find(|run| {
            run.get("fingerprint").and_then(JsonValue::as_str) == Some(&self.fingerprint)
        })?;
        let mut snapshot = CacheSnapshot::default();
        for entry in run.get("scores").and_then(JsonValue::as_array)? {
            // Individually malformed entries are skipped, not fatal.
            if let Some(pair) = decode_score(entry) {
                snapshot.scores.push(pair);
            }
        }
        if let Some(layers) = run.get("layers").and_then(JsonValue::as_array) {
            for entry in layers {
                if let Some(pair) = decode_layer(entry) {
                    snapshot.layer_costs.push(pair);
                }
            }
        }
        Some(snapshot)
    }

    /// Upper bound on run sections kept in one cache file: a power sweep's
    /// levels coexist, while the file stays bounded (oldest runs evicted
    /// first).
    pub const MAX_RUNS: usize = 8;

    /// Writes the snapshot atomically (temp file + rename) into this run's
    /// section, *preserving other runs'* sections — a sweep alternating
    /// power levels warm-starts at every level instead of each run
    /// clobbering the last. Returns whether the write succeeded; IO
    /// failures are reported, not propagated — persistence is best-effort.
    ///
    /// Saves are serialized process-wide (batch jobs flush from parallel
    /// threads onto one file; without the lock the read-modify-write would
    /// drop sections) and the temp file carries the process id, so two
    /// *processes* sharing a cache file cannot corrupt it either — though
    /// the last process to rename still wins its sections.
    pub fn save(&self, snapshot: &CacheSnapshot) -> bool {
        static SAVE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _serialized = SAVE_LOCK.lock().expect("cache save lock");
        let mut runs: Vec<JsonValue> = self
            .read_runs()
            .into_iter()
            .filter(|run| {
                run.get("fingerprint").and_then(JsonValue::as_str) != Some(&self.fingerprint)
            })
            .collect();
        runs.push(JsonValue::Object(vec![
            (
                "fingerprint".into(),
                JsonValue::String(self.fingerprint.clone()),
            ),
            (
                "scores".into(),
                JsonValue::Array(snapshot.scores.iter().map(encode_score).collect()),
            ),
            (
                "layers".into(),
                JsonValue::Array(snapshot.layer_costs.iter().map(encode_layer).collect()),
            ),
        ]));
        // Most recent last; evict from the front.
        let excess = runs.len().saturating_sub(Self::MAX_RUNS);
        runs.drain(..excess);
        let doc = JsonValue::Object(vec![
            (
                "pimsyn_eval_cache".into(),
                JsonValue::Number(EVAL_CACHE_SCHEMA as f64),
            ),
            ("runs".into(), JsonValue::Array(runs)),
        ]);
        let tmp = self
            .path
            .with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, format!("{doc}\n")).is_err() {
            return false;
        }
        std::fs::rename(&tmp, &self.path).is_ok()
    }
}

fn encode_score((key, score): &(CandidateKey, CandidateScore)) -> JsonValue {
    JsonValue::Object(vec![
        ("r".into(), hex64(key.ratio_bits)),
        ("x".into(), num(key.crossbar.size())),
        ("c".into(), num(key.crossbar.cell_bits() as usize)),
        ("d".into(), num(key.dac_bits as usize)),
        (
            "w".into(),
            JsonValue::Array(key.wt_dup.iter().map(|&d| num(d)).collect()),
        ),
        (
            "g".into(),
            JsonValue::Array(key.gene.iter().map(|&g| num(g as usize)).collect()),
        ),
        ("f".into(), hex64(score.fitness.to_bits())),
        ("ok".into(), JsonValue::Bool(score.feasible)),
    ])
}

fn decode_score(v: &JsonValue) -> Option<(CandidateKey, CandidateScore)> {
    use std::sync::Arc;
    let crossbar =
        pimsyn_arch::CrossbarConfig::new(v.get("x")?.as_usize()?, v.get("c")?.as_usize()? as u32)
            .ok()?;
    let key = CandidateKey {
        ratio_bits: parse_hex64(v.get("r"))?,
        crossbar,
        dac_bits: v.get("d")?.as_usize()? as u32,
        wt_dup: Arc::new(usizes(v.get("w"))?),
        gene: usizes(v.get("g"))?.into_iter().map(|g| g as u32).collect(),
    };
    let score = CandidateScore {
        fitness: f64::from_bits(parse_hex64(v.get("f"))?),
        feasible: v.get("ok")?.as_bool()?,
    };
    Some((key, score))
}

fn encode_layer((key, base): &(LayerCostKey, LayerBaseCosts)) -> JsonValue {
    let bits = |v: f64| hex64(v.to_bits());
    JsonValue::Object(vec![
        ("fp".into(), hex64(key.fingerprint)),
        ("l".into(), num(key.layer)),
        ("m".into(), num(key.macros)),
        ("ea".into(), num(key.effective_adcs)),
        ("ar".into(), hex64(key.adc_rate_bits)),
        ("sa".into(), num(key.shift_add)),
        ("po".into(), num(key.pool)),
        ("ac".into(), num(key.activation)),
        ("el".into(), num(key.eltwise)),
        ("bits".into(), num(base.bits)),
        ("load".into(), bits(base.load)),
        ("mvm".into(), bits(base.mvm_bit)),
        ("adc".into(), bits(base.adc_bit)),
        ("sab".into(), bits(base.sa_bit)),
        ("post".into(), bits(base.post)),
        ("store".into(), bits(base.store)),
    ])
}

fn decode_layer(v: &JsonValue) -> Option<(LayerCostKey, LayerBaseCosts)> {
    let float = |key: &str| parse_hex64(v.get(key)).map(f64::from_bits);
    let key = LayerCostKey {
        fingerprint: parse_hex64(v.get("fp"))?,
        layer: v.get("l")?.as_usize()?,
        macros: v.get("m")?.as_usize()?,
        effective_adcs: v.get("ea")?.as_usize()?,
        adc_rate_bits: parse_hex64(v.get("ar"))?,
        shift_add: v.get("sa")?.as_usize()?,
        pool: v.get("po")?.as_usize()?,
        activation: v.get("ac")?.as_usize()?,
        eltwise: v.get("el")?.as_usize()?,
    };
    let base = LayerBaseCosts {
        bits: v.get("bits")?.as_usize()?,
        load: float("load")?,
        mvm_bit: float("mvm")?,
        adc_bit: float("adc")?,
        sa_bit: float("sab")?,
        post: float("post")?,
        store: float("store")?,
    };
    Some((key, base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::zoo;
    use std::sync::Arc;

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pimsyn-persist-{name}-{}", std::process::id()))
    }

    fn sample_snapshot() -> CacheSnapshot {
        let crossbar = pimsyn_arch::CrossbarConfig::new(128, 2).unwrap();
        CacheSnapshot {
            scores: vec![(
                CandidateKey {
                    ratio_bits: 0.3f64.to_bits(),
                    crossbar,
                    dac_bits: 1,
                    wt_dup: Arc::new(vec![1, 2]),
                    gene: vec![1, 1002],
                },
                CandidateScore {
                    fitness: 0.1 + 0.2, // a bit pattern JSON numbers mangle
                    feasible: true,
                },
            )],
            layer_costs: vec![(
                LayerCostKey {
                    fingerprint: 0xDEAD_BEEF,
                    layer: 0,
                    macros: 1,
                    effective_adcs: 2,
                    adc_rate_bits: 1.28e9f64.to_bits(),
                    shift_add: 4,
                    pool: 1,
                    activation: 1,
                    eltwise: 0,
                },
                LayerBaseCosts {
                    bits: 16,
                    load: 1e-9,
                    mvm_bit: 1.0000000000000002e-7,
                    adc_bit: 2e-9,
                    sa_bit: 3e-10,
                    post: 0.0,
                    store: 4e-9,
                },
            )],
        }
    }

    fn handle(path: PathBuf) -> PersistentEvalCache {
        let model = zoo::alexnet_cifar(10);
        PersistentEvalCache::for_run(
            path,
            &model,
            Watts(9.0),
            &HardwareParams::date24(),
            MacroMode::Specialized,
            Objective::PowerEfficiency,
        )
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let path = temp_path("round-trip");
        let cache = handle(path.clone());
        let snapshot = sample_snapshot();
        assert!(cache.save(&snapshot));
        let back = cache.load().expect("fingerprint matches");
        assert_eq!(back.scores.len(), 1);
        assert_eq!(back.scores[0].0, snapshot.scores[0].0);
        assert_eq!(
            back.scores[0].1.fitness.to_bits(),
            snapshot.scores[0].1.fitness.to_bits()
        );
        assert_eq!(back.layer_costs.len(), 1);
        assert_eq!(back.layer_costs[0].0, snapshot.layer_costs[0].0);
        assert_eq!(
            back.layer_costs[0].1.mvm_bit.to_bits(),
            snapshot.layer_costs[0].1.mvm_bit.to_bits()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fingerprint_mismatch_invalidates() {
        let path = temp_path("invalidate");
        let cache = handle(path.clone());
        assert!(cache.save(&sample_snapshot()));

        let model = zoo::alexnet_cifar(10);
        // Different power.
        let other = PersistentEvalCache::for_run(
            path.clone(),
            &model,
            Watts(10.0),
            &HardwareParams::date24(),
            MacroMode::Specialized,
            Objective::PowerEfficiency,
        );
        assert!(other.load().is_none(), "power change must invalidate");
        // Different hardware.
        let mut hw = HardwareParams::date24();
        hw.adc_power_growth = 1.7;
        let other = PersistentEvalCache::for_run(
            path.clone(),
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
        );
        assert!(other.load().is_none(), "hardware change must invalidate");
        // Different objective.
        let other = PersistentEvalCache::for_run(
            path.clone(),
            &model,
            Watts(9.0),
            &HardwareParams::date24(),
            MacroMode::Specialized,
            Objective::EnergyDelayProduct,
        );
        assert!(other.load().is_none(), "objective change must invalidate");
        // The original handle still loads.
        assert!(handle(path.clone()).load().is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn runs_with_different_fingerprints_coexist_in_one_file() {
        let path = temp_path("coexist");
        let _ = std::fs::remove_file(&path);
        let model = zoo::alexnet_cifar(10);
        let at_power = |w: f64| {
            PersistentEvalCache::for_run(
                path.clone(),
                &model,
                Watts(w),
                &HardwareParams::date24(),
                MacroMode::Specialized,
                Objective::PowerEfficiency,
            )
        };
        // A sweep alternating power levels: each level's save must preserve
        // the other's section, so both warm-start on the second pass.
        let nine = at_power(9.0);
        let fifteen = at_power(15.0);
        assert!(nine.save(&sample_snapshot()));
        assert!(fifteen.save(&sample_snapshot()));
        assert!(nine.load().is_some(), "9 W section survived the 15 W save");
        assert!(fifteen.load().is_some());
        // Re-saving a level replaces its own section without duplicating.
        assert!(nine.save(&sample_snapshot()));
        assert!(nine.load().is_some());
        assert!(fifteen.load().is_some());
        // The file stays bounded: old runs evict once MAX_RUNS is exceeded.
        for i in 0..PersistentEvalCache::MAX_RUNS {
            assert!(at_power(20.0 + i as f64).save(&sample_snapshot()));
        }
        assert!(
            nine.load().is_none(),
            "oldest section must evict past MAX_RUNS"
        );
        assert!(at_power(20.0 + (PersistentEvalCache::MAX_RUNS - 1) as f64)
            .load()
            .is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_or_missing_files_are_ignored() {
        let path = temp_path("corrupt");
        let cache = handle(path.clone());
        assert!(cache.load().is_none(), "missing file");
        std::fs::write(&path, "{not json").unwrap();
        assert!(cache.load().is_none(), "corrupt file");
        std::fs::write(&path, r#"{"pimsyn_eval_cache":99,"fingerprint":"x"}"#).unwrap();
        assert!(cache.load().is_none(), "schema mismatch");
        let _ = std::fs::remove_file(&path);
    }
}
