//! Delta (incremental) candidate rescoring for the SA/EA hot loop.
//!
//! An EA child differs from its tournament parent in at most two gene
//! entries (`mutate_num` + `mutate_share`), yet the full scoring pipeline
//! recomputes every layer's allocation and stage occupancies from scratch.
//! This module keeps, per scored candidate, the per-layer breakdown the
//! analytic model is assembled from — component counts, base stage costs,
//! NoC-coupled terms, realized power — and rescores a child by diffing its
//! gene against the parent's, recomputing only what the touched entries can
//! influence:
//!
//! - The Eq. (6) water-filling solution depends on the gene only through the
//!   physical macro count ([`AllocPlan::solve`]), so solved component counts
//!   are memoized per `n_macros`.
//! - A layer's base stage costs ([`pimsyn_sim::compute_layer_base_with`])
//!   are reused whenever its `(macros, effective ADCs, counts)` inputs are
//!   unchanged from the parent.
//! - The NoC-coupled `merge`/`transfer` terms are reused when the physical
//!   macro count and sharing assignment are unchanged; otherwise all layers'
//!   dynamics are recomputed (cheap relative to the base costs).
//! - Realized power is reused when counts, sharing and macro count match.
//!
//! Every reused value was produced by *the same function* the full pipeline
//! calls ([`AllocPlan::solve`], [`compute_layer_base_with`],
//! [`compute_layer_dynamic_with`], [`power_breakdown_from`],
//! [`solve_pipeline`], [`summarize_pipeline`]), so the delta path replays
//! the exact float sequence of [`EvalCore::compute`] and is bit-identical
//! to it by construction. Whenever that cannot be guaranteed — no retained
//! parent breakdown, a gene diff wider than one mutation round, identical
//! macro mode (whose homogenize pass is not replicated here) — the engine
//! falls back to a full spec-path recomputation (still through the shared
//! functions, and still retaining the result so the next generation can
//! delta against it).

use std::collections::{HashMap, VecDeque};
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex};

use pimsyn_arch::{
    power_breakdown_from, ComponentCounts, CrossbarConfig, MacroGroup, NocConfig, Watts,
};
use pimsyn_ir::Dataflow;
use pimsyn_sim::{
    assemble_stages, compute_layer_base_with, compute_layer_dynamic_with, solve_pipeline_into,
    summarize_pipeline, LayerBaseCosts, LayerCostInputs, LayerStages, PipelineSolution,
};

use crate::alloc::{physical_macros, AllocPlan};
use crate::ea::MacAllocGene;
use crate::eval::{CandidateScore, EvalCore};
use crate::space::DesignPoint;

/// Widest gene diff the delta path accepts: one `mutate_num` plus one
/// `mutate_share` per child. Anything wider (crossover-style edits, seeded
/// genes) falls back to the full recomputation.
const MAX_DELTA_DIFF: usize = 2;

/// Retained breakdowns kept per plan (FIFO eviction). Sized for several EA
/// generations of every design point sharing a dataflow.
const RETAIN_CAP: usize = 4096;

/// Entry bound of the per-plan base-cost memo; once full, further base
/// costs are computed without being stored (no eviction, bounded memory).
const BASE_MEMO_CAP: usize = 1 << 16;

/// Multiplicative word hasher (the rustc/FxHash scheme) for the hot-loop
/// memo maps. Their keys are a few machine words or a short `u32` gene
/// slice, and at several lookups per candidate the default SipHash costs
/// more than some of the arithmetic being memoized. Not DoS-resistant —
/// fine here, the keys come from the EA itself, not from untrusted input.
#[derive(Default)]
struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Integer slices (the retained-gene keys) arrive here as one raw
        // byte slice; fold eight bytes per round.
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Memo key of one layer's base costs within one plan. Given the plan, the
/// component counts are a pure function of `n_macros` (the memoized
/// [`AllocPlan::solve`]), and the layer's ADC configuration is plan-
/// constant — so `(layer, n_macros, macros, eff_adcs)` pins every input of
/// [`compute_layer_base_with`] exactly.
#[derive(Debug, Hash, PartialEq, Eq, Clone, Copy)]
struct BaseKey {
    layer: usize,
    n_macros: usize,
    macros: usize,
    eff_adcs: usize,
}

/// Identity of the gene-independent half of the scoring pipeline: one entry
/// per `(RatioRram, crossbar, DAC, weight duplication)` combination — the
/// same inputs that fix a [`Dataflow`] and an [`AllocPlan`] within one
/// evaluator's run.
#[derive(Debug, Hash, PartialEq, Eq, Clone)]
struct PlanKey {
    ratio_bits: u64,
    crossbar: CrossbarConfig,
    dac_bits: u32,
    wt_dup: Arc<Vec<usize>>,
}

/// One layer's slice of a retained breakdown, packed so the whole candidate
/// retains as a single allocation.
#[derive(Clone, Copy)]
struct RetainedLayer {
    macros: usize,
    share: Option<usize>,
    eff_adcs: usize,
    base: LayerBaseCosts,
    dynamic: (f64, f64),
}

/// The per-layer breakdown of one scored (feasible) candidate, retained so
/// its children can rescore incrementally.
struct Retained {
    layers: Vec<RetainedLayer>,
    macro_count: usize,
    counts: Arc<Vec<ComponentCounts>>,
    power: Watts,
}

/// Reusable per-candidate working buffers; contents are transient (each
/// `score` call overwrites them), kept only to avoid reallocating a dozen
/// short vectors per candidate in the hot loop.
#[derive(Default)]
struct Scratch {
    macros: Vec<usize>,
    shares: Vec<Option<usize>>,
    root_adc: Vec<usize>,
    eff_adcs: Vec<usize>,
    base: Vec<LayerBaseCosts>,
    dynamic: Vec<(f64, f64)>,
    stages: Vec<LayerStages>,
    groups: Vec<MacroGroup>,
    solution: PipelineSolution,
}

/// Everything memoized for one [`PlanKey`].
struct PlanState {
    plan: AllocPlan,
    /// `sum_i WtDup_i x set_i` — matches `Architecture::crossbar_count`.
    crossbar_count: usize,
    /// The model's MAC count (constant per run, cached to avoid re-deriving
    /// model statistics per candidate).
    total_macs: u64,
    /// Eq. (6) solutions per physical macro count; `None` memoizes an
    /// infeasible solve.
    solves: FastMap<usize, Option<Arc<Vec<ComponentCounts>>>>,
    /// Per-layer base costs keyed by their exact inputs (see [`BaseKey`]):
    /// a mutated macro count changes the water-filling delay and with it
    /// every layer's counts, but EA walks revisit the same few `n_macros`
    /// values constantly, so the touched layers usually hit here too.
    base_memo: FastMap<BaseKey, LayerBaseCosts>,
    /// NoC-coupled `(merge, transfer)` terms keyed by `(layer, macros,
    /// macro_count)` — exact only without sharing (the key then pins every
    /// input of [`compute_layer_dynamic_with`]); sharing candidates always
    /// recompute.
    dyn_memo: FastMap<(usize, usize, usize), (f64, f64)>,
    /// Realized power per physical macro count — exact only without sharing
    /// (groups are then all singleton, counts fix the group terms, and
    /// `macro_count == n_macros`); sharing candidates always recompute.
    power_memo: FastMap<usize, Watts>,
    retained: FastMap<Vec<u32>, Arc<Retained>>,
    order: VecDeque<Vec<u32>>,
    scratch: Scratch,
}

impl PlanState {
    fn new(core: &EvalCore<'_>, df: &Dataflow, point: DesignPoint) -> Self {
        Self {
            plan: AllocPlan::prepare(
                core.model(),
                df,
                point,
                core.total_power(),
                core.hw(),
                core.macro_mode(),
            ),
            crossbar_count: df
                .programs()
                .iter()
                .map(|p| p.wt_dup * p.crossbar_set)
                .sum(),
            total_macs: core.model().stats().total_macs,
            solves: FastMap::default(),
            base_memo: FastMap::default(),
            dyn_memo: FastMap::default(),
            power_memo: FastMap::default(),
            retained: FastMap::default(),
            order: VecDeque::new(),
            scratch: Scratch::default(),
        }
    }

    /// Inserts a breakdown the caller has verified is not yet retained
    /// (identical genes produce bit-identical breakdowns, so re-retaining a
    /// seen gene would only churn allocations).
    fn retain(&mut self, key: Vec<u32>, entry: Retained) {
        self.order.push_back(key.clone());
        self.retained.insert(key, Arc::new(entry));
        while self.order.len() > RETAIN_CAP {
            if let Some(old) = self.order.pop_front() {
                self.retained.remove(&old);
            }
        }
    }
}

/// Rebuilds `groups` in place with [`MacroGroup::build_from`]'s exact
/// first-seen-root ordering and contents, reusing the member vectors'
/// allocations across candidates.
fn rebuild_groups(groups: &mut Vec<MacroGroup>, macros: &[usize], shares: &[Option<usize>]) {
    let mut used = 0usize;
    fn start_group(groups: &mut Vec<MacroGroup>, used: &mut usize, root: usize, macros: usize) {
        if *used < groups.len() {
            let g = &mut groups[*used];
            g.root = root;
            g.macros = macros;
            g.members.clear();
            g.members.push(root);
        } else {
            groups.push(MacroGroup {
                root,
                members: vec![root],
                macros,
            });
        }
        *used += 1;
    }
    for (i, (&m, &share)) in macros.iter().zip(shares).enumerate() {
        match share {
            None => start_group(groups, &mut used, i, m),
            Some(root) => {
                if let Some(g) = groups[..used].iter_mut().find(|g| g.root == root) {
                    g.members.push(i);
                    g.macros = g.macros.max(m);
                } else {
                    // Root not seen (defensive): its own group, as in
                    // `build_from`.
                    start_group(groups, &mut used, i, m);
                }
            }
        }
    }
    groups.truncate(used);
}

/// What one engine scoring produced, and how.
pub(crate) struct DeltaOutcome {
    /// The slim score, bit-identical to [`EvalCore::score`].
    pub score: CandidateScore,
    /// Layers whose base costs were recomputed (0 for a pure reuse, the
    /// full layer count for a fallback).
    pub layers_recomputed: usize,
    /// The candidate was rescored from the parent's retained breakdown.
    pub used_delta: bool,
    /// A parent was offered but the engine had to recompute everything
    /// (missing retained breakdown or a too-wide gene diff).
    pub fallback: bool,
}

/// The shared delta-rescoring state of one [`CandidateEvaluator`]
/// (one map entry per design point / dataflow combination).
///
/// [`CandidateEvaluator`]: crate::CandidateEvaluator
pub(crate) struct DeltaEngine {
    plans: Mutex<FastMap<PlanKey, PlanState>>,
}

impl DeltaEngine {
    pub(crate) fn new() -> Self {
        Self {
            plans: Mutex::new(FastMap::default()),
        }
    }

    /// Checks out the plan state for one `(dataflow, design point)` so a
    /// whole batch of candidates can be scored with a single map lookup.
    /// The state is returned to the engine when the session drops.
    pub(crate) fn session<'e, 'c, 'm>(
        &'e self,
        core: &'c EvalCore<'m>,
        df: &'c Dataflow,
        point: DesignPoint,
        wt_dup: &Arc<Vec<usize>>,
    ) -> DeltaSession<'e, 'c, 'm> {
        let key = PlanKey {
            ratio_bits: point.ratio_rram.to_bits(),
            crossbar: point.crossbar,
            dac_bits: df.dac().bits(),
            wt_dup: Arc::clone(wt_dup),
        };
        let state = self
            .plans
            .lock()
            .expect("delta engine")
            .remove(&key)
            .unwrap_or_else(|| PlanState::new(core, df, point));
        DeltaSession {
            engine: self,
            core,
            df,
            point,
            key,
            state: Some(state),
        }
    }
}

impl std::fmt::Debug for DeltaEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let plans = self.plans.lock().expect("delta engine").len();
        f.debug_struct("DeltaEngine")
            .field("plans", &plans)
            .finish()
    }
}

/// A checked-out [`PlanState`]: scores candidates against their parents'
/// retained breakdowns until dropped (which returns the state to the
/// engine).
pub(crate) struct DeltaSession<'e, 'c, 'm> {
    engine: &'e DeltaEngine,
    core: &'c EvalCore<'m>,
    df: &'c Dataflow,
    point: DesignPoint,
    key: PlanKey,
    state: Option<PlanState>,
}

impl Drop for DeltaSession<'_, '_, '_> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            self.engine
                .plans
                .lock()
                .expect("delta engine")
                .insert(self.key.clone(), state);
        }
    }
}

impl DeltaSession<'_, '_, '_> {
    /// Scores one candidate, incrementally when `parent` has a retained
    /// breakdown and the gene diff is narrow, with a full (but still
    /// plan-memoized) recomputation otherwise. Bit-identical to
    /// [`EvalCore::score`] in every case.
    pub(crate) fn score(&mut self, gene: &MacAllocGene, parent: Option<&[u32]>) -> DeltaOutcome {
        let raw = gene.as_slice();
        let ps = self.state.as_mut().expect("plan state checked out");
        let hw = self.core.hw();
        let l = self.df.programs().len();

        let parent_entry = parent.and_then(|p| ps.retained.get(p).map(Arc::clone));
        let fallback_requested = parent.is_some();
        let use_delta = match (&parent_entry, parent) {
            (Some(_), Some(p)) => {
                p.len() == raw.len()
                    && raw.iter().zip(p).filter(|(a, b)| a != b).count() <= MAX_DELTA_DIFF
            }
            _ => false,
        };
        let outcome = |score, layers_recomputed, used_delta: bool| DeltaOutcome {
            score,
            layers_recomputed,
            used_delta,
            fallback: fallback_requested && !used_delta,
        };

        gene.decode_into(&mut ps.scratch.macros, &mut ps.scratch.shares);
        let macros: &[usize] = &ps.scratch.macros;
        let shares: &[Option<usize>] = &ps.scratch.shares;
        let n_macros = physical_macros(macros, shares);
        // Eq. (6) depends on the gene only through `n_macros`: memoize.
        let counts = match ps.solves.get(&n_macros) {
            Some(entry) => entry.clone(),
            None => {
                let solved = ps.plan.solve(n_macros).ok().map(Arc::new);
                ps.solves.insert(n_macros, solved.clone());
                solved
            }
        };
        let Some(counts) = counts else {
            // Allocation failure: the full pipeline returns INFEASIBLE too.
            return outcome(CandidateScore::INFEASIBLE, 0, use_delta);
        };
        let no_sharing = shares.iter().all(Option::is_none);

        // Macro groups and the quantities the full pipeline derives from the
        // completed architecture — replicated from the gene decoding (the
        // allocator assigns `layer: i` in program order, so group roots and
        // sharing lookups are index-based on both paths).
        rebuild_groups(&mut ps.scratch.groups, macros, shares);
        let macro_count: usize = ps.scratch.groups.iter().map(|g| g.macros).sum();

        // `Architecture::effective_adcs`: every layer sees the largest ADC
        // bank among its root and the root's sharers (its own bank when
        // nothing is shared).
        ps.scratch.eff_adcs.clear();
        if no_sharing {
            ps.scratch.eff_adcs.extend(counts.iter().map(|c| c.adc));
        } else {
            ps.scratch.root_adc.clear();
            ps.scratch.root_adc.extend(counts.iter().map(|c| c.adc));
            for j in 0..l {
                if let Some(r) = shares[j] {
                    ps.scratch.root_adc[r] = ps.scratch.root_adc[r].max(counts[j].adc);
                }
            }
            let root_adc = &ps.scratch.root_adc;
            ps.scratch
                .eff_adcs
                .extend((0..l).map(|i| root_adc[shares[i].unwrap_or(i)]));
        }
        let eff_adcs: &[usize] = &ps.scratch.eff_adcs;

        let parent_ref = if use_delta {
            parent_entry.as_deref()
        } else {
            None
        };
        let same_counts = parent_ref.is_some_and(|p| Arc::ptr_eq(&counts, &p.counts));

        // Base (NoC-independent) stage costs: reuse every layer whose
        // inputs are unchanged from the parent, then try the exact-input
        // memo, and only then recompute.
        let mut recomputed = 0usize;
        ps.scratch.base.clear();
        for i in 0..l {
            if let Some(p) = parent_ref {
                let pl = &p.layers[i];
                let unchanged = macros[i] == pl.macros
                    && eff_adcs[i] == pl.eff_adcs
                    && (same_counts || counts[i] == p.counts[i]);
                if unchanged {
                    ps.scratch.base.push(pl.base);
                    continue;
                }
            }
            let key = BaseKey {
                layer: i,
                n_macros,
                macros: macros[i],
                eff_adcs: eff_adcs[i],
            };
            if let Some(&b) = ps.base_memo.get(&key) {
                ps.scratch.base.push(b);
                continue;
            }
            let inputs = LayerCostInputs {
                macros: macros[i],
                effective_adcs: eff_adcs[i],
                adc: ps.plan.adcs()[i],
                shift_add: counts[i].shift_add,
                pool: counts[i].pool,
                activation: counts[i].activation,
                eltwise: counts[i].eltwise,
            };
            match compute_layer_base_with(self.df, hw, i, &inputs) {
                Ok(b) => {
                    ps.scratch.base.push(b);
                    recomputed += 1;
                    if ps.base_memo.len() < BASE_MEMO_CAP {
                        ps.base_memo.insert(key, b);
                    }
                }
                // The full pipeline fails this candidate identically.
                Err(_) => return outcome(CandidateScore::INFEASIBLE, recomputed, use_delta),
            }
        }

        // NoC-coupled terms: parent reuse per layer when the macro count and
        // sharing are unchanged; the `(layer, macros, macro_count)` memo
        // otherwise (exact without sharing); full recomputation when shared.
        let noc = NocConfig::for_macros(macro_count, hw);
        let root_of = |x: usize| shares[x].unwrap_or(x);
        let noc_same = parent_ref.is_some_and(|p| {
            macro_count == p.macro_count
                && p.layers.iter().zip(shares).all(|(pl, s)| pl.share == *s)
        });
        ps.scratch.dynamic.clear();
        for (i, &m) in macros.iter().enumerate() {
            if noc_same {
                let pl = &parent_ref.expect("noc_same implies a parent").layers[i];
                if m == pl.macros {
                    ps.scratch.dynamic.push(pl.dynamic);
                    continue;
                }
            }
            if no_sharing {
                let key = (i, m, macro_count);
                if let Some(&d) = ps.dyn_memo.get(&key) {
                    ps.scratch.dynamic.push(d);
                    continue;
                }
                let d = compute_layer_dynamic_with(self.df, hw, i, m, root_of, &noc);
                if ps.dyn_memo.len() < BASE_MEMO_CAP {
                    ps.dyn_memo.insert(key, d);
                }
                ps.scratch.dynamic.push(d);
            } else {
                ps.scratch
                    .dynamic
                    .push(compute_layer_dynamic_with(self.df, hw, i, m, root_of, &noc));
            }
        }

        ps.scratch.stages.clear();
        for i in 0..l {
            ps.scratch.stages.push(assemble_stages(
                ps.scratch.base[i],
                ps.scratch.dynamic[i].0,
                ps.scratch.dynamic[i].1,
            ));
        }
        solve_pipeline_into(
            self.df,
            &ps.scratch.stages,
            &ps.scratch.groups,
            &mut ps.scratch.solution,
        );

        // Realized power: counts, sharing and macro count fix it exactly —
        // reuse the parent's, else (without sharing) the per-`n_macros`
        // memo, else recompute.
        let power = match parent_ref {
            Some(p) if same_counts && noc_same => p.power,
            _ => {
                let memoized = if no_sharing {
                    ps.power_memo.get(&n_macros).copied()
                } else {
                    None
                };
                match memoized {
                    Some(w) => w,
                    None => {
                        let plan_adcs = ps.plan.adcs();
                        let w = power_breakdown_from(
                            hw,
                            self.point.crossbar,
                            self.df.dac(),
                            ps.crossbar_count,
                            &ps.scratch.groups,
                            macro_count,
                            |m| (counts[m], plan_adcs[m].bits()),
                        )
                        .total();
                        if no_sharing && ps.power_memo.len() < BASE_MEMO_CAP {
                            ps.power_memo.insert(n_macros, w);
                        }
                        w
                    }
                }
            }
        };

        let summary = summarize_pipeline(self.df, &ps.scratch.solution, power, ps.total_macs);
        let fitness = self.core.objective().fitness_of_summary(&summary);
        let score = CandidateScore {
            fitness,
            feasible: true,
        };

        // Retention: identical genes rescore to bit-identical breakdowns,
        // so an already-retained gene is left untouched (no allocation).
        if !ps.retained.contains_key(raw) {
            let scratch = &ps.scratch;
            let layers: Vec<RetainedLayer> = (0..l)
                .map(|i| RetainedLayer {
                    macros: scratch.macros[i],
                    share: scratch.shares[i],
                    eff_adcs: scratch.eff_adcs[i],
                    base: scratch.base[i],
                    dynamic: scratch.dynamic[i],
                })
                .collect();
            ps.retain(
                raw.to_vec(),
                Retained {
                    layers,
                    macro_count,
                    counts,
                    power,
                },
            );
        }
        outcome(score, recomputed, use_delta)
    }
}

#[cfg(test)]
mod profile {
    use super::*;
    use crate::ea::Objective;
    use crate::eval::EvalCacheConfig;
    use pimsyn_arch::{DacConfig, HardwareParams, MacroMode};
    use pimsyn_model::zoo;
    use std::time::Instant;

    /// Rough single-threaded throughput check for the delta session; run with
    /// `cargo test -p pimsyn-dse --release delta_throughput -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn delta_throughput() {
        let model = zoo::alexnet_cifar(10);
        let hw = HardwareParams::date24();
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(1).unwrap();
        let dup = vec![1usize; model.weight_layer_count()];
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        let point = DesignPoint {
            ratio_rram: 0.3,
            crossbar: xb,
        };
        let core = EvalCore::new(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::disabled(),
        );
        let l = model.weight_layer_count();
        let caps: Vec<usize> = df
            .programs()
            .iter()
            .map(|p| (p.wt_dup * p.row_groups).clamp(1, 4))
            .collect();
        let mut macros_w = vec![1usize; l];
        let mut chain = Vec::new();
        chain.push(MacAllocGene::encode(&macros_w, &vec![None; l]));
        for k in 0..256 {
            let i = k % l;
            macros_w[i] = 1 + (macros_w[i] + k * 13) % caps[i];
            chain.push(MacAllocGene::encode(&macros_w, &vec![None; l]));
        }
        let engine = DeltaEngine::new();
        let wt_dup = Arc::new(dup);
        let mut session = engine.session(&core, &df, point, &wt_dup);
        // Warm up memos and retention.
        let mut prev: Option<&MacAllocGene> = None;
        for g in &chain {
            session.score(g, Some(prev.unwrap_or(g).as_slice()));
            prev = Some(g);
        }
        let rounds = 400;
        let wall = Instant::now();
        for _ in 0..rounds {
            let mut prev: Option<&MacAllocGene> = None;
            for g in &chain {
                let parent = prev.unwrap_or(g).as_slice();
                let out = session.score(g, Some(parent));
                std::hint::black_box(out.score.fitness);
                prev = Some(g);
            }
        }
        let total = wall.elapsed().as_secs_f64();
        let n = (rounds * chain.len()) as f64;
        eprintln!(
            "candidates: {n}, {:.0} cand/s, {:.3} us/cand",
            n / total,
            total / n * 1e6
        );
    }
}
