//! Harness regenerating every table and figure of the PIMSYN paper.
//!
//! Each `tableN_*` / `figN_*` function computes the data behind one exhibit
//! of the evaluation section and returns a printable struct; the `repro`
//! binary renders them to stdout, and the criterion benches time the
//! underlying synthesis machinery. `EXPERIMENTS.md` records the
//! paper-reported values next to what this harness measures.
//!
//! Absolute numbers depend on the power envelope the authors used (not
//! stated in the paper); the harness therefore reports *shape* — who wins
//! and by what factor — alongside the published reference values.

#![warn(missing_docs)]

use std::fmt;

use pimsyn::{
    CancelToken, DesignSpace, NullSink, Objective, SynthesisEngine, SynthesisOptions,
    SynthesisRequest, SynthesisResult, WtDupStrategy,
};
use pimsyn_arch::{HardwareParams, MacroMode, Watts};
use pimsyn_baselines::published::{
    Table5Row, FIG6_EFFICIENCY_GAIN_RANGE, FIG6_THROUGHPUT_GAIN_RANGE, TABLE4_BASELINES,
    TABLE4_PIMSYN_TOPS_PER_WATT, TABLE5,
};
use pimsyn_baselines::{gibbon, inventory, isaac};
use pimsyn_model::{zoo, Model};

/// Default power envelope for ImageNet-scale experiments (ISAAC-class chips
/// run at several tens of watts).
pub const IMAGENET_POWER: Watts = Watts(65.0);

/// Default power envelope for the CIFAR-scale experiments. One weight copy
/// of CIFAR-VGG16 alone needs ~2.5 W of ReRAM under Table III devices, so
/// 15 W leaves the synthesizer real duplication headroom.
pub const CIFAR_POWER: Watts = Watts(15.0);

fn harness_options(power: Watts) -> SynthesisOptions {
    let mut opts = SynthesisOptions::fast(power)
        .with_seed(0xBE7C)
        .with_design_space(
            // The full RatioRram grid and crossbar sizes of Table I, with two
            // cell/DAC resolutions — rich enough for the ablations while keeping
            // the whole harness in the minutes range.
            DesignSpace::custom(
                vec![0.1, 0.15, 0.2, 0.25, 0.3, 0.4],
                vec![128, 256, 512],
                vec![2, 4],
                vec![1, 2, 4],
            ),
        );
    opts.parallel = true;
    opts
}

/// Options for ImageNet-scale models: larger crossbars (so classifier
/// layers fit the crossbar budget) and two RatioRram levels.
fn imagenet_options(power: Watts) -> SynthesisOptions {
    harness_options(power).with_design_space(DesignSpace::custom(
        vec![0.2, 0.3, 0.4],
        vec![128, 256, 512],
        vec![2, 4],
        vec![1, 2, 4],
    ))
}

/// All harness synthesis goes through the engine API: one reusable engine,
/// one unobserved job per synthesis (the same code path batch services use).
fn synthesize(model: &Model, opts: SynthesisOptions) -> Option<SynthesisResult> {
    SynthesisEngine::new()
        .run(
            &SynthesisRequest::new(model.clone(), opts),
            &NullSink,
            &CancelToken::new(),
        )
        .ok()
}

/// Synthesizes an ImageNet model with harness settings.
pub fn synthesize_imagenet(model: &Model, power: Watts) -> Option<SynthesisResult> {
    synthesize(model, imagenet_options(power))
}

/// Table I: the design space definition (rendered, not measured).
pub fn table1_design_space() -> String {
    let mut out = String::new();
    out.push_str("Table I — design space of PIM-based CNN accelerators\n");
    out.push_str("  RatioRram   : 0.1 .. 0.4 (grid 0.1/0.2/0.3/0.4)\n");
    out.push_str("  WtDup       : per-layer positive integers (SA-filtered)\n");
    out.push_str("  XbSize      : 128, 256, 512\n");
    out.push_str("  ResRram     : 1, 2, 4 bits\n");
    out.push_str("  ResDAC      : 1, 2, 4 bits\n");
    out.push_str("  MacAlloc    : macros per layer (+ inter-layer sharing)\n");
    out.push_str("  CompAlloc   : units per component family per layer\n");
    let space = DesignSpace::paper();
    out.push_str(&format!(
        "  outer points: {} (x 30 SA candidates x 3 DAC choices per point)\n",
        space.outer_len()
    ));
    out
}

/// Table III: the component library (rendered from [`HardwareParams`]).
pub fn table3_components() -> String {
    let hw = HardwareParams::date24();
    let mut out = String::new();
    out.push_str("Table III — evaluation & exploration parameters\n");
    out.push_str(&format!(
        "  eDRAM      : {} KB, {} b bus        {:.1} mW\n",
        hw.scratchpad_bytes / 1024,
        hw.scratchpad_bus_bits,
        hw.scratchpad_power.milli()
    ));
    out.push_str(&format!(
        "  NoC        : flit {} b, {} ports     {:.0} mW\n",
        hw.noc_flit_bits,
        hw.noc_ports,
        hw.noc_router_power.milli()
    ));
    for size in [128usize, 256, 512] {
        let xb = pimsyn_arch::CrossbarConfig::new(size, 1).expect("legal");
        out.push_str(&format!(
            "  ReRAM xbar : {size}x{size} @1b           {:.2} mW\n",
            xb.power(&hw).milli()
        ));
    }
    for bits in [1u32, 2, 4] {
        let dac = pimsyn_arch::DacConfig::new(bits).expect("legal");
        out.push_str(&format!(
            "  DAC        : {bits} bit               {:.1} uW\n",
            dac.power(&hw).value() * 1e6
        ));
    }
    for bits in [7u32, 8, 14] {
        let adc = pimsyn_arch::AdcConfig::new(bits, &hw);
        out.push_str(&format!(
            "  ADC        : {bits} bit               {:.1} mW @ {:.2} GS/s\n",
            adc.power(&hw).milli(),
            adc.sample_rate(&hw).value() / 1e9
        ));
    }
    out
}

/// One row of the Table IV comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Accelerator name.
    pub name: String,
    /// Peak TOPS/W under our Table III power model.
    pub modeled: f64,
    /// Peak TOPS/W the original paper reports.
    pub published: f64,
    /// PIMSYN's modeled improvement over this baseline.
    pub improvement: f64,
}

/// Table IV: peak power efficiency of PIMSYN vs the five manual designs.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// PIMSYN's synthesized peak TOPS/W (our measurement).
    pub pimsyn_modeled: f64,
    /// PIMSYN's published peak (3.07 TOPS/W).
    pub pimsyn_published: f64,
    /// Baseline rows.
    pub rows: Vec<Table4Row>,
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table IV — peak power efficiency (TOPS/W, 16-bit)")?;
        writeln!(
            f,
            "  {:<10} {:>10} {:>10} {:>14}",
            "design", "modeled", "published", "PIMSYN gain"
        )?;
        writeln!(
            f,
            "  {:<10} {:>10.3} {:>10.2} {:>14}",
            "PIMSYN", self.pimsyn_modeled, self.pimsyn_published, "-"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<10} {:>10.3} {:>10.2} {:>13.2}x",
                r.name, r.modeled, r.published, r.improvement
            )?;
        }
        Ok(())
    }
}

/// Computes Table IV: synthesizes a PIMSYN accelerator and compares its peak
/// efficiency against the five baseline inventories.
pub fn table4_peak_efficiency() -> Table4 {
    let hw = HardwareParams::date24();
    let model = zoo::alexnet();
    let pimsyn_modeled = synthesize_imagenet(&model, IMAGENET_POWER)
        .map(|r| r.peak_efficiency())
        .unwrap_or(0.0);
    let rows = inventory::table4_inventories()
        .into_iter()
        .map(|inv| {
            let modeled = inv.peak_tops_per_watt(16, 16, &hw);
            Table4Row {
                name: inv.name.to_string(),
                modeled,
                published: inv.published_tops_per_watt,
                improvement: if modeled > 0.0 {
                    pimsyn_modeled / modeled
                } else {
                    0.0
                },
            }
        })
        .collect();
    Table4 {
        pimsyn_modeled,
        pimsyn_published: TABLE4_PIMSYN_TOPS_PER_WATT,
        rows,
    }
}

/// One distance sample of Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Point {
    /// Layer distance between the sharing pair.
    pub distance: usize,
    /// Latency with sharing / latency without (Fig. 5a).
    pub delay_ratio: f64,
    /// Physical ADCs with sharing / without (Fig. 5b; < 1 means saved).
    pub adc_ratio: f64,
}

/// Fig. 5: inter-layer ADC reuse — delay penalty and ADC savings vs the
/// distance between the sharing layers, measured with the cycle-accurate
/// engine (the shared ADC bank is a physically serialized resource there, so
/// close, overlapping layers genuinely contend) on a synthesized
/// CIFAR-VGG16 accelerator. The ADC ratio is pair-local: converters of the
/// sharing pair after reuse (the larger bank) over before (both banks).
pub fn fig5_adc_reuse() -> Vec<Fig5Point> {
    let model = zoo::vgg16_cifar(10);
    let opts = harness_options(CIFAR_POWER).without_macro_sharing();
    let Some(result) = synthesize(&model, opts) else {
        return Vec::new();
    };
    let base_arch = result.architecture.clone();
    let Ok(base) = pimsyn_sim::simulate(&model, &result.dataflow, &base_arch, 1) else {
        return Vec::new();
    };

    // Anchor on a heavyweight early conv so the pair's ADC demand matters.
    let anchor = 1usize;
    let mut out = Vec::new();
    let l = model.weight_layer_count();
    for distance in 1..(l - anchor).min(9) {
        let partner = anchor + distance;
        let mut arch = base_arch.clone();
        arch.layers[partner].shares_macros_with = Some(anchor);
        let Ok(shared) = pimsyn_sim::simulate(&model, &result.dataflow, &arch, 1) else {
            continue;
        };
        let a = base_arch.layers[anchor].components.adc;
        let b = base_arch.layers[partner].components.adc;
        out.push(Fig5Point {
            distance,
            delay_ratio: shared.latency.value() / base.latency.value(),
            adc_ratio: a.max(b) as f64 / (a + b).max(1) as f64,
        });
    }
    out
}

/// Renders Fig. 5 points.
pub fn render_fig5(points: &[Fig5Point]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 5 — inter-layer ADC reuse vs layer distance\n");
    out.push_str(&format!(
        "  {:<9} {:>18} {:>18}\n",
        "distance", "norm. delay (a)", "norm. #ADC (b)"
    ));
    for p in points {
        out.push_str(&format!(
            "  {:<9} {:>18.4} {:>18.4}\n",
            p.distance, p.delay_ratio, p.adc_ratio
        ));
    }
    out.push_str("  paper: distant pairs -> delay ratio ~1.0, fewer ADCs after reuse\n");
    out
}

/// One model row of Fig. 6.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Row {
    /// Benchmark name.
    pub model: String,
    /// ISAAC effective power efficiency (TOPS/W).
    pub isaac_efficiency: f64,
    /// PIMSYN effective power efficiency (TOPS/W).
    pub pimsyn_efficiency: f64,
    /// ISAAC throughput (TOPS).
    pub isaac_throughput: f64,
    /// PIMSYN throughput (TOPS).
    pub pimsyn_throughput: f64,
}

impl Fig6Row {
    /// Efficiency gain of PIMSYN over ISAAC.
    pub fn efficiency_gain(&self) -> f64 {
        if self.isaac_efficiency > 0.0 {
            self.pimsyn_efficiency / self.isaac_efficiency
        } else {
            0.0
        }
    }

    /// Throughput gain of PIMSYN over ISAAC.
    pub fn throughput_gain(&self) -> f64 {
        if self.isaac_throughput > 0.0 {
            self.pimsyn_throughput / self.isaac_throughput
        } else {
            0.0
        }
    }
}

/// Fig. 6: effective power efficiency and throughput vs ISAAC across the
/// given benchmarks, at the same power envelope.
pub fn fig6_effective_vs_isaac(models: &[Model]) -> Vec<Fig6Row> {
    let hw = HardwareParams::date24();
    models
        .iter()
        .filter_map(|model| {
            let isaac_power = IMAGENET_POWER.max(isaac::isaac_min_power(model, &hw));
            let isaac_rep = isaac::evaluate_isaac_analytic(model, isaac_power, &hw).ok()?;
            let pimsyn_rep = synthesize_imagenet(model, IMAGENET_POWER)?;
            // Compare throughput at the same power scale (ISAAC's efficiency
            // is power-invariant; large models need multi-chip envelopes).
            let isaac_tops_at_budget =
                isaac_rep.efficiency_tops_per_watt() * IMAGENET_POWER.value();
            Some(Fig6Row {
                model: model.name().to_string(),
                isaac_efficiency: isaac_rep.efficiency_tops_per_watt(),
                pimsyn_efficiency: pimsyn_rep.analytic.efficiency_tops_per_watt(),
                isaac_throughput: isaac_tops_at_budget,
                pimsyn_throughput: pimsyn_rep.analytic.throughput_tops(),
            })
        })
        .collect()
}

/// Renders Fig. 6 rows with the paper's reference ranges.
pub fn render_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::new();
    out.push_str("Fig. 6 — effective power efficiency & throughput vs ISAAC\n");
    out.push_str(&format!(
        "  {:<10} {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6}\n",
        "model", "ISAAC", "PIMSYN", "gain", "ISAAC", "PIMSYN", "gain"
    ));
    out.push_str(&format!(
        "  {:<10} {:>9} {:>9} {:>6} | {:>9} {:>9} {:>6}\n",
        "", "TOPS/W", "TOPS/W", "", "TOPS", "TOPS", ""
    ));
    for r in rows {
        out.push_str(&format!(
            "  {:<10} {:>9.3} {:>9.3} {:>5.2}x | {:>9.3} {:>9.3} {:>5.2}x\n",
            r.model,
            r.isaac_efficiency,
            r.pimsyn_efficiency,
            r.efficiency_gain(),
            r.isaac_throughput,
            r.pimsyn_throughput,
            r.throughput_gain(),
        ));
    }
    out.push_str(&format!(
        "  paper: efficiency gain {:.1}-{:.1}x, throughput gain {:.2}-{:.2}x\n",
        FIG6_EFFICIENCY_GAIN_RANGE.0,
        FIG6_EFFICIENCY_GAIN_RANGE.1,
        FIG6_THROUGHPUT_GAIN_RANGE.0,
        FIG6_THROUGHPUT_GAIN_RANGE.1,
    ));
    out
}

/// One measured row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5Measured {
    /// Benchmark name.
    pub model: String,
    /// Gibbon-proxy EDP / energy / latency (ms x mJ, mJ, ms).
    pub gibbon: (f64, f64, f64),
    /// PIMSYN EDP / energy / latency.
    pub pimsyn: (f64, f64, f64),
    /// The published row for side-by-side reporting.
    pub published: Table5Row,
}

/// Table V: EDP / energy / latency vs the Gibbon-like proxy on the CIFAR
/// benchmarks.
pub fn table5_gibbon() -> Vec<Table5Measured> {
    let hw = HardwareParams::date24();
    let models = [
        zoo::alexnet_cifar(10),
        zoo::vgg16_cifar(10),
        zoo::resnet18_cifar(10),
    ];
    models
        .iter()
        .zip(TABLE5)
        .filter_map(|(model, published)| {
            let g = gibbon::gibbon_proxy(model, CIFAR_POWER, &hw).ok()?;
            // Match the comparison metric (Table V is EDP-based) and give
            // the headline comparison the full paper-scale search effort.
            let opts = harness_options(CIFAR_POWER)
                .with_objective(Objective::EnergyDelayProduct)
                .with_effort(pimsyn::Effort::Paper);
            let p = synthesize(model, opts)?;
            let gr = &g.report;
            let pr = &p.analytic;
            Some(Table5Measured {
                model: model.name().to_string(),
                gibbon: (
                    gr.edp_ms_mj(),
                    gr.energy_per_image.value() * 1e3,
                    gr.latency.millis(),
                ),
                pimsyn: (
                    pr.edp_ms_mj(),
                    pr.energy_per_image.value() * 1e3,
                    pr.latency.millis(),
                ),
                published,
            })
        })
        .collect()
}

/// Renders Table V with published references.
pub fn render_table5(rows: &[Table5Measured]) -> String {
    let mut out = String::new();
    out.push_str("Table V — comparison with Gibbon (CIFAR-10 class models)\n");
    out.push_str("                    measured (proxy / ours)    published (Gibbon / PIMSYN)\n");
    for r in rows {
        out.push_str(&format!("  {}\n", r.model));
        out.push_str(&format!(
            "    EDP (ms*mJ) : {:>9.4} / {:<9.4}   {:>8.2} / {:<8.3}\n",
            r.gibbon.0, r.pimsyn.0, r.published.gibbon_edp, r.published.pimsyn_edp
        ));
        out.push_str(&format!(
            "    Energy (mJ) : {:>9.4} / {:<9.4}   {:>8.2} / {:<8.3}\n",
            r.gibbon.1, r.pimsyn.1, r.published.gibbon_energy, r.published.pimsyn_energy
        ));
        out.push_str(&format!(
            "    Latency (ms): {:>9.4} / {:<9.4}   {:>8.2} / {:<8.3}\n",
            r.gibbon.2, r.pimsyn.2, r.published.gibbon_latency, r.published.pimsyn_latency
        ));
    }
    out
}

/// One arm of the Fig. 7/8/9 ablations, normalized to the ISAAC baseline on
/// the same model and power envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationArm {
    /// Arm label (e.g. "SA-based").
    pub label: String,
    /// Power efficiency normalized to ISAAC.
    pub efficiency_norm: f64,
    /// Throughput normalized to ISAAC.
    pub throughput_norm: f64,
}

fn normalize_to_isaac(model: &Model, result: &SynthesisResult) -> Option<(f64, f64)> {
    let hw = HardwareParams::date24();
    // ISAAC's fixed design may need a larger (multi-chip) envelope than the
    // synthesis budget; evaluate it at the smallest feasible power — the
    // TOPS/W normalization is power-fair either way.
    let budget = result.architecture.power_budget;
    let power = budget.max(isaac::isaac_min_power(model, &hw));
    let isaac_rep = isaac::evaluate_isaac_analytic(model, power, &hw).ok()?;
    // ISAAC's per-crossbar inventory makes its efficiency power-invariant;
    // compare throughput at the synthesis budget by scaling accordingly.
    let isaac_tops_at_budget = isaac_rep.efficiency_tops_per_watt() * budget.value();
    Some((
        result.analytic.efficiency_tops_per_watt() / isaac_rep.efficiency_tops_per_watt(),
        result.analytic.throughput_tops() / isaac_tops_at_budget,
    ))
}

/// Fig. 7: power efficiency and throughput of the three duplication
/// strategies, normalized to ISAAC (CIFAR-VGG16 at the harness power).
pub fn fig7_weight_duplication() -> Vec<AblationArm> {
    let model = zoo::vgg16_cifar(10);
    let arms = [
        ("SA-based", WtDupStrategy::SimulatedAnnealing),
        ("Heuristic", WtDupStrategy::WohoProportional),
        ("No Duplication", WtDupStrategy::NoDuplication),
    ];
    arms.iter()
        .filter_map(|(label, strategy)| {
            let opts = harness_options(CIFAR_POWER).with_strategy(strategy.clone());
            let result = synthesize(&model, opts)?;
            let (e, t) = normalize_to_isaac(&model, &result)?;
            Some(AblationArm {
                label: (*label).to_string(),
                efficiency_norm: e,
                throughput_norm: t,
            })
        })
        .collect()
}

/// Fig. 8: identical vs specialized macro design.
pub fn fig8_macro_specialization() -> Vec<AblationArm> {
    let model = zoo::vgg16_cifar(10);
    let arms = [
        ("Specialized Macro", MacroMode::Specialized),
        ("Identical Macro", MacroMode::Identical),
    ];
    arms.iter()
        .filter_map(|(label, mode)| {
            let opts = harness_options(CIFAR_POWER).with_macro_mode(*mode);
            let result = synthesize(&model, opts)?;
            let (e, t) = normalize_to_isaac(&model, &result)?;
            Some(AblationArm {
                label: (*label).to_string(),
                efficiency_norm: e,
                throughput_norm: t,
            })
        })
        .collect()
}

/// Fig. 9: with vs without inter-layer macro sharing.
pub fn fig9_macro_sharing() -> Vec<AblationArm> {
    let model = zoo::vgg16_cifar(10);
    let configs = [("With Reuse", true), ("Without Reuse", false)];
    configs
        .iter()
        .filter_map(|(label, share)| {
            let mut opts = harness_options(CIFAR_POWER);
            if !share {
                opts = opts.without_macro_sharing();
            }
            let result = synthesize(&model, opts)?;
            let (e, t) = normalize_to_isaac(&model, &result)?;
            Some(AblationArm {
                label: (*label).to_string(),
                efficiency_norm: e,
                throughput_norm: t,
            })
        })
        .collect()
}

/// Renders an ablation (Figs. 7-9) with its paper reference ratio.
pub fn render_ablation(title: &str, arms: &[AblationArm], paper_ratio: (f64, f64)) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "  {:<18} {:>12} {:>12}\n",
        "arm", "eff (xISAAC)", "thr (xISAAC)"
    ));
    for a in arms {
        out.push_str(&format!(
            "  {:<18} {:>12.3} {:>12.3}\n",
            a.label, a.efficiency_norm, a.throughput_norm
        ));
    }
    if arms.len() >= 2 {
        let e = arms[0].efficiency_norm / arms[1].efficiency_norm.max(1e-12);
        let t = arms[0].throughput_norm / arms[1].throughput_norm.max(1e-12);
        out.push_str(&format!(
            "  measured first/second arm: eff {:.2}x thr {:.2}x | paper: eff {:.2}x thr {:.2}x\n",
            e, t, paper_ratio.0, paper_ratio.1
        ));
    }
    out
}

/// Number of Table IV baselines (sanity constant for benches).
pub const TABLE4_BASELINE_COUNT: usize = TABLE4_BASELINES.len();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderers_are_nonempty() {
        assert!(table1_design_space().contains("XbSize"));
        assert!(table3_components().contains("ADC"));
    }

    #[test]
    fn fig5_produces_adc_savings_without_adding_converters() {
        let points = fig5_adc_reuse();
        assert!(!points.is_empty());
        for p in &points {
            assert!(
                p.adc_ratio <= 1.0 + 1e-9,
                "sharing must not add ADCs: {p:?}"
            );
            assert!(p.delay_ratio > 0.0);
        }
    }

    #[test]
    fn fig7_sa_beats_no_duplication() {
        let arms = fig7_weight_duplication();
        assert_eq!(arms.len(), 3);
        let sa = &arms[0];
        let nodup = &arms[2];
        assert!(
            sa.throughput_norm > nodup.throughput_norm,
            "SA {} !> no-dup {}",
            sa.throughput_norm,
            nodup.throughput_norm
        );
    }
}
