//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p pimsyn-bench --release --bin repro -- all
//! cargo run -p pimsyn-bench --release --bin repro -- table4 fig6
//! ```
//!
//! Targets: `table1 table3 table4 table5 fig5 fig6 fig7 fig8 fig9 all`.

use pimsyn_baselines::published::{
    FIG7_SA_VS_HEURISTIC, FIG8_SPECIALIZED_VS_IDENTICAL, FIG9_SHARING_VS_NOT,
};
use pimsyn_bench as bench;
use pimsyn_model::zoo;

fn run(target: &str) {
    match target {
        "table1" => println!("{}", bench::table1_design_space()),
        "table3" => println!("{}", bench::table3_components()),
        "table4" => println!("{}", bench::table4_peak_efficiency()),
        "fig5" => println!("{}", bench::render_fig5(&bench::fig5_adc_reuse())),
        "fig6" => {
            let rows = bench::fig6_effective_vs_isaac(&zoo::imagenet_suite());
            println!("{}", bench::render_fig6(&rows));
        }
        "fig6-quick" => {
            let rows = bench::fig6_effective_vs_isaac(&[zoo::alexnet(), zoo::resnet18()]);
            println!("{}", bench::render_fig6(&rows));
        }
        "table5" => println!("{}", bench::render_table5(&bench::table5_gibbon())),
        "fig7" => println!(
            "{}",
            bench::render_ablation(
                "Fig. 7 — weight duplication strategies (normalized to ISAAC)",
                &bench::fig7_weight_duplication(),
                FIG7_SA_VS_HEURISTIC,
            )
        ),
        "fig8" => println!(
            "{}",
            bench::render_ablation(
                "Fig. 8 — identical vs specialized macros (normalized to ISAAC)",
                &bench::fig8_macro_specialization(),
                FIG8_SPECIALIZED_VS_IDENTICAL,
            )
        ),
        "fig9" => println!(
            "{}",
            bench::render_ablation(
                "Fig. 9 — inter-layer macro sharing (normalized to ISAAC)",
                &bench::fig9_macro_sharing(),
                FIG9_SHARING_VS_NOT,
            )
        ),
        "all" => {
            for t in [
                "table1", "table3", "table4", "fig5", "fig6", "table5", "fig7", "fig8", "fig9",
            ] {
                run(t);
            }
        }
        other => {
            eprintln!("unknown target `{other}`");
            eprintln!(
                "targets: table1 table3 table4 table5 fig5 fig6 fig6-quick fig7 fig8 fig9 all"
            );
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        run("all");
    } else {
        for a in &args {
            run(a);
        }
    }
}
