//! Fig. 6 bench: regenerates the effective-efficiency comparison against
//! ISAAC (two-model quick variant; run the `repro` binary for all five) and
//! times the ISAAC end-to-end evaluation.

use criterion::{criterion_group, Criterion};
use pimsyn_arch::{HardwareParams, Watts};
use pimsyn_baselines::isaac;
use pimsyn_model::zoo;

fn bench_fig6(c: &mut Criterion) {
    let hw = HardwareParams::date24();
    let model = zoo::alexnet();
    // ISAAC's fixed design needs a multi-chip envelope for ImageNet AlexNet
    // (its FC layers alone exceed a 65 W crossbar budget).
    let power = Watts(65.0).max(isaac::isaac_min_power(&model, &hw));
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("isaac_analytic_alexnet", |b| {
        b.iter(|| isaac::evaluate_isaac_analytic(&model, power, &hw).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);

fn main() {
    let rows = pimsyn_bench::fig6_effective_vs_isaac(&[zoo::alexnet(), zoo::resnet18()]);
    println!("{}", pimsyn_bench::render_fig6(&rows));
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
