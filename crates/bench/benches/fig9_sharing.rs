//! Fig. 9 bench: regenerates the macro-sharing ablation and times the
//! EA-based macro partitioning with and without `mutate_share`.

use criterion::{criterion_group, Criterion};
use pimsyn_arch::{CrossbarConfig, DacConfig, HardwareParams, MacroMode, Watts};
use pimsyn_baselines::published::FIG9_SHARING_VS_NOT;
use pimsyn_dse::{explore_macro_partitioning, no_duplication, DesignPoint, EaConfig};
use pimsyn_ir::Dataflow;
use pimsyn_model::zoo;

fn bench_fig9(c: &mut Criterion) {
    let model = zoo::alexnet_cifar(10);
    let hw = HardwareParams::date24();
    let xb = CrossbarConfig::new(128, 2).expect("legal");
    let dac = DacConfig::new(1).expect("legal");
    let budget = xb.budget(Watts(9.0), 0.3, &hw);
    let dup = no_duplication(&model, xb, budget).expect("budget fits");
    let df = Dataflow::compile(&model, xb, dac, &dup).expect("compiles");
    let point = DesignPoint {
        ratio_rram: 0.3,
        crossbar: xb,
    };

    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    for (label, sharing) in [("with_sharing", true), ("without_sharing", false)] {
        group.bench_function(format!("ea_{label}"), |b| {
            b.iter(|| {
                explore_macro_partitioning(
                    &model,
                    &df,
                    point,
                    Watts(9.0),
                    &hw,
                    MacroMode::Specialized,
                    &EaConfig {
                        allow_sharing: sharing,
                        ..EaConfig::fast()
                    },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);

fn main() {
    println!(
        "{}",
        pimsyn_bench::render_ablation(
            "Fig. 9 — inter-layer macro sharing (normalized to ISAAC)",
            &pimsyn_bench::fig9_macro_sharing(),
            FIG9_SHARING_VS_NOT,
        )
    );
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
