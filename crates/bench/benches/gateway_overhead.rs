//! Gateway-overhead benchmark: submit→result wall time for a tiny job
//! through the HTTP gateway (raw-socket REST round trips against a live
//! `serve_gateway_in_background` instance) versus the same job submitted
//! directly to a `SynthesisService`. The difference is the full REST tax —
//! TCP connect, HTTP parse, JSON payload decode, event-sink bookkeeping
//! and response serialization — which must stay a small fraction of even
//! the tiniest synthesis run.
//!
//! Besides the criterion timings, the bench measures both arms directly
//! and prints a `BENCH_gateway` JSON summary; set
//! `PIMSYN_BENCH_SAVE_GATEWAY=<path>` to also write it to a file (the
//! committed `BENCH_gateway.json` baseline was recorded this way). Pass
//! `--quick` (the CI smoke mode) to run a single small round that merely
//! proves the path compiles and executes.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimsyn::{ServiceConfig, SynthesisService};
use pimsyn_gateway::http::roundtrip;
use pimsyn_gateway::{parse_http_job, serve_gateway_in_background, GatewayConfig};
use pimsyn_model::json::JsonValue;

/// A deliberately tiny job: fast effort, hard evaluation cap, fixed seed —
/// the smallest real synthesis the framework runs, so the HTTP overhead is
/// as visible as it ever gets.
const TINY_JOB: &str = r#"{"model": "alexnet-cifar", "power": 9, "seed": 7, "max_evals": 60}"#;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

struct Gateway {
    handle: pimsyn_gateway::GatewayHandle,
    addr: String,
}

fn start_gateway() -> Gateway {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let service = Arc::new(SynthesisService::new(
        ServiceConfig::default().with_job_slots(1),
    ));
    let handle = serve_gateway_in_background(
        listener,
        service,
        |_job| {},
        GatewayConfig::new().with_quiet(true),
    )
    .expect("start gateway");
    let addr = handle.addr().to_string();
    Gateway { handle, addr }
}

fn post(addr: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let raw = format!(
        "POST {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let (status, _, body) = roundtrip(addr, raw.as_bytes()).expect("http round trip");
    (status, body)
}

fn get(addr: &str, path: &str) -> (u16, Vec<u8>) {
    let raw = format!("GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n");
    let (status, _, body) = roundtrip(addr, raw.as_bytes()).expect("http round trip");
    (status, body)
}

/// One full REST job lifecycle: POST the payload, block on the result.
/// Seconds of wall time.
fn http_round(addr: &str) -> f64 {
    let start = Instant::now();
    let (status, body) = post(addr, "/v1/jobs", TINY_JOB);
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let id = JsonValue::parse(std::str::from_utf8(&body).unwrap())
        .unwrap()
        .get("id")
        .and_then(JsonValue::as_usize)
        .expect("job id");
    let (status, body) = get(addr, &format!("/v1/jobs/{id}/result"));
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    black_box(body);
    start.elapsed().as_secs_f64()
}

/// The same job through the service directly — no sockets, no HTTP, no
/// JSON. Seconds of wall time.
fn direct_round(service: &SynthesisService) -> f64 {
    let request = parse_http_job(TINY_JOB.as_bytes()).expect("payload");
    let start = Instant::now();
    let handle = service.submit(request).expect("queue has room");
    black_box(handle.await_result().expect("feasible"));
    start.elapsed().as_secs_f64()
}

fn bench_gateway_overhead(c: &mut Criterion) {
    let quick = quick_mode();
    let samples = if quick { 1 } else { 10 };
    let gateway = start_gateway();
    let service = SynthesisService::new(ServiceConfig::default().with_job_slots(1));

    let mut group = c.benchmark_group("gateway_overhead");
    group.sample_size(samples);
    group.bench_function("http_submit_to_result", |b| {
        b.iter(|| http_round(&gateway.addr))
    });
    group.bench_function("direct_submit_to_result", |b| {
        b.iter(|| direct_round(&service))
    });
    group.finish();

    // Direct comparison (best of a few rounds per arm, so the JSON baseline
    // is stable against scheduler noise).
    let rounds = if quick { 1 } else { 5 };
    let best = |f: &dyn Fn() -> f64| (0..rounds).map(|_| f()).fold(f64::INFINITY, f64::min);
    let http = best(&|| http_round(&gateway.addr));
    let direct = best(&|| direct_round(&service));
    let overhead_ms = (http - direct).max(0.0) * 1e3;
    let overhead_pct = 100.0 * (http - direct).max(0.0) / direct.max(1e-12);
    let json = format!(
        "{{\n  \"bench\": \"gateway_overhead\",\n  \"model\": \"alexnet-cifar\",\n  \
         \"max_evals\": 60,\n  \"http_submit_to_result_s\": {http:.4},\n  \
         \"direct_submit_to_result_s\": {direct:.4},\n  \
         \"overhead_ms\": {overhead_ms:.2},\n  \"overhead_pct\": {overhead_pct:.1}\n}}"
    );
    println!("{json}");
    if let Ok(path) = std::env::var("PIMSYN_BENCH_SAVE_GATEWAY") {
        std::fs::write(&path, format!("{json}\n")).expect("write bench baseline");
        println!("(baseline written to {path})");
    }

    service.shutdown();
    let (status, _) = post(&gateway.addr, "/v1/drain", "");
    assert_eq!(status, 202);
    gateway.handle.join().expect("gateway exits cleanly");
}

criterion_group!(benches, bench_gateway_overhead);
criterion_main!(benches);
