//! Table V bench: regenerates the Gibbon comparison and times the
//! Gibbon-like proxy exploration.

use criterion::{criterion_group, Criterion};
use pimsyn_arch::{HardwareParams, Watts};
use pimsyn_baselines::gibbon;
use pimsyn_model::zoo;

fn bench_table5(c: &mut Criterion) {
    let hw = HardwareParams::date24();
    let model = zoo::alexnet_cifar(10);
    let mut group = c.benchmark_group("table5");
    group.sample_size(10);
    group.bench_function("gibbon_proxy_alexnet_cifar", |b| {
        b.iter(|| gibbon::gibbon_proxy(&model, Watts(6.0), &hw).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_table5);

fn main() {
    println!(
        "{}",
        pimsyn_bench::render_table5(&pimsyn_bench::table5_gibbon())
    );
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
