//! Micro-benchmarks of every synthesis stage: SA filter, dataflow
//! compilation, components allocation, EA partitioning, analytic evaluation
//! and the cycle-accurate engine. (The paper reports a ~4 h Python synthesis
//! runtime; these timings document where the Rust port spends its time.)

use criterion::{criterion_group, criterion_main, Criterion};
use pimsyn::{CancelToken, NullSink, SynthesisEngine, SynthesisOptions, SynthesisRequest};
use pimsyn_arch::{CrossbarConfig, DacConfig, HardwareParams, MacroMode, Watts};
use pimsyn_dse::{
    allocate_components, explore_macro_partitioning, no_duplication, wt_dup_candidates,
    AllocRequest, DesignPoint, EaConfig, SaConfig,
};
use pimsyn_ir::Dataflow;
use pimsyn_model::zoo;
use pimsyn_sim::{evaluate_analytic, simulate};

fn bench_stages(c: &mut Criterion) {
    let model = zoo::alexnet_cifar(10);
    let hw = HardwareParams::date24();
    let xb = CrossbarConfig::new(128, 2).expect("legal");
    let dac = DacConfig::new(2).expect("legal");
    let power = Watts(9.0);
    let point = DesignPoint {
        ratio_rram: 0.3,
        crossbar: xb,
    };
    let budget = xb.budget(power, point.ratio_rram, &hw);
    let dup = no_duplication(&model, xb, budget).expect("fits");
    let df = Dataflow::compile(&model, xb, dac, &dup).expect("compiles");
    let l = model.weight_layer_count();
    let macros = vec![1usize; l];
    let shares = vec![None; l];
    let arch = allocate_components(&AllocRequest {
        model: &model,
        dataflow: &df,
        point,
        total_power: power,
        hw: &hw,
        macros: &macros,
        shares: &shares,
        macro_mode: MacroMode::Specialized,
    })
    .expect("allocates");

    let mut group = c.benchmark_group("stages");
    group.sample_size(10);
    group.bench_function("stage1_sa_filter", |b| {
        b.iter(|| wt_dup_candidates(&model, xb, budget, &SaConfig::fast()).unwrap())
    });
    group.bench_function("stage2_dataflow_compile", |b| {
        b.iter(|| Dataflow::compile(&model, xb, dac, &dup).unwrap())
    });
    group.bench_function("stage3_ea_partitioning", |b| {
        b.iter(|| {
            explore_macro_partitioning(
                &model,
                &df,
                point,
                power,
                &hw,
                MacroMode::Specialized,
                &EaConfig {
                    population: 6,
                    generations: 3,
                    ..EaConfig::fast()
                },
            )
            .unwrap()
        })
    });
    group.bench_function("stage4_components_allocation", |b| {
        b.iter(|| {
            allocate_components(&AllocRequest {
                model: &model,
                dataflow: &df,
                point,
                total_power: power,
                hw: &hw,
                macros: &macros,
                shares: &shares,
                macro_mode: MacroMode::Specialized,
            })
            .unwrap()
        })
    });
    group.bench_function("eval_analytic", |b| {
        b.iter(|| evaluate_analytic(&model, &df, &arch).unwrap())
    });
    group.bench_function("eval_cycle_accurate", |b| {
        b.iter(|| simulate(&model, &df, &arch, 1).unwrap())
    });
    group.finish();
}

/// End-to-end cost of the job-oriented engine API: one observable job and a
/// two-request batch, so engine/channel overhead stays visibly negligible
/// next to the stage costs above.
fn bench_engine(c: &mut Criterion) {
    let engine = SynthesisEngine::new();
    let request = || {
        SynthesisRequest::new(
            zoo::alexnet_cifar(10),
            SynthesisOptions::fast(Watts(6.0)).with_seed(3),
        )
    };
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.bench_function("single_job_unobserved", |b| {
        b.iter(|| {
            engine
                .run(&request(), &NullSink, &CancelToken::new())
                .unwrap()
        })
    });
    group.bench_function("batch_of_2", |b| {
        b.iter(|| {
            let results = engine.synthesize_batch(&[request(), request()]);
            assert!(results.iter().all(Result::is_ok));
            results
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stages, bench_engine);
criterion_main!(benches);
