//! Evaluator-throughput benchmark: candidates scored per second with the
//! memo cache on vs off, on a repeated-gene workload (the shape EA
//! generations actually produce — tournament winners resurface unmutated,
//! and mutations frequently recreate previously seen genes), plus a
//! backend-comparison case scoring the same batches through the inline,
//! thread-pool and (when `PIMSYN_WORKER_BIN` points at a built `pimsyn`
//! binary) subprocess backends.
//!
//! Besides the criterion timings, the bench computes each arm's throughput
//! directly and prints `BENCH_eval` / `BENCH_backend` / `BENCH_delta` JSON
//! summaries; set `PIMSYN_BENCH_SAVE=<path>` /
//! `PIMSYN_BENCH_SAVE_BACKEND=<path>` / `PIMSYN_BENCH_SAVE_DELTA=<path>` to
//! also write them to files (the committed `BENCH_eval.json` /
//! `BENCH_backend.json` / `BENCH_delta.json` baselines were recorded this
//! way). Pass `--quick` (the CI smoke mode) to run a single small round
//! that merely proves the hot paths compile and execute.
//!
//! The delta case scores a mutation *chain* — every gene differs from its
//! predecessor in exactly one position, the per-child diff the EA hot loop
//! produces — once through plain full scoring and once through
//! parent-aware delta rescoring, with the memo cache off in both arms so
//! the comparison isolates the incremental-recomputation win.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pimsyn_arch::{CrossbarConfig, DacConfig, HardwareParams, MacroMode, Watts};
use pimsyn_dse::{
    BackendKind, CandidateEvaluator, ChunkPolicy, DesignPoint, EvalBackend, EvalBackendConfig,
    EvalCacheConfig, EvalCore, EvalJob, ExploreContext, MacAllocGene, Objective, RemoteBackend,
    RemotePool,
};
use pimsyn_ir::Dataflow;
use pimsyn_model::{zoo, Model};

const POWER: Watts = Watts(9.0);

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

struct Workload {
    model: Model,
    hw: HardwareParams,
    df: Dataflow,
    point: DesignPoint,
    genes: Vec<MacAllocGene>,
}

/// A deterministic repeated-gene workload: `distinct` feasible genes, the
/// whole set scored `repeats` times (so a perfect memo converges to a
/// `(repeats - 1) / repeats` hit rate).
fn workload(distinct: usize, repeats: usize) -> Workload {
    workload_for(zoo::alexnet_cifar(10), distinct, repeats)
}

/// The wire-microbenchmark workload for the v1-vs-v2 framing comparison:
/// a minimal single-weight-layer model at an unbuildable design point
/// (`ratio_rram = 0`, no RRAM capacity to allocate), so the worker's
/// component allocation early-outs and every candidate answers INFEASIBLE
/// in nanoseconds. The request/response bytes still cross the wire in
/// full; what the arms measure is serialization and framing — the thing
/// that differs between the protocols — not the evaluator work that is
/// identical on both.
fn micro_workload(distinct: usize, repeats: usize) -> Workload {
    let mut b = pimsyn_model::ModelBuilder::new("micro", pimsyn_model::TensorShape::new(3, 8, 8));
    b.conv("conv1", None, 4, 3, 1, 1);
    let mut w = workload_for(
        b.build().expect("static micro definition is valid"),
        distinct,
        repeats,
    );
    w.point.ratio_rram = 0.0;
    w
}

fn workload_for(model: Model, distinct: usize, repeats: usize) -> Workload {
    let hw = HardwareParams::date24();
    let xb = CrossbarConfig::new(128, 2).expect("legal");
    let dac = DacConfig::new(1).expect("legal");
    let dup = vec![1usize; model.weight_layer_count()];
    let df = Dataflow::compile(&model, xb, dac, &dup).expect("compiles");
    let point = DesignPoint {
        ratio_rram: 0.3,
        crossbar: xb,
    };
    let l = model.weight_layer_count();
    let caps: Vec<usize> = df
        .programs()
        .iter()
        .map(|p| (p.wt_dup * p.row_groups).clamp(1, 4))
        .collect();
    let mut genes = Vec::with_capacity(distinct * repeats);
    let distinct_genes: Vec<MacAllocGene> = (0..distinct)
        .map(|g| {
            // A cheap deterministic spread over small macro counts (no RNG
            // so the workload is identical across runs and machines).
            let macros: Vec<usize> = (0..l).map(|i| 1 + (g * 13 + i * 7) % caps[i]).collect();
            MacAllocGene::encode(&macros, &vec![None; l])
        })
        .collect();
    for _ in 0..repeats {
        genes.extend(distinct_genes.iter().cloned());
    }
    Workload {
        model,
        hw,
        df,
        point,
        genes,
    }
}

fn evaluator<'a>(w: &'a Workload, config: EvalCacheConfig) -> CandidateEvaluator<'a> {
    CandidateEvaluator::new(
        &w.model,
        POWER,
        &w.hw,
        MacroMode::Specialized,
        Objective::PowerEfficiency,
        config,
    )
}

/// Scores the whole workload once on a fresh evaluator; candidates/second.
fn throughput(w: &Workload, config: EvalCacheConfig) -> f64 {
    let eval = evaluator(w, config);
    let ctx = ExploreContext::unobserved();
    let start = Instant::now();
    for gene in &w.genes {
        black_box(eval.score(&w.df, w.point, gene, &ctx));
    }
    w.genes.len() as f64 / start.elapsed().as_secs_f64().max(1e-12)
}

fn bench_eval_throughput(c: &mut Criterion) {
    let quick = quick_mode();
    let (distinct, repeats, samples) = if quick { (4, 2, 1) } else { (16, 8, 10) };
    let w = workload(distinct, repeats);

    let mut group = c.benchmark_group("eval_throughput");
    group.sample_size(samples);
    group.bench_function("cache_on", |b| {
        b.iter(|| throughput(&w, EvalCacheConfig::enabled()))
    });
    group.bench_function("cache_off", |b| {
        b.iter(|| throughput(&w, EvalCacheConfig::disabled()))
    });
    group.finish();

    // Direct throughput comparison (best of a few rounds per arm, so the
    // JSON baseline is stable against scheduler noise).
    let rounds = if quick { 1 } else { 3 };
    let best = |config: EvalCacheConfig| {
        (0..rounds)
            .map(|_| throughput(&w, config))
            .fold(0.0f64, f64::max)
    };
    let on = best(EvalCacheConfig::enabled());
    let off = best(EvalCacheConfig::disabled());
    let speedup = on / off.max(1e-12);
    let json = format!(
        "{{\n  \"bench\": \"eval_throughput\",\n  \"model\": \"alexnet-cifar\",\n  \
         \"distinct_genes\": {distinct},\n  \"repeats\": {repeats},\n  \
         \"cache_on_candidates_per_sec\": {on:.1},\n  \
         \"cache_off_candidates_per_sec\": {off:.1},\n  \"speedup\": {speedup:.2}\n}}"
    );
    println!("{json}");
    if let Ok(path) = std::env::var("PIMSYN_BENCH_SAVE") {
        std::fs::write(&path, format!("{json}\n")).expect("write bench baseline");
        println!("(baseline written to {path})");
    }
}

/// A deterministic mutation chain: gene `k+1` differs from gene `k` in
/// exactly one position (no RNG, so the workload is identical across runs
/// and machines).
fn mutation_chain(w: &Workload, steps: usize) -> Vec<MacAllocGene> {
    let l = w.model.weight_layer_count();
    let caps: Vec<usize> =
        w.df.programs()
            .iter()
            .map(|p| (p.wt_dup * p.row_groups).clamp(1, 4))
            .collect();
    let mut macros = vec![1usize; l];
    let mut chain = Vec::with_capacity(steps + 1);
    chain.push(MacAllocGene::encode(&macros, &vec![None; l]));
    for k in 0..steps {
        let i = k % l;
        macros[i] = 1 + (macros[i] + k * 13) % caps[i];
        chain.push(MacAllocGene::encode(&macros, &vec![None; l]));
    }
    chain
}

/// Scores the chain in EA-generation-sized batches (the evaluator's actual
/// hot path: one delta session per batch), each candidate against its
/// predecessor when `delta` is on (the first is self-parented, seeding
/// retention); candidates/second. The memo cache stays off in both arms.
fn chain_throughput(w: &Workload, chain: &[MacAllocGene], delta: bool) -> (f64, f64) {
    const GENERATION: usize = 32;
    let config = if delta {
        EvalCacheConfig::disabled().with_delta(true)
    } else {
        EvalCacheConfig::disabled()
    };
    let eval = evaluator(w, config);
    let ctx = ExploreContext::unobserved();
    let start = Instant::now();
    let mut done = 0usize;
    while done < chain.len() {
        let batch = &chain[done..chain.len().min(done + GENERATION)];
        if delta {
            let parents: Vec<Option<&MacAllocGene>> = (0..batch.len())
                .map(|i| Some(&chain[(done + i).saturating_sub(1)]))
                .collect();
            black_box(eval.score_batch_with_parents(&w.df, w.point, batch, &parents, &ctx));
        } else {
            black_box(eval.score_batch(&w.df, w.point, batch, &ctx));
        }
        done += batch.len();
    }
    let per_sec = chain.len() as f64 / start.elapsed().as_secs_f64().max(1e-12);
    let stats = eval.stats();
    let attempts = stats.delta_hits + stats.delta_fallbacks;
    let fallback_rate = if attempts == 0 {
        0.0
    } else {
        stats.delta_fallbacks as f64 / attempts as f64
    };
    (per_sec, fallback_rate)
}

fn bench_delta_rescoring(c: &mut Criterion) {
    let quick = quick_mode();
    let (steps, samples) = if quick { (8, 1) } else { (256, 10) };
    let w = workload(1, 1);
    let chain = mutation_chain(&w, steps);

    let mut group = c.benchmark_group("eval_delta");
    group.sample_size(samples);
    group.bench_function("full_chain", |b| {
        b.iter(|| chain_throughput(&w, &chain, false))
    });
    group.bench_function("delta_chain", |b| {
        b.iter(|| chain_throughput(&w, &chain, true))
    });
    group.finish();

    let rounds = if quick { 1 } else { 3 };
    let best = |delta: bool| {
        (0..rounds)
            .map(|_| chain_throughput(&w, &chain, delta))
            .fold((0.0f64, 0.0f64), |acc, r| if r.0 > acc.0 { r } else { acc })
    };
    let (full, _) = best(false);
    let (delta, fallback_rate) = best(true);
    let speedup = delta / full.max(1e-12);
    let json = format!(
        "{{\n  \"bench\": \"eval_delta\",\n  \"model\": \"alexnet-cifar\",\n  \
         \"chain_length\": {},\n  \
         \"full_candidates_per_sec\": {full:.1},\n  \
         \"delta_candidates_per_sec\": {delta:.1},\n  \
         \"speedup\": {speedup:.2},\n  \"delta_fallback_rate\": {fallback_rate:.4}\n}}",
        chain.len()
    );
    println!("{json}");
    if let Ok(path) = std::env::var("PIMSYN_BENCH_SAVE_DELTA") {
        std::fs::write(&path, format!("{json}\n")).expect("write delta baseline");
        println!("(baseline written to {path})");
    }
}

/// Scores the workload in EA-generation-sized batches through the given
/// backend with the candidate memo off (every request computes), measuring
/// the raw scoring path each backend parallelizes; candidates/second.
fn backend_throughput(w: &Workload, backend: &EvalBackendConfig) -> f64 {
    backend_throughput_batched(w, backend, 16)
}

/// Like [`backend_throughput`] with a caller-chosen `score_batch` size,
/// measuring *steady-state* throughput over a warm session. The remote
/// arms use this: the pool sends one count-balanced chunk per connection,
/// so batch size is exchange size, and comparing wire framings requires
/// excluding the dial/handshake/init setup — byte-identical JSON lines on
/// both wires — that a cross-job persistent connection pays once.
fn backend_throughput_batched(w: &Workload, backend: &EvalBackendConfig, batch: usize) -> f64 {
    let eval = CandidateEvaluator::with_backend(
        &w.model,
        POWER,
        &w.hw,
        MacroMode::Specialized,
        Objective::PowerEfficiency,
        EvalCacheConfig::disabled(),
        backend,
    );
    let ctx = ExploreContext::unobserved();
    // Warm-up exchange: dials, negotiates and opens the session.
    black_box(eval.score_batch(&w.df, w.point, &w.genes[..batch.min(w.genes.len())], &ctx));
    let start = Instant::now();
    for batch in w.genes.chunks(batch) {
        black_box(eval.score_batch(&w.df, w.point, batch, &ctx));
    }
    w.genes.len() as f64 / start.elapsed().as_secs_f64().max(1e-12)
}

/// Starts a loopback worker daemon capped at the given wire-protocol
/// ceiling and returns the remote backend config dialing it plus the
/// daemon handle (kept alive for the arm's lifetime).
fn remote_arm(protocol_max: Option<u32>) -> (EvalBackendConfig, pimsyn::WorkerServeHandle, String) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let daemon = pimsyn::serve_workers_in_background(
        listener,
        pimsyn::WorkerServeConfig {
            slots: 1,
            quiet: true,
            protocol_max,
            ..Default::default()
        },
    )
    .expect("start worker daemon");
    let addr = daemon.addr().to_string();
    let cfg = EvalBackendConfig::new(BackendKind::Remote {
        endpoints: vec![addr.clone()],
    });
    (cfg, daemon, addr)
}

/// One loopback daemon for the straggler case, whose only significant
/// per-candidate cost is the injected `job_delay` — so the fleet imbalance
/// is a controlled constant instead of scheduler luck.
fn straggler_daemon(job_delay: Duration) -> (pimsyn::WorkerServeHandle, String) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let daemon = pimsyn::serve_workers_in_background(
        listener,
        pimsyn::WorkerServeConfig {
            slots: 1,
            quiet: true,
            faults: pimsyn::FaultInjection {
                job_delay: Some(job_delay),
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .expect("start worker daemon");
    let addr = daemon.addr().to_string();
    (daemon, addr)
}

/// Average wall-clock seconds per batch over a warm fleet under the given
/// chunk policy, plus the straggler pieces requeued while measuring. A
/// fresh private pool per call so the two policies never share throughput
/// estimates; the warm-up batch (excluded from timing) dials, opens
/// sessions and seeds the EWMA.
fn straggler_seconds_per_batch(
    w: &Workload,
    endpoints: &[String],
    policy: ChunkPolicy,
    batch: usize,
    rounds: usize,
) -> (f64, usize) {
    let pool = RemotePool::new(endpoints.to_vec(), None);
    let backend = RemoteBackend::with_pool_policy(std::sync::Arc::clone(&pool), policy);
    let core = EvalCore::new(
        &w.model,
        POWER,
        &w.hw,
        MacroMode::Specialized,
        Objective::PowerEfficiency,
        EvalCacheConfig::disabled(),
    );
    let jobs: Vec<EvalJob<'_>> = w.genes[..batch.min(w.genes.len())]
        .iter()
        .map(|gene| EvalJob {
            df: &w.df,
            point: w.point,
            gene,
        })
        .collect();
    black_box(backend.score_batch(&core, &jobs, &|| false));
    let start = Instant::now();
    for _ in 0..rounds {
        black_box(backend.score_batch(&core, &jobs, &|| false));
    }
    let per_batch = start.elapsed().as_secs_f64() / rounds.max(1) as f64;
    let requeues = pool.fleet_snapshot().requeued_pieces;
    backend.flush();
    (per_batch, requeues)
}

fn bench_backend_comparison(c: &mut Criterion) {
    let quick = quick_mode();
    let (distinct, repeats, samples) = if quick { (4, 2, 1) } else { (16, 4, 10) };
    let w = workload(distinct, repeats);
    let inline_cfg = EvalBackendConfig::inline();
    let threads_cfg = EvalBackendConfig::new(BackendKind::ThreadPool { workers: 0 });
    // The subprocess arm needs a real worker binary; benches have no
    // CARGO_BIN_EXE, so it only runs when the caller points at one.
    let subprocess_cfg = std::env::var("PIMSYN_WORKER_BIN").ok().map(|bin| {
        EvalBackendConfig::new(BackendKind::Subprocess { workers: 2 }).with_worker_command(bin)
    });
    // The remote arms compare the two wire framings over loopback against
    // in-process daemons: v1 (JSON text both ways) vs v2 (binary frames).
    // Single-slot daemons so every `score_batch` is exactly one exchange,
    // a near-free micro model in large batches so the dial/session setup,
    // the per-exchange round trip and the evaluator work — all identical
    // for both framings — amortize away, and the measured difference is
    // the framing itself.
    let (remote_batch, remote_repeats) = if quick { (8, 4) } else { (256, 256) };
    let rw = micro_workload(distinct, remote_repeats);
    let (remote_v1_cfg, v1_daemon, v1_addr) = remote_arm(Some(1));
    let (remote_v2_cfg, v2_daemon, v2_addr) = remote_arm(None);

    let mut group = c.benchmark_group("eval_backend");
    group.sample_size(samples);
    group.bench_function("inline", |b| b.iter(|| backend_throughput(&w, &inline_cfg)));
    group.bench_function("threads", |b| {
        b.iter(|| backend_throughput(&w, &threads_cfg))
    });
    if let Some(cfg) = &subprocess_cfg {
        group.bench_function("subprocess", |b| b.iter(|| backend_throughput(&w, cfg)));
    }
    group.bench_function("remote_v1", |b| {
        b.iter(|| backend_throughput_batched(&rw, &remote_v1_cfg, remote_batch))
    });
    group.bench_function("remote_v2", |b| {
        b.iter(|| backend_throughput_batched(&rw, &remote_v2_cfg, remote_batch))
    });
    group.finish();

    let rounds = if quick { 1 } else { 3 };
    let best = |cfg: &EvalBackendConfig| {
        (0..rounds)
            .map(|_| backend_throughput(&w, cfg))
            .fold(0.0f64, f64::max)
    };
    // Median of more rounds than the local arms: loopback throughput on a
    // one-core box is bimodal (whether the kernel coalesces the v1
    // server's per-response packets is scheduler luck), so a best-of
    // statistic would let a single lucky round define the baseline. The
    // median is the steady-state number.
    let remote_rounds = if quick { 1 } else { 7 };
    let best_remote = |cfg: &EvalBackendConfig| {
        let mut rates: Vec<f64> = (0..remote_rounds)
            .map(|_| backend_throughput_batched(&rw, cfg, remote_batch))
            .collect();
        rates.sort_by(|a, b| a.total_cmp(b));
        rates[rates.len() / 2]
    };
    let inline = best(&inline_cfg);
    let threads = best(&threads_cfg);
    let subprocess = subprocess_cfg.as_ref().map(&best);
    let remote_inline = best_remote(&inline_cfg);
    let remote_v1 = best_remote(&remote_v1_cfg);
    let remote_v2 = best_remote(&remote_v2_cfg);

    // Straggler case: a two-worker fleet where one endpoint answers each
    // candidate 10× slower (injected per-job delay, so the imbalance is a
    // controlled constant). Count-balanced chunking hands both workers half
    // the batch and wall-clock tracks the slow half; adaptive weighting
    // shrinks the slow worker's chunk to its EWMA share and piece requeue
    // lets the fast connection drain whatever tail is still queued behind
    // the straggler.
    let (fast_daemon, fast_addr) = straggler_daemon(Duration::from_micros(50));
    let (slow_daemon, slow_addr) = straggler_daemon(Duration::from_micros(500));
    let fleet = vec![fast_addr.clone(), slow_addr.clone()];
    let (sbatch, srounds) = if quick { (16, 2) } else { (64, 8) };
    let sbatch = sbatch.min(rw.genes.len());
    let (balanced_s, _) =
        straggler_seconds_per_batch(&rw, &fleet, ChunkPolicy::CountBalanced, sbatch, srounds);
    let (adaptive_s, straggler_requeues) =
        straggler_seconds_per_batch(&rw, &fleet, ChunkPolicy::Adaptive, sbatch, srounds);
    let straggler_speedup = balanced_s / adaptive_s.max(1e-12);
    let subprocess_json = subprocess
        .map(|t| format!("{t:.1}"))
        .unwrap_or_else(|| "null".to_string());
    // Parallel backends only pay off with cores to spread over; record the
    // machine width so the baseline is interpretable (on a 1-core box the
    // thread/subprocess arms measure pure coordination overhead).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"eval_backend\",\n  \"model\": \"alexnet-cifar\",\n  \
         \"cores\": {cores},\n  \"batch_size\": 16,\n  \"candidates\": {},\n  \
         \"inline_candidates_per_sec\": {inline:.1},\n  \
         \"threads_candidates_per_sec\": {threads:.1},\n  \
         \"subprocess_candidates_per_sec\": {subprocess_json},\n  \
         \"remote_model\": \"micro\",\n  \
         \"remote_batch_size\": {remote_batch},\n  \"remote_candidates\": {},\n  \
         \"remote_inline_candidates_per_sec\": {remote_inline:.1},\n  \
         \"remote_v1_candidates_per_sec\": {remote_v1:.1},\n  \
         \"remote_v2_candidates_per_sec\": {remote_v2:.1},\n  \
         \"straggler_batch_size\": {sbatch},\n  \
         \"straggler_count_balanced_ms_per_batch\": {:.2},\n  \
         \"straggler_adaptive_ms_per_batch\": {:.2},\n  \
         \"straggler_requeued_pieces\": {straggler_requeues},\n  \
         \"straggler_speedup\": {straggler_speedup:.2},\n  \
         \"threads_speedup\": {:.2},\n  \"remote_v2_speedup\": {:.2}\n}}",
        w.genes.len(),
        rw.genes.len(),
        balanced_s * 1e3,
        adaptive_s * 1e3,
        threads / inline.max(1e-12),
        remote_v2 / remote_v1.max(1e-12)
    );
    println!("{json}");
    if let Ok(path) = std::env::var("PIMSYN_BENCH_SAVE_BACKEND") {
        std::fs::write(&path, format!("{json}\n")).expect("write backend baseline");
        println!("(baseline written to {path})");
    }
    let _ = pimsyn::stop_worker_server(&v1_addr, None);
    let _ = pimsyn::stop_worker_server(&v2_addr, None);
    let _ = pimsyn::stop_worker_server(&fast_addr, None);
    let _ = pimsyn::stop_worker_server(&slow_addr, None);
    let _ = v1_daemon.join();
    let _ = v2_daemon.join();
    let _ = fast_daemon.join();
    let _ = slow_daemon.join();
}

criterion_group!(
    benches,
    bench_eval_throughput,
    bench_delta_rescoring,
    bench_backend_comparison
);
criterion_main!(benches);
