//! Fig. 8 bench: regenerates the identical-vs-specialized macro ablation and
//! times the components-allocation stage in both modes.

use criterion::{criterion_group, Criterion};
use pimsyn_arch::{CrossbarConfig, DacConfig, HardwareParams, MacroMode, Watts};
use pimsyn_baselines::published::FIG8_SPECIALIZED_VS_IDENTICAL;
use pimsyn_dse::{allocate_components, no_duplication, AllocRequest, DesignPoint};
use pimsyn_ir::Dataflow;
use pimsyn_model::zoo;

fn bench_fig8(c: &mut Criterion) {
    let model = zoo::alexnet_cifar(10);
    let hw = HardwareParams::date24();
    let xb = CrossbarConfig::new(128, 2).expect("legal");
    let dac = DacConfig::new(1).expect("legal");
    let budget = xb.budget(Watts(9.0), 0.3, &hw);
    let dup = no_duplication(&model, xb, budget).expect("budget fits");
    let df = Dataflow::compile(&model, xb, dac, &dup).expect("compiles");
    let l = model.weight_layer_count();
    let macros = vec![1usize; l];
    let shares = vec![None; l];

    let mut group = c.benchmark_group("fig8");
    group.sample_size(30);
    for mode in [MacroMode::Specialized, MacroMode::Identical] {
        group.bench_function(format!("alloc_{mode}"), |b| {
            b.iter(|| {
                allocate_components(&AllocRequest {
                    model: &model,
                    dataflow: &df,
                    point: DesignPoint {
                        ratio_rram: 0.3,
                        crossbar: xb,
                    },
                    total_power: Watts(9.0),
                    hw: &hw,
                    macros: &macros,
                    shares: &shares,
                    macro_mode: mode,
                })
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);

fn main() {
    println!(
        "{}",
        pimsyn_bench::render_ablation(
            "Fig. 8 — identical vs specialized macros (normalized to ISAAC)",
            &pimsyn_bench::fig8_macro_specialization(),
            FIG8_SPECIALIZED_VS_IDENTICAL,
        )
    );
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
