//! Fig. 7 bench: regenerates the duplication-strategy ablation and times the
//! SA-based weight-duplication filter.

use criterion::{criterion_group, Criterion};
use pimsyn_arch::{CrossbarConfig, HardwareParams, Watts};
use pimsyn_baselines::published::FIG7_SA_VS_HEURISTIC;
use pimsyn_dse::{wt_dup_candidates, SaConfig};
use pimsyn_model::zoo;

fn bench_fig7(c: &mut Criterion) {
    let model = zoo::vgg16_cifar(10);
    let hw = HardwareParams::date24();
    let xb = CrossbarConfig::new(256, 2).expect("legal");
    let budget = xb.budget(Watts(15.0), 0.3, &hw);
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("sa_filter_vgg16_cifar", |b| {
        b.iter(|| wt_dup_candidates(&model, xb, budget, &SaConfig::fast()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);

fn main() {
    println!(
        "{}",
        pimsyn_bench::render_ablation(
            "Fig. 7 — weight duplication strategies (normalized to ISAAC)",
            &pimsyn_bench::fig7_weight_duplication(),
            FIG7_SA_VS_HEURISTIC,
        )
    );
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
