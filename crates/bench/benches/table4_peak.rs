//! Table IV bench: regenerates the peak-power-efficiency comparison and
//! times the baseline inventory models plus a fast synthesis.

use criterion::{criterion_group, Criterion};
use pimsyn_arch::HardwareParams;
use pimsyn_baselines::inventory;

fn bench_table4(c: &mut Criterion) {
    let hw = HardwareParams::date24();
    let mut group = c.benchmark_group("table4");
    group.sample_size(20);
    group.bench_function("baseline_inventory_peaks", |b| {
        b.iter(|| {
            inventory::table4_inventories()
                .iter()
                .map(|inv| inv.peak_tops_per_watt(16, 16, &hw))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table4);

fn main() {
    println!("{}", pimsyn_bench::table4_peak_efficiency());
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
