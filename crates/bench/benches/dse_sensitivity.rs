//! Design-choice ablation: sensitivity of synthesis quality and runtime to
//! the metaheuristic budgets (SA candidate count, EA population/generations)
//! — the knobs Table I's scale argument forces the paper to introduce.

use criterion::{criterion_group, Criterion};
use pimsyn_arch::{CrossbarConfig, Watts};
use pimsyn_dse::{run_dse, DesignSpace, DseConfig, EaConfig, SaConfig};
use pimsyn_model::zoo;

fn base_cfg() -> DseConfig {
    let mut cfg = DseConfig::fast(Watts(9.0));
    cfg.space = DesignSpace::single(0.3, CrossbarConfig::new(128, 2).expect("legal"), 1);
    cfg
}

fn quality_table() -> String {
    let model = zoo::alexnet_cifar(10);
    let mut out = String::from(
        "DSE sensitivity (CIFAR-AlexNet @ 9 W, single design point)\n\
         sa_cands  ea_pop  ea_gens   TOPS/W  evaluations\n",
    );
    for (cands, pop, gens) in [
        (1usize, 4usize, 2usize),
        (2, 6, 3),
        (4, 8, 6),
        (8, 12, 10),
        (16, 16, 16),
    ] {
        let mut cfg = base_cfg();
        cfg.sa = SaConfig {
            candidates: cands,
            ..SaConfig::fast()
        };
        cfg.ea = EaConfig {
            population: pop,
            generations: gens,
            ..EaConfig::fast()
        };
        match run_dse(&model, &cfg) {
            Ok(o) => {
                out.push_str(&format!(
                    "{cands:>8} {pop:>7} {gens:>8} {:>8.3} {:>12}\n",
                    o.report.efficiency_tops_per_watt(),
                    o.evaluations
                ));
            }
            Err(e) => out.push_str(&format!("{cands:>8} {pop:>7} {gens:>8}  failed: {e}\n")),
        }
    }
    out
}

fn bench_sensitivity(c: &mut Criterion) {
    let model = zoo::alexnet_cifar(10);
    let mut group = c.benchmark_group("dse_sensitivity");
    group.sample_size(10);
    for (label, cands, pop, gens) in [
        ("small", 2usize, 6usize, 3usize),
        ("medium", 4, 8, 6),
        ("large", 8, 12, 10),
    ] {
        let mut cfg = base_cfg();
        cfg.sa = SaConfig {
            candidates: cands,
            ..SaConfig::fast()
        };
        cfg.ea = EaConfig {
            population: pop,
            generations: gens,
            ..EaConfig::fast()
        };
        group.bench_function(format!("dse_{label}"), |b| {
            b.iter(|| run_dse(&model, &cfg).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sensitivity);

fn main() {
    println!("{}", quality_table());
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
