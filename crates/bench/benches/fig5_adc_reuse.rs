//! Fig. 5 bench: regenerates the inter-layer ADC-reuse study and times the
//! analytic evaluation that powers it.

use criterion::{criterion_group, Criterion};
use pimsyn::{SynthesisOptions, Synthesizer};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;
use pimsyn_sim::evaluate_analytic;

fn bench_fig5(c: &mut Criterion) {
    let model = zoo::vgg16_cifar(10);
    let opts = SynthesisOptions::fast(Watts(6.0))
        .with_seed(0xBE7C)
        .without_macro_sharing();
    let result = Synthesizer::new(opts)
        .synthesize(&model)
        .expect("synthesis");
    let mut group = c.benchmark_group("fig5");
    group.sample_size(30);
    group.bench_function("analytic_eval_vgg16_cifar", |b| {
        b.iter(|| evaluate_analytic(&model, &result.dataflow, &result.architecture).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);

fn main() {
    println!(
        "{}",
        pimsyn_bench::render_fig5(&pimsyn_bench::fig5_adc_reuse())
    );
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
}
