//! End-to-end exercise of the [`SynthesisService`]: shared worker-pool
//! amortization across jobs, queue back-pressure, concurrent-job
//! determinism, and the socket serve/submit surface.
//!
//! These tests live in the `pimsyn` crate so `CARGO_BIN_EXE_pimsyn` points
//! at the real CLI binary (which doubles as the `--worker` executable).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pimsyn::{
    serve_in_background, BackendKind, JobStatus, ServiceClient, ServiceConfig, ServiceError,
    SynthesisError, SynthesisOptions, SynthesisRequest, SynthesisService, SynthesisSummary,
    Synthesizer,
};
use pimsyn_arch::Watts;
use pimsyn_model::json::JsonValue;
use pimsyn_model::zoo;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_pimsyn");

fn fast_request(seed: u64) -> SynthesisRequest {
    SynthesisRequest::new(
        zoo::alexnet_cifar(10),
        SynthesisOptions::fast(Watts(9.0)).with_seed(seed),
    )
}

/// N sequential jobs through one service spawn at most the configured pool
/// width of worker processes — the pool is leased and re-sessioned per job,
/// not re-spawned — and every job stays bit-identical to an inline run.
#[test]
fn service_jobs_reuse_the_shared_worker_pool() {
    const POOL_WIDTH: usize = 2;
    const JOBS: usize = 3;
    let service = SynthesisService::new(ServiceConfig::default().with_job_slots(1));
    assert_eq!(service.worker_spawns(), 0);
    let subprocess_request = |seed: u64| {
        let mut request = fast_request(seed);
        request.options = request
            .options
            .with_backend(BackendKind::Subprocess {
                workers: POOL_WIDTH,
            })
            .with_worker_command(WORKER_BIN);
        request
    };
    let handles: Vec<_> = (0..JOBS)
        .map(|i| {
            service
                .submit(subprocess_request(7 + i as u64))
                .expect("queue has room")
        })
        .collect();
    for (i, handle) in handles.iter().enumerate() {
        let via_service = handle.await_result().expect("feasible");
        // Each job's result is bit-identical to a standalone inline run:
        // the leased workers re-opened a session with this job's model and
        // power, so recycling processes never leaks stale run state.
        let inline = Synthesizer::new(fast_request(7 + i as u64).options)
            .synthesize(&zoo::alexnet_cifar(10))
            .expect("inline synthesis");
        assert_eq!(via_service.wt_dup, inline.wt_dup, "job {i}");
        assert_eq!(via_service.architecture, inline.architecture, "job {i}");
        assert_eq!(via_service.analytic, inline.analytic, "job {i}");
        assert_eq!(via_service.evaluations, inline.evaluations, "job {i}");
        assert_eq!(via_service.history, inline.history, "job {i}");
    }
    let spawns = service.worker_spawns();
    assert!(spawns >= 1, "subprocess jobs must actually use the pool");
    assert!(
        spawns <= POOL_WIDTH,
        "{JOBS} jobs spawned {spawns} workers; the shared pool must cap at \
         the pool width ({POOL_WIDTH}), not jobs x width"
    );
    service.shutdown();
}

/// A submit beyond the bounded queue depth returns a typed
/// [`ServiceError::QueueFull`] promptly — it never blocks or panics.
#[test]
fn submit_beyond_queue_depth_returns_queue_full() {
    let service = SynthesisService::new(
        ServiceConfig::default()
            .with_job_slots(1)
            .with_queue_depth(1),
    );
    // Occupy the single slot with a long job (paper effort; cancelled at
    // the end of the test), then fill the one queue slot.
    let mut blocker_options = SynthesisOptions::new(Watts(15.0)).with_seed(3);
    blocker_options.effort = pimsyn::Effort::Paper;
    let blocker = service
        .submit(SynthesisRequest::new(zoo::vgg16_cifar(10), blocker_options))
        .unwrap();
    // Wait until the blocker actually occupies the slot, so the next submit
    // is deterministically the only queued job.
    let deadline = Instant::now() + Duration::from_secs(30);
    while blocker.status() == JobStatus::Queued && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(blocker.status(), JobStatus::Running, "blocker must start");
    let queued = service.submit(fast_request(4)).unwrap();
    let started = Instant::now();
    let overflow = service.submit(fast_request(5));
    assert_eq!(
        overflow.unwrap_err(),
        ServiceError::QueueFull { depth: 1 },
        "the queue holds one job; the second waiting submit must be rejected"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "queue-full rejection must not block"
    );
    blocker.cancel();
    queued.cancel();
    assert!(matches!(
        blocker.await_result(),
        Err(SynthesisError::Cancelled)
    ));
    service.shutdown();
}

/// Two jobs submitted concurrently to a two-slot service produce results
/// bit-identical to the same requests run serially through the blocking
/// API (the determinism-suite comparison, field by field).
#[test]
fn concurrent_service_jobs_match_serial_runs_bit_identically() {
    let requests = [fast_request(11), fast_request(23)];
    let serial: Vec<_> = requests
        .iter()
        .map(|request| {
            Synthesizer::new(request.options.clone())
                .synthesize(&request.model)
                .expect("serial synthesis")
        })
        .collect();

    let service = SynthesisService::new(ServiceConfig::default().with_job_slots(2));
    let handles: Vec<_> = requests
        .iter()
        .map(|request| service.submit(request.clone()).expect("queue has room"))
        .collect();
    for (i, (handle, serial)) in handles.iter().zip(&serial).enumerate() {
        let concurrent = handle.await_result().expect("service synthesis");
        assert_eq!(concurrent.wt_dup, serial.wt_dup, "job {i}");
        assert_eq!(concurrent.architecture, serial.architecture, "job {i}");
        assert_eq!(concurrent.analytic, serial.analytic, "job {i}");
        assert_eq!(concurrent.evaluations, serial.evaluations, "job {i}");
        assert_eq!(concurrent.history, serial.history, "job {i}");
        assert_eq!(concurrent.stop_reason, serial.stop_reason, "job {i}");
    }
    service.shutdown();
}

/// Summary fields modulo the wall-clock one, keyed for comparison.
fn summary_without_elapsed(doc: &JsonValue) -> Vec<(String, String)> {
    doc.as_object()
        .expect("summary is an object")
        .iter()
        .filter(|(k, _)| k != "elapsed_s")
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect()
}

/// The full socket round trip against an in-process daemon: submit a job,
/// poll status, stream events, fetch the result, and compare it — modulo
/// elapsed time — with a direct in-process run; then shut down cleanly.
#[test]
fn socket_round_trip_matches_direct_run_and_shuts_down() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let service = Arc::new(SynthesisService::new(
        ServiceConfig::default().with_job_slots(1),
    ));
    let handle = serve_in_background(listener, service, |_request| {}, true).expect("serve");
    let client = ServiceClient::new(handle.addr().to_string());

    // Unknown ids are typed errors, not hangs.
    let reply = client.status(999).expect("transport");
    assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        reply.get("code").and_then(JsonValue::as_str),
        Some("unknown_job")
    );

    let request = fast_request(7);
    let reply = client.submit(&request).expect("transport");
    assert_eq!(
        reply.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{reply}"
    );
    let id = reply.get("id").and_then(JsonValue::as_usize).expect("id") as u64;

    let status = client.status(id).expect("transport");
    let phase = status.get("status").and_then(JsonValue::as_str).unwrap();
    assert!(
        ["queued", "running", "finished"].contains(&phase),
        "{status}"
    );

    let result = client.result(id).expect("transport");
    assert_eq!(
        result.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{result}"
    );
    let served_summary = result.get("summary").expect("summary").clone();
    let direct = Synthesizer::new(request.options.clone())
        .synthesize(&request.model)
        .expect("direct synthesis");
    let direct_summary = SynthesisSummary::from_result(&direct).to_json();
    assert_eq!(
        summary_without_elapsed(&served_summary),
        summary_without_elapsed(&direct_summary),
        "socket-submitted job must match the direct run modulo elapsed_s"
    );

    // The events verb replays the job's stream from the beginning even
    // after it finished: job_started first, finished last.
    let events = client.events(id).expect("transport");
    assert!(!events.is_empty());
    let event_type = |doc: &JsonValue| {
        doc.get("event")
            .and_then(|e| e.get("type"))
            .and_then(JsonValue::as_str)
            .map(str::to_string)
    };
    assert_eq!(
        event_type(events.first().unwrap()).as_deref(),
        Some("job_started")
    );
    assert_eq!(
        event_type(events.last().unwrap()).as_deref(),
        Some("finished")
    );

    let reply = client.shutdown().expect("transport");
    assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(true));
    handle.join().expect("serve loop exits cleanly");
}

/// A peer speaking the wrong protocol version gets an explicit
/// `version_mismatch` error reply, never a guess.
#[test]
fn version_mismatch_is_answered_with_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let service = Arc::new(SynthesisService::new(
        ServiceConfig::default().with_job_slots(1),
    ));
    let handle = serve_in_background(listener, service, |_request| {}, true).expect("serve");

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    writeln!(stream, r#"{{"verb":"status","pimsyn_service":99,"id":0}}"#).unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply).unwrap();
    let doc = JsonValue::parse(reply.trim()).expect("valid JSON reply");
    assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        doc.get("code").and_then(JsonValue::as_str),
        Some("version_mismatch")
    );
    drop(stream);

    ServiceClient::new(handle.addr().to_string())
        .shutdown()
        .expect("transport");
    handle.join().expect("serve loop exits cleanly");
}
