//! End-to-end exercise of the [`SynthesisService`]: queue back-pressure,
//! concurrent-job determinism, weighted-fair multi-tenant scheduling,
//! graceful drain, and the socket serve/submit surface.
//!
//! (The subprocess worker-pool amortization test lives in
//! `crates/gateway/tests/backend_pool.rs`, next to the `pimsyn` binary it
//! spawns.)

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pimsyn::{
    serve_in_background, CallbackSink, EventSink, JobStatus, SchedulingPolicy, ServeOptions,
    ServiceClient, ServiceConfig, ServiceError, SynthesisError, SynthesisEvent, SynthesisOptions,
    SynthesisRequest, SynthesisService, SynthesisSummary, Synthesizer, TenantPolicy,
};
use pimsyn_arch::Watts;
use pimsyn_model::json::JsonValue;
use pimsyn_model::zoo;

fn fast_request(seed: u64) -> SynthesisRequest {
    SynthesisRequest::new(
        zoo::alexnet_cifar(10),
        SynthesisOptions::fast(Watts(9.0)).with_seed(seed),
    )
}

/// A tiny but real job: fast effort with a tight evaluation bound, so
/// scheduling-order tests finish in milliseconds per job.
fn tiny_request(seed: u64) -> SynthesisRequest {
    SynthesisRequest::new(
        zoo::alexnet_cifar(10),
        SynthesisOptions::fast(Watts(9.0))
            .with_seed(seed)
            .with_max_evaluations(40),
    )
}

/// A slot-occupying long job (paper effort), cancelled by the test when the
/// queue behind it is staged the way the test needs.
fn blocker_request() -> SynthesisRequest {
    let mut options = SynthesisOptions::new(Watts(15.0)).with_seed(3);
    options.effort = pimsyn::Effort::Paper;
    SynthesisRequest::new(zoo::vgg16_cifar(10), options)
}

fn await_running(handle: &pimsyn::JobHandle) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.status() == JobStatus::Queued && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(handle.status(), JobStatus::Running, "blocker must start");
}

/// A submit beyond the bounded queue depth returns a typed
/// [`ServiceError::QueueFull`] promptly — it never blocks or panics.
#[test]
fn submit_beyond_queue_depth_returns_queue_full() {
    let service = SynthesisService::new(
        ServiceConfig::default()
            .with_job_slots(1)
            .with_queue_depth(1),
    );
    // Occupy the single slot with a long job, then fill the one queue slot.
    let blocker = service.submit(blocker_request()).unwrap();
    // Wait until the blocker actually occupies the slot, so the next submit
    // is deterministically the only queued job.
    await_running(&blocker);
    let queued = service.submit(fast_request(4)).unwrap();
    let started = Instant::now();
    let overflow = service.submit(fast_request(5));
    assert_eq!(
        overflow.unwrap_err(),
        ServiceError::QueueFull { depth: 1 },
        "the queue holds one job; the second waiting submit must be rejected"
    );
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "queue-full rejection must not block"
    );
    blocker.cancel();
    queued.cancel();
    assert!(matches!(
        blocker.await_result(),
        Err(SynthesisError::Cancelled)
    ));
    service.shutdown();
}

/// Two jobs submitted concurrently to a two-slot service produce results
/// bit-identical to the same requests run serially through the blocking
/// API (the determinism-suite comparison, field by field).
#[test]
fn concurrent_service_jobs_match_serial_runs_bit_identically() {
    let requests = [fast_request(11), fast_request(23)];
    let serial: Vec<_> = requests
        .iter()
        .map(|request| {
            Synthesizer::new(request.options.clone())
                .synthesize(&request.model)
                .expect("serial synthesis")
        })
        .collect();

    let service = SynthesisService::new(ServiceConfig::default().with_job_slots(2));
    let handles: Vec<_> = requests
        .iter()
        .map(|request| service.submit(request.clone()).expect("queue has room"))
        .collect();
    for (i, (handle, serial)) in handles.iter().zip(&serial).enumerate() {
        let concurrent = handle.await_result().expect("service synthesis");
        assert_eq!(concurrent.wt_dup, serial.wt_dup, "job {i}");
        assert_eq!(concurrent.architecture, serial.architecture, "job {i}");
        assert_eq!(concurrent.analytic, serial.analytic, "job {i}");
        assert_eq!(concurrent.evaluations, serial.evaluations, "job {i}");
        assert_eq!(concurrent.history, serial.history, "job {i}");
        assert_eq!(concurrent.stop_reason, serial.stop_reason, "job {i}");
    }
    service.shutdown();
}

/// Under [`SchedulingPolicy::WeightedFair`], two flooding tenants get job
/// slots in weight proportion: with A at weight 2 and B at weight 1, the
/// single slot drains the backlog as A A B A A B, not in arrival order.
#[test]
fn weighted_fair_scheduling_interleaves_tenants_by_weight() {
    let service = SynthesisService::new(
        ServiceConfig::default()
            .with_job_slots(1)
            .with_scheduling(SchedulingPolicy::WeightedFair),
    );
    // Hold the slot so the whole backlog is enqueued before any dispatch.
    let blocker = service.submit(blocker_request()).unwrap();
    await_running(&blocker);

    let a = TenantPolicy::new("tenant-a").with_weight(2);
    let b = TenantPolicy::new("tenant-b").with_weight(1);
    // Arrival order is strictly alternating (a, b, a, b, a, a): a FIFO
    // would preserve it; the fair scheduler must not.
    let submissions = [
        ("a", 0u64),
        ("b", 1),
        ("a", 2),
        ("b", 3),
        ("a", 4),
        ("a", 5),
    ];
    let order: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    let mut ids = std::collections::HashMap::new();
    for (tenant, seed) in submissions {
        let policy = if tenant == "a" { a.clone() } else { b.clone() };
        let order = Arc::clone(&order);
        let sink: Arc<dyn EventSink> = Arc::new(CallbackSink(move |event: SynthesisEvent| {
            if let SynthesisEvent::Finished { job, .. } = event {
                order.lock().unwrap().push(job as u64);
            }
        }));
        let handle = service
            .submit_with(tiny_request(seed), Some(policy), Some(sink))
            .expect("queue has room");
        ids.insert(seed, handle.id());
        handles.push(handle);
    }
    blocker.cancel();
    let _ = blocker.await_result();
    for handle in &handles {
        let _ = handle.await_result();
    }
    let finished = order.lock().unwrap().clone();
    // Weight-proportional round-robin over the seeds: two of A, one of B,
    // two of A, one of B.
    let expected: Vec<u64> = [0u64, 2, 1, 4, 5, 3].iter().map(|s| ids[s]).collect();
    assert_eq!(
        finished, expected,
        "one slot must drain A(w=2)/B(w=1) backlogs as A A B A A B"
    );
    service.shutdown();
}

/// A tenant at its `max_queued` bound gets a typed
/// [`ServiceError::QuotaExceeded`] — other tenants are unaffected.
#[test]
fn tenant_queued_quota_is_a_typed_rejection() {
    let service = SynthesisService::new(
        ServiceConfig::default()
            .with_job_slots(1)
            .with_scheduling(SchedulingPolicy::WeightedFair),
    );
    let blocker = service.submit(blocker_request()).unwrap();
    await_running(&blocker);

    let capped = TenantPolicy::new("capped").with_max_queued(1);
    let first = service
        .submit_with(tiny_request(1), Some(capped.clone()), None)
        .expect("within quota");
    let second = service.submit_with(tiny_request(2), Some(capped.clone()), None);
    assert_eq!(
        second.unwrap_err(),
        ServiceError::QuotaExceeded {
            tenant: "capped".to_string(),
            limit: 1,
        }
    );
    // The quota is per tenant, not global: another tenant still submits.
    let other = service
        .submit_with(tiny_request(3), Some(TenantPolicy::new("other")), None)
        .expect("other tenants unaffected");

    blocker.cancel();
    let _ = blocker.await_result();
    first.cancel();
    other.cancel();
    service.shutdown();
}

/// A tenant at its `max_running` cap has further jobs *deferred* (they stay
/// queued while a slot sits free), never rejected.
#[test]
fn tenant_running_cap_defers_dispatch_while_slots_are_free() {
    let service = SynthesisService::new(
        ServiceConfig::default()
            .with_job_slots(2)
            .with_scheduling(SchedulingPolicy::WeightedFair),
    );
    let solo = TenantPolicy::new("solo").with_max_running(1);
    let long = service
        .submit_with(blocker_request(), Some(solo.clone()), None)
        .expect("queue has room");
    await_running(&long);
    let deferred = service
        .submit_with(tiny_request(1), Some(solo.clone()), None)
        .expect("queue has room");
    // A second slot is free, but the tenant's running cap holds the job
    // back. Give the dispatcher ample chances to (wrongly) start it.
    let watched_until = Instant::now() + Duration::from_millis(300);
    while Instant::now() < watched_until {
        assert_eq!(
            deferred.status(),
            JobStatus::Queued,
            "max_running=1 must defer the second job while the first runs"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    long.cancel();
    let _ = long.await_result();
    // The cap releases with the slot: the deferred job now runs to the end.
    let _ = deferred.await_result();
    assert_eq!(deferred.status(), JobStatus::Finished);
    service.shutdown();
}

/// For a single tenant, weighted-fair scheduling is FIFO — same dispatch
/// order, bit-identical results.
#[test]
fn single_tenant_weighted_fair_matches_fifo_bit_identically() {
    let mut by_policy = Vec::new();
    for policy in [SchedulingPolicy::Fifo, SchedulingPolicy::WeightedFair] {
        let service = SynthesisService::new(
            ServiceConfig::default()
                .with_job_slots(1)
                .with_scheduling(policy),
        );
        let handles: Vec<_> = (0..2)
            .map(|i| {
                service
                    .submit_with(
                        tiny_request(17 + i),
                        Some(TenantPolicy::new("only").with_weight(5)),
                        None,
                    )
                    .expect("queue has room")
            })
            .collect();
        let results: Vec<_> = handles
            .iter()
            .map(|handle| handle.await_result().expect("feasible"))
            .collect();
        service.shutdown();
        by_policy.push(results);
    }
    let (fifo, fair) = (&by_policy[0], &by_policy[1]);
    for (i, (f, w)) in fifo.iter().zip(fair.iter()).enumerate() {
        assert_eq!(f.wt_dup, w.wt_dup, "job {i}");
        assert_eq!(f.architecture, w.architecture, "job {i}");
        assert_eq!(f.analytic, w.analytic, "job {i}");
        assert_eq!(f.evaluations, w.evaluations, "job {i}");
        assert_eq!(f.history, w.history, "job {i}");
    }
}

/// [`SynthesisService::drain`] finishes queued and running jobs, rejects
/// new submissions with the typed [`ServiceError::Draining`], and leaves
/// the service shut down.
#[test]
fn drain_finishes_accepted_jobs_and_rejects_new_ones() {
    let service = SynthesisService::new(ServiceConfig::default().with_job_slots(1));
    let accepted: Vec<_> = (0..2)
        .map(|i| {
            service
                .submit(tiny_request(31 + i))
                .expect("queue has room")
        })
        .collect();
    service.begin_drain();
    assert!(service.is_draining());
    assert_eq!(
        service.submit(tiny_request(99)).unwrap_err(),
        ServiceError::Draining,
        "a draining service must reject new work with the typed error"
    );
    service.await_drained();
    for (i, handle) in accepted.iter().enumerate() {
        assert_eq!(
            handle.status(),
            JobStatus::Finished,
            "drain must finish already-accepted job {i}"
        );
    }
    service.shutdown();
    assert_eq!(
        service.submit(tiny_request(100)).unwrap_err(),
        ServiceError::ShutDown
    );
}

/// Summary fields modulo the wall-clock one, keyed for comparison.
fn summary_without_elapsed(doc: &JsonValue) -> Vec<(String, String)> {
    doc.as_object()
        .expect("summary is an object")
        .iter()
        .filter(|(k, _)| k != "elapsed_s")
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect()
}

/// The full socket round trip against an in-process daemon: submit a job,
/// poll status, stream events, fetch the result, and compare it — modulo
/// elapsed time — with a direct in-process run; then shut down cleanly.
#[test]
fn socket_round_trip_matches_direct_run_and_shuts_down() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let service = Arc::new(SynthesisService::new(
        ServiceConfig::default().with_job_slots(1),
    ));
    let handle = serve_in_background(
        listener,
        service,
        |_request| {},
        ServeOptions::new().with_quiet(true),
    )
    .expect("serve");
    let client = ServiceClient::new(handle.addr().to_string());

    // Unknown ids are typed errors, not hangs.
    let reply = client.status(999).expect("transport");
    assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        reply.get("code").and_then(JsonValue::as_str),
        Some("unknown_job")
    );

    let request = fast_request(7);
    let reply = client.submit(&request).expect("transport");
    assert_eq!(
        reply.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{reply}"
    );
    let id = reply.get("id").and_then(JsonValue::as_usize).expect("id") as u64;

    let status = client.status(id).expect("transport");
    let phase = status.get("status").and_then(JsonValue::as_str).unwrap();
    assert!(
        ["queued", "running", "finished"].contains(&phase),
        "{status}"
    );

    let result = client.result(id).expect("transport");
    assert_eq!(
        result.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{result}"
    );
    let served_summary = result.get("summary").expect("summary").clone();
    let direct = Synthesizer::new(request.options.clone())
        .synthesize(&request.model)
        .expect("direct synthesis");
    let direct_summary = SynthesisSummary::from_result(&direct).to_json();
    assert_eq!(
        summary_without_elapsed(&served_summary),
        summary_without_elapsed(&direct_summary),
        "socket-submitted job must match the direct run modulo elapsed_s"
    );

    // The events verb replays the job's stream from the beginning even
    // after it finished: job_started first, finished last.
    let events = client.events(id).expect("transport");
    assert!(!events.is_empty());
    let event_type = |doc: &JsonValue| {
        doc.get("event")
            .and_then(|e| e.get("type"))
            .and_then(JsonValue::as_str)
            .map(str::to_string)
    };
    assert_eq!(
        event_type(events.first().unwrap()).as_deref(),
        Some("job_started")
    );
    assert_eq!(
        event_type(events.last().unwrap()).as_deref(),
        Some("finished")
    );

    let reply = client.shutdown().expect("transport");
    assert_eq!(reply.get("ok").and_then(JsonValue::as_bool), Some(true));
    handle.join().expect("serve loop exits cleanly");
}

/// A token-protected daemon rejects tokenless and wrong-token requests with
/// the typed `auth_failed` error and serves authenticated ones; the `drain`
/// verb then finishes accepted work and exits the serve loop cleanly.
#[test]
fn socket_auth_gates_requests_and_drain_exits_cleanly() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let service = Arc::new(SynthesisService::new(
        ServiceConfig::default().with_job_slots(1),
    ));
    let handle = serve_in_background(
        listener,
        service,
        |_request| {},
        ServeOptions::new().with_quiet(true).with_token("sesame"),
    )
    .expect("serve");
    let addr = handle.addr().to_string();

    // No token -> typed auth failure.
    let reply = ServiceClient::new(addr.clone())
        .status(1)
        .expect("transport");
    assert_eq!(
        reply.get("code").and_then(JsonValue::as_str),
        Some("auth_failed"),
        "{reply}"
    );
    // Wrong token -> same.
    let reply = ServiceClient::new(addr.clone())
        .with_token("password")
        .status(1)
        .expect("transport");
    assert_eq!(
        reply.get("code").and_then(JsonValue::as_str),
        Some("auth_failed"),
        "{reply}"
    );

    // The right token submits and drains.
    let client = ServiceClient::new(addr).with_token("sesame");
    let reply = client.submit(&tiny_request(41)).expect("transport");
    assert_eq!(
        reply.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "{reply}"
    );
    let id = reply.get("id").and_then(JsonValue::as_usize).expect("id") as u64;
    let reply = client.drain().expect("transport");
    assert_eq!(
        reply.get("draining").and_then(JsonValue::as_bool),
        Some(true),
        "{reply}"
    );
    // Drain completion stops the serve loop; the accepted job finished.
    handle.join().expect("serve loop exits cleanly after drain");
    let result = client.result(id);
    // The daemon is gone now — the job ran to completion *before* exit, as
    // witnessed by join() returning only after drain; the socket itself is
    // closed, so this call errs on transport.
    assert!(result.is_err(), "daemon must be gone after drain");
}

/// A peer speaking the wrong protocol version gets an explicit
/// `version_mismatch` error reply, never a guess.
#[test]
fn version_mismatch_is_answered_with_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let service = Arc::new(SynthesisService::new(
        ServiceConfig::default().with_job_slots(1),
    ));
    let handle = serve_in_background(
        listener,
        service,
        |_request| {},
        ServeOptions::new().with_quiet(true),
    )
    .expect("serve");

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    writeln!(stream, r#"{{"verb":"status","pimsyn_service":99,"id":0}}"#).unwrap();
    stream.flush().unwrap();
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply).unwrap();
    let doc = JsonValue::parse(reply.trim()).expect("valid JSON reply");
    assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(
        doc.get("code").and_then(JsonValue::as_str),
        Some("version_mismatch")
    );
    drop(stream);

    ServiceClient::new(handle.addr().to_string())
        .shutdown()
        .expect("transport");
    handle.join().expect("serve loop exits cleanly");
}
