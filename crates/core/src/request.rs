//! Synthesis job descriptions: what to synthesize and under which options.

use pimsyn_model::Model;

use crate::options::SynthesisOptions;

/// One unit of work for a [`SynthesisEngine`](crate::SynthesisEngine): a
/// model plus the options to synthesize it under.
///
/// # Example
///
/// ```
/// use pimsyn::{SynthesisOptions, SynthesisRequest};
/// use pimsyn_arch::Watts;
/// use pimsyn_model::zoo;
///
/// let req = SynthesisRequest::new(
///     zoo::alexnet_cifar(10),
///     SynthesisOptions::fast(Watts(6.0)),
/// )
/// .with_label("alexnet-smoke");
/// assert_eq!(req.display_label(), "alexnet-smoke");
/// ```
#[derive(Debug, Clone)]
pub struct SynthesisRequest {
    /// The CNN to synthesize an accelerator for.
    pub model: Model,
    /// Flow configuration (power budget, effort, seeds, budgets, ...).
    pub options: SynthesisOptions,
    /// Optional human-readable label, used in batch progress reporting.
    pub label: Option<String>,
}

impl SynthesisRequest {
    /// A request synthesizing `model` under `options`.
    pub fn new(model: Model, options: SynthesisOptions) -> Self {
        Self {
            model,
            options,
            label: None,
        }
    }

    /// Attaches a label for progress reporting.
    #[must_use]
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// The label to show for this request: the explicit label when set, the
    /// model name otherwise.
    pub fn display_label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| self.model.name().to_string())
    }
}
