//! The PIMSYN command-line tool: one-click transformation of a CNN
//! description into a PIM accelerator implementation report.
//!
//! ```text
//! pimsyn --model vgg16 --power 65 --effort fast
//! pimsyn --model-file net.json --power 9 --seed 7 --cycle 2
//! pimsyn --model alexnet-cifar --power 9 --strategy woho --no-sharing
//! pimsyn --model resnet18-cifar --power 15 --objective edp --macros identical
//! ```
//!
//! `--model` accepts any zoo name (`alexnet`, `vgg13`, `vgg16`, `msra`,
//! `resnet18`, `alexnet-cifar`, `vgg16-cifar`, `resnet18-cifar`);
//! `--model-file` reads the ONNX-style JSON format of `pimsyn_model::onnx`.

use std::process::ExitCode;

use pimsyn::{Effort, MacroMode, Objective, SynthesisOptions, Synthesizer, WtDupStrategy};
use pimsyn_arch::Watts;
use pimsyn_model::{onnx, zoo, Model};

struct Args {
    model: Option<String>,
    model_file: Option<String>,
    hw_file: Option<String>,
    power: f64,
    effort: Effort,
    strategy: WtDupStrategy,
    objective: Objective,
    macro_mode: MacroMode,
    sharing: bool,
    seed: u64,
    cycle_images: usize,
}

const USAGE: &str = "\
pimsyn — synthesize a processing-in-memory CNN accelerator

USAGE:
  pimsyn --model <zoo-name> --power <watts> [options]
  pimsyn --model-file <net.json> --power <watts> [options]

OPTIONS:
  --model <name>        zoo model (alexnet, vgg13, vgg16, msra, resnet18,
                        alexnet-cifar, vgg16-cifar, resnet18-cifar)
  --model-file <path>   ONNX-style JSON model description
  --hw-file <path>      hardware setup parameters (JSON; Table III defaults)
  --power <watts>       total power constraint (required)
  --effort <fast|paper> search effort (default: fast)
  --strategy <sa|woho|none>  weight-duplication strategy (default: sa)
  --objective <eff|edp> optimization objective (default: eff)
  --macros <specialized|identical>  macro mode (default: specialized)
  --no-sharing          disable inter-layer macro sharing
  --seed <u64>          RNG seed (default: 1)
  --cycle <images>      validate with the cycle-accurate engine
  --help                print this message";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: None,
        model_file: None,
        hw_file: None,
        power: 0.0,
        effort: Effort::Fast,
        strategy: WtDupStrategy::SimulatedAnnealing,
        objective: Objective::PowerEfficiency,
        macro_mode: MacroMode::Specialized,
        sharing: true,
        seed: 1,
        cycle_images: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--model" => args.model = Some(value("--model")?),
            "--model-file" => args.model_file = Some(value("--model-file")?),
            "--hw-file" => args.hw_file = Some(value("--hw-file")?),
            "--power" => {
                args.power = value("--power")?
                    .parse()
                    .map_err(|e| format!("bad --power: {e}"))?
            }
            "--effort" => {
                args.effort = match value("--effort")?.as_str() {
                    "fast" => Effort::Fast,
                    "paper" => Effort::Paper,
                    other => return Err(format!("unknown effort `{other}`")),
                }
            }
            "--strategy" => {
                args.strategy = match value("--strategy")?.as_str() {
                    "sa" => WtDupStrategy::SimulatedAnnealing,
                    "woho" => WtDupStrategy::WohoProportional,
                    "none" => WtDupStrategy::NoDuplication,
                    other => return Err(format!("unknown strategy `{other}`")),
                }
            }
            "--objective" => {
                args.objective = match value("--objective")?.as_str() {
                    "eff" => Objective::PowerEfficiency,
                    "edp" => Objective::EnergyDelayProduct,
                    other => return Err(format!("unknown objective `{other}`")),
                }
            }
            "--macros" => {
                args.macro_mode = match value("--macros")?.as_str() {
                    "specialized" => MacroMode::Specialized,
                    "identical" => MacroMode::Identical,
                    other => return Err(format!("unknown macro mode `{other}`")),
                }
            }
            "--no-sharing" => args.sharing = false,
            "--seed" => {
                args.seed =
                    value("--seed")?.parse().map_err(|e| format!("bad --seed: {e}"))?
            }
            "--cycle" => {
                args.cycle_images =
                    value("--cycle")?.parse().map_err(|e| format!("bad --cycle: {e}"))?
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.power <= 0.0 {
        return Err("--power <watts> is required and must be positive".to_string());
    }
    if args.model.is_some() == args.model_file.is_some() {
        return Err("exactly one of --model / --model-file is required".to_string());
    }
    Ok(args)
}

fn load_model(args: &Args) -> Result<Model, String> {
    if let Some(name) = &args.model {
        return zoo::by_name(name).ok_or_else(|| format!("unknown zoo model `{name}`"));
    }
    let path = args.model_file.as_ref().expect("validated by parse_args");
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    onnx::parse_model(&text).map_err(|e| format!("cannot parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let model = match load_model(&args) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("synthesizing {model} under {} W ...", args.power);

    let mut options = SynthesisOptions::new(Watts(args.power))
        .with_effort(args.effort)
        .with_strategy(args.strategy.clone())
        .with_objective(args.objective)
        .with_macro_mode(args.macro_mode)
        .with_seed(args.seed);
    if !args.sharing {
        options = options.without_macro_sharing();
    }
    if args.cycle_images > 0 {
        options = options.with_cycle_validation(args.cycle_images);
    }
    if let Some(path) = &args.hw_file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match pimsyn_arch::hardware_config::from_json(&text) {
            Ok(hw) => options = options.with_hardware(hw),
            Err(e) => {
                eprintln!("error: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    match Synthesizer::new(options).synthesize(&model) {
        Ok(result) => {
            println!("{}", result.report_text());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            ExitCode::FAILURE
        }
    }
}
