//! The versioned JSON-lines TCP protocol between [`ServiceClient`] and a
//! served [`SynthesisService`].
//!
//! Framing follows the PR-3 worker protocol: one JSON object per line,
//! floats that must survive bit-exactly as `f64::to_bits` hex strings, and
//! a strict version field — every request carries `"pimsyn_service":
//! <version>`, and a mismatch is answered with an explicit
//! `version_mismatch` error reply instead of being guessed at.
//!
//! One connection carries one request and its reply (the `events` verb
//! streams many reply lines, then closes). Verbs:
//!
//! ```text
//! > {"verb":"submit","pimsyn_service":2,"job":{...}}
//! < {"ok":true,"pimsyn_service":2,"id":0}
//! > {"verb":"status","pimsyn_service":2,"id":0}
//! < {"ok":true,"id":0,"status":"running"}
//! > {"verb":"events","pimsyn_service":2,"id":0}
//! < {"ok":true,"event":{"type":"job_started",...}}   (one line per event)
//! < {"ok":true,"done":true}
//! > {"verb":"result","pimsyn_service":2,"id":0}      (blocks until finished)
//! < {"ok":true,"id":0,"summary":{...}}
//! > {"verb":"cancel","pimsyn_service":2,"id":0}
//! < {"ok":true,"id":0}
//! > {"verb":"drain","pimsyn_service":2}
//! < {"ok":true,"draining":true}
//! > {"verb":"shutdown","pimsyn_service":2}
//! < {"ok":true,"shutting_down":true}
//! ```
//!
//! A daemon started with a shared auth token additionally requires a
//! `"token":"<secret>"` field on every request; a bad or missing token is
//! answered with an `auth_failed` error reply. `drain` asks the daemon to
//! stop accepting new jobs, finish every queued and running one, and then
//! exit cleanly (the zero-downtime-restart verb; `shutdown` cancels
//! instead).
//!
//! Error replies are `{"ok":false,"code":"<slug>","error":"<detail>"}` with
//! codes `version_mismatch`, `bad_request`, `auth_failed`, `queue_full`,
//! `quota_exceeded`, `draining`, `shut_down`, `unknown_job` and
//! `job_failed`.
//!
//! The submit payload carries the *request*, not server policy: the model
//! (ONNX-style JSON), bit-exact hardware parameters, the power budget as
//! bits, and the search options. Which evaluation backend scores it, and
//! which cache file (if any) persists it, are the serving process's own
//! configuration — clients cannot point a daemon at arbitrary local paths.
//!
//! [`ServiceClient`]: super::ServiceClient

use std::time::Duration;

use pimsyn_arch::{hardware_config, Watts};
use pimsyn_dse::backend::protocol::{
    macro_mode_tag, objective_tag, parse_macro_mode, parse_objective,
};
use pimsyn_dse::{EvalCacheConfig, WtDupStrategy};
use pimsyn_model::json::JsonValue;
use pimsyn_model::onnx;

use crate::events::SynthesisEvent;
use crate::options::{Effort, SynthesisOptions};
use crate::request::SynthesisRequest;

/// Wire-format version; bumped on any incompatible message change (v2
/// added the `drain` verb and the optional per-request `token` field).
pub const SERVICE_PROTOCOL_VERSION: u32 = 2;

fn u64_hex(v: u64) -> String {
    format!("{v:016x}")
}

fn parse_u64_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

fn str_field(doc: &JsonValue, key: &str) -> Result<String, String> {
    doc.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field `{key}`"))
}

fn usize_field(doc: &JsonValue, key: &str) -> Result<usize, String> {
    doc.get(key)
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| format!("missing integer field `{key}`"))
}

fn bool_field(doc: &JsonValue, key: &str) -> Result<bool, String> {
    doc.get(key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("missing boolean field `{key}`"))
}

fn effort_tag(effort: Effort) -> &'static str {
    match effort {
        Effort::Fast => "fast",
        Effort::Paper => "paper",
    }
}

fn parse_effort(s: &str) -> Result<Effort, String> {
    match s {
        "fast" => Ok(Effort::Fast),
        "paper" => Ok(Effort::Paper),
        other => Err(format!("unknown effort `{other}`")),
    }
}

fn strategy_tag(strategy: &WtDupStrategy) -> Result<&'static str, String> {
    match strategy {
        WtDupStrategy::SimulatedAnnealing => Ok("sa"),
        WtDupStrategy::WohoProportional => Ok("woho"),
        WtDupStrategy::NoDuplication => Ok("none"),
        WtDupStrategy::Fixed(_) => {
            Err("fixed duplication vectors are not supported over the socket".to_string())
        }
    }
}

fn parse_strategy(s: &str) -> Result<WtDupStrategy, String> {
    match s {
        "sa" => Ok(WtDupStrategy::SimulatedAnnealing),
        "woho" => Ok(WtDupStrategy::WohoProportional),
        "none" => Ok(WtDupStrategy::NoDuplication),
        other => Err(format!("unknown strategy `{other}`")),
    }
}

/// Encodes one synthesis request as the submit verb's `job` payload (also
/// the HTTP gateway's `POST /v1/jobs` body format — any front end speaking
/// the job-payload schema of `docs/PROTOCOLS.md` can reuse this codec).
///
/// # Errors
///
/// A message for request features the wire format cannot carry (a pinned
/// design-space override or fixed duplication vectors).
pub fn encode_job_payload(request: &SynthesisRequest) -> Result<JsonValue, String> {
    let options = &request.options;
    if options.space.is_some() {
        return Err("design-space overrides are not supported over the socket".to_string());
    }
    let mut fields: Vec<(String, JsonValue)> = vec![
        (
            "model".into(),
            JsonValue::String(onnx::to_json(&request.model)),
        ),
        (
            "hw".into(),
            JsonValue::String(hardware_config::to_json_exact(&options.hw)),
        ),
        (
            "power".into(),
            JsonValue::String(u64_hex(options.power_budget.value().to_bits())),
        ),
        (
            "effort".into(),
            JsonValue::String(effort_tag(options.effort).into()),
        ),
        (
            "strategy".into(),
            JsonValue::String(strategy_tag(&options.strategy)?.into()),
        ),
        (
            "objective".into(),
            JsonValue::String(objective_tag(options.objective).into()),
        ),
        (
            "macro_mode".into(),
            JsonValue::String(macro_mode_tag(options.macro_mode).into()),
        ),
        (
            "sharing".into(),
            JsonValue::Bool(options.allow_macro_sharing),
        ),
        ("parallel".into(), JsonValue::Bool(options.parallel)),
        // u64 seeds do not survive JSON's f64 numbers; send decimal text.
        ("seed".into(), JsonValue::String(options.seed.to_string())),
        (
            "cycle".into(),
            JsonValue::Number(if options.cycle_validation {
                options.cycle_images as f64
            } else {
                0.0
            }),
        ),
        (
            "eval_cache".into(),
            JsonValue::Bool(options.eval_cache.enabled),
        ),
        (
            "eval_cache_capacity".into(),
            JsonValue::Number(options.eval_cache.capacity as f64),
        ),
    ];
    if let Some(limit) = options.time_budget {
        fields.push((
            "timeout".into(),
            JsonValue::String(u64_hex(limit.as_secs_f64().to_bits())),
        ));
    }
    if let Some(n) = options.max_evaluations {
        fields.push(("max_evals".into(), JsonValue::Number(n as f64)));
    }
    if let Some(n) = options.max_unique_evaluations {
        fields.push(("max_unique_evals".into(), JsonValue::Number(n as f64)));
    }
    if let Some(label) = &request.label {
        fields.push(("label".into(), JsonValue::String(label.clone())));
    }
    Ok(JsonValue::Object(fields))
}

/// Decodes a submit verb's `job` payload back into a request. Backend and
/// persistence settings are deliberately absent — the serving process
/// overlays its own.
///
/// # Errors
///
/// A message naming the malformed or missing field.
pub fn parse_job_payload(doc: &JsonValue) -> Result<SynthesisRequest, String> {
    let model = onnx::parse_model(&str_field(doc, "model")?)
        .map_err(|e| format!("cannot ingest model: {e}"))?;
    let hw = hardware_config::from_json_exact(&str_field(doc, "hw")?)
        .map_err(|e| format!("cannot ingest hardware params: {e}"))?;
    let power_bits = parse_u64_hex(&str_field(doc, "power")?)
        .ok_or_else(|| "`power` is not a hex bit pattern".to_string())?;
    let mut options = SynthesisOptions::new(Watts(f64::from_bits(power_bits)));
    options.hw = hw;
    options.effort = parse_effort(&str_field(doc, "effort")?)?;
    options.strategy = parse_strategy(&str_field(doc, "strategy")?)?;
    options.objective = parse_objective(&str_field(doc, "objective")?)?;
    options.macro_mode = parse_macro_mode(&str_field(doc, "macro_mode")?)?;
    options.allow_macro_sharing = bool_field(doc, "sharing")?;
    options.parallel = bool_field(doc, "parallel")?;
    options.seed = str_field(doc, "seed")?
        .parse::<u64>()
        .map_err(|e| format!("bad seed: {e}"))?;
    let cycle = usize_field(doc, "cycle")?;
    options.cycle_validation = cycle > 0;
    options.cycle_images = if cycle > 0 {
        cycle
    } else {
        options.cycle_images
    };
    options.eval_cache = if bool_field(doc, "eval_cache")? {
        EvalCacheConfig::enabled().with_capacity(usize_field(doc, "eval_cache_capacity")?)
    } else {
        EvalCacheConfig::disabled()
    };
    if let Some(timeout) = doc.get("timeout") {
        let bits = timeout
            .as_str()
            .and_then(parse_u64_hex)
            .ok_or_else(|| "`timeout` is not a hex bit pattern".to_string())?;
        let secs = f64::from_bits(bits);
        if !(secs.is_finite() && secs > 0.0) {
            return Err("`timeout` must be a positive finite duration".to_string());
        }
        options.time_budget = Some(Duration::from_secs_f64(secs));
    }
    if doc.get("max_evals").is_some() {
        options.max_evaluations = Some(usize_field(doc, "max_evals")?);
    }
    if doc.get("max_unique_evals").is_some() {
        options.max_unique_evaluations = Some(usize_field(doc, "max_unique_evals")?);
    }
    let mut request = SynthesisRequest::new(model, options);
    if let Some(label) = doc.get("label") {
        request = request.with_label(
            label
                .as_str()
                .ok_or_else(|| "`label` must be a string".to_string())?,
        );
    }
    Ok(request)
}

/// One parsed client request.
#[derive(Debug)]
pub(crate) enum WireVerb {
    /// Enqueue a job.
    Submit(Box<SynthesisRequest>),
    /// Poll a job's lifecycle phase.
    Status {
        /// The job id being polled.
        id: u64,
    },
    /// Stream a job's events from the beginning until it finishes.
    Events {
        /// The job id being streamed.
        id: u64,
    },
    /// Request cooperative cancellation.
    Cancel {
        /// The job id being cancelled.
        id: u64,
    },
    /// Block until the job finishes, then fetch its summary.
    Result {
        /// The job id being fetched.
        id: u64,
    },
    /// Gracefully drain the daemon: stop accepting, finish accepted jobs,
    /// exit cleanly.
    Drain,
    /// Stop the daemon (cancels queued and running jobs).
    Shutdown,
}

/// Why a request line could not be honored.
#[derive(Debug)]
pub(crate) enum WireParseError {
    /// The peer speaks a different protocol version.
    VersionMismatch {
        /// What the peer claimed to speak (`None`: field absent).
        peer: Option<usize>,
    },
    /// Malformed JSON, unknown verb, or missing/invalid fields.
    Bad(String),
}

impl WireParseError {
    /// The `(code, detail)` pair of the error reply this parse failure
    /// deserves.
    pub(crate) fn reply_parts(&self) -> (&'static str, String) {
        match self {
            WireParseError::VersionMismatch { peer } => (
                "version_mismatch",
                match peer {
                    Some(v) => format!(
                        "protocol version mismatch: peer speaks {v}, this build speaks \
                         {SERVICE_PROTOCOL_VERSION}"
                    ),
                    None => format!(
                        "missing `pimsyn_service` version (this build speaks \
                         {SERVICE_PROTOCOL_VERSION})"
                    ),
                },
            ),
            WireParseError::Bad(detail) => ("bad_request", detail.clone()),
        }
    }
}

/// Parses one received request line, enforcing the protocol version.
/// Returns the verb plus the request's optional auth `token` (the daemon
/// compares it against its configured secret, if any).
pub(crate) fn parse_verb(line: &str) -> Result<(WireVerb, Option<String>), WireParseError> {
    let doc = JsonValue::parse(line)
        .map_err(|e| WireParseError::Bad(format!("malformed request: {e}")))?;
    match doc.get("pimsyn_service").and_then(JsonValue::as_usize) {
        Some(v) if v == SERVICE_PROTOCOL_VERSION as usize => {}
        peer => return Err(WireParseError::VersionMismatch { peer }),
    }
    let token = doc
        .get("token")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    let verb = doc
        .get("verb")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| WireParseError::Bad("missing request `verb`".to_string()))?;
    let id = || {
        usize_field(&doc, "id")
            .map(|id| id as u64)
            .map_err(WireParseError::Bad)
    };
    let verb = match verb {
        "submit" => {
            let job = doc
                .get("job")
                .ok_or_else(|| WireParseError::Bad("missing `job` payload".to_string()))?;
            let request = parse_job_payload(job).map_err(WireParseError::Bad)?;
            WireVerb::Submit(Box::new(request))
        }
        "status" => WireVerb::Status { id: id()? },
        "events" => WireVerb::Events { id: id()? },
        "cancel" => WireVerb::Cancel { id: id()? },
        "result" => WireVerb::Result { id: id()? },
        "drain" => WireVerb::Drain,
        "shutdown" => WireVerb::Shutdown,
        other => return Err(WireParseError::Bad(format!("unknown verb `{other}`"))),
    };
    Ok((verb, token))
}

/// Builds one request line for `verb` addressing `id` (version and, when
/// given, the auth token included).
pub(crate) fn request_line(verb: &str, id: Option<u64>, token: Option<&str>) -> String {
    let mut fields: Vec<(String, JsonValue)> = vec![
        ("verb".into(), JsonValue::String(verb.to_string())),
        (
            "pimsyn_service".into(),
            JsonValue::Number(SERVICE_PROTOCOL_VERSION as f64),
        ),
    ];
    if let Some(id) = id {
        fields.push(("id".into(), JsonValue::Number(id as f64)));
    }
    if let Some(token) = token {
        fields.push(("token".into(), JsonValue::String(token.to_string())));
    }
    JsonValue::Object(fields).to_string()
}

/// Builds the submit request line carrying an encoded job payload.
pub(crate) fn submit_line(job: JsonValue, token: Option<&str>) -> String {
    let mut fields = vec![
        ("verb".into(), JsonValue::String("submit".into())),
        (
            "pimsyn_service".into(),
            JsonValue::Number(SERVICE_PROTOCOL_VERSION as f64),
        ),
        ("job".into(), job),
    ];
    if let Some(token) = token {
        fields.push(("token".into(), JsonValue::String(token.to_string())));
    }
    JsonValue::Object(fields).to_string()
}

fn ok_reply(mut fields: Vec<(String, JsonValue)>) -> String {
    let mut all = vec![
        ("ok".into(), JsonValue::Bool(true)),
        (
            "pimsyn_service".into(),
            JsonValue::Number(SERVICE_PROTOCOL_VERSION as f64),
        ),
    ];
    all.append(&mut fields);
    JsonValue::Object(all).to_string()
}

/// An `{"ok":false,...}` reply with a stable machine-readable code.
pub(crate) fn error_reply(code: &str, detail: &str) -> String {
    JsonValue::Object(vec![
        ("ok".into(), JsonValue::Bool(false)),
        (
            "pimsyn_service".into(),
            JsonValue::Number(SERVICE_PROTOCOL_VERSION as f64),
        ),
        ("code".into(), JsonValue::String(code.to_string())),
        ("error".into(), JsonValue::String(detail.to_string())),
    ])
    .to_string()
}

/// The reply to a successful submit.
pub(crate) fn submit_reply(id: u64) -> String {
    ok_reply(vec![("id".into(), JsonValue::Number(id as f64))])
}

/// The reply to a status poll.
pub(crate) fn status_reply(id: u64, status: &str) -> String {
    ok_reply(vec![
        ("id".into(), JsonValue::Number(id as f64)),
        ("status".into(), JsonValue::String(status.to_string())),
    ])
}

/// The reply to a cancel.
pub(crate) fn cancel_reply(id: u64) -> String {
    ok_reply(vec![("id".into(), JsonValue::Number(id as f64))])
}

/// The reply to a result fetch for a job that succeeded.
pub(crate) fn result_reply(id: u64, summary: JsonValue) -> String {
    ok_reply(vec![
        ("id".into(), JsonValue::Number(id as f64)),
        ("summary".into(), summary),
    ])
}

/// The acknowledgment sent before the daemon stops.
pub(crate) fn shutdown_reply() -> String {
    ok_reply(vec![("shutting_down".into(), JsonValue::Bool(true))])
}

/// The acknowledgment that a graceful drain has begun.
pub(crate) fn drain_reply() -> String {
    ok_reply(vec![("draining".into(), JsonValue::Bool(true))])
}

/// One streamed event line of the `events` verb.
pub(crate) fn event_reply(event: &SynthesisEvent) -> String {
    ok_reply(vec![("event".into(), event_to_json(event))])
}

/// The terminal line of an `events` stream.
pub(crate) fn events_done_reply() -> String {
    ok_reply(vec![("done".into(), JsonValue::Bool(true))])
}

/// Renders a synthesis progress event as a JSON object (informational:
/// floats travel as plain JSON numbers, unlike the bit-exact result path).
pub fn event_to_json(event: &SynthesisEvent) -> JsonValue {
    let tag = |t: &str| ("type".to_string(), JsonValue::String(t.to_string()));
    let num = |k: &str, v: f64| (k.to_string(), JsonValue::Number(v));
    match event {
        SynthesisEvent::JobStarted { job, label } => JsonValue::Object(vec![
            tag("job_started"),
            num("job", *job as f64),
            ("label".into(), JsonValue::String(label.clone())),
        ]),
        SynthesisEvent::StageStarted {
            job,
            point_index,
            stage,
        } => JsonValue::Object(vec![
            tag("stage_started"),
            num("job", *job as f64),
            num("point", *point_index as f64),
            ("stage".into(), JsonValue::String(stage.to_string())),
        ]),
        SynthesisEvent::StageFinished {
            job,
            point_index,
            stage,
        } => JsonValue::Object(vec![
            tag("stage_finished"),
            num("job", *job as f64),
            num("point", *point_index as f64),
            ("stage".into(), JsonValue::String(stage.to_string())),
        ]),
        SynthesisEvent::DesignPointEvaluated {
            job,
            point,
            point_index,
            best_efficiency,
            evaluations,
        } => JsonValue::Object(vec![
            tag("design_point_evaluated"),
            num("job", *job as f64),
            num("point", *point_index as f64),
            ("design_point".into(), JsonValue::String(point.to_string())),
            num("best_efficiency", *best_efficiency),
            num("evaluations", *evaluations as f64),
        ]),
        SynthesisEvent::ImprovedBest {
            job,
            point_index,
            fitness,
        } => JsonValue::Object(vec![
            tag("improved_best"),
            num("job", *job as f64),
            num("point", *point_index as f64),
            num("fitness", *fitness),
        ]),
        SynthesisEvent::EvaluatorStats {
            job,
            point_index,
            stats,
        } => JsonValue::Object(vec![
            tag("evaluator_stats"),
            num("job", *job as f64),
            num("point", *point_index as f64),
            num("scored", stats.scored as f64),
            num("unique_evaluations", stats.unique_evaluations as f64),
            num("cache_hits", stats.cache_hits as f64),
        ]),
        SynthesisEvent::Finished {
            job,
            efficiency,
            evaluations,
            stop_reason,
            elapsed,
            error,
        } => {
            let mut fields = vec![
                tag("finished"),
                num("job", *job as f64),
                num("evaluations", *evaluations as f64),
                num("elapsed_s", elapsed.as_secs_f64()),
            ];
            if let Some(eff) = efficiency {
                fields.push(num("efficiency", *eff));
            }
            if let Some(reason) = stop_reason {
                fields.push(("stop_reason".into(), JsonValue::String(reason.to_string())));
            }
            if let Some(message) = error {
                fields.push(("error".into(), JsonValue::String(message.clone())));
            }
            JsonValue::Object(fields)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_model::zoo;

    fn sample_request() -> SynthesisRequest {
        let mut options = SynthesisOptions::fast(Watts(9.25)).with_seed(0xDEAD_BEEF_CAFE_F00D);
        options = options
            .with_max_evaluations(500)
            .with_max_unique_evaluations(100)
            .with_time_budget(Duration::from_secs_f64(1.5))
            .with_cycle_validation(2);
        SynthesisRequest::new(zoo::alexnet_cifar(10), options).with_label("wire-test")
    }

    #[test]
    fn submit_payload_round_trips_the_request() {
        let request = sample_request();
        let encoded = encode_job_payload(&request).unwrap();
        let back = parse_job_payload(&encoded).unwrap();
        // Options (including the > 2^53 seed and the bit-exact power) and
        // label survive; model structure survives the ONNX JSON round trip.
        assert_eq!(back.options, request.options);
        assert_eq!(back.label, request.label);
        assert_eq!(back.model.name(), request.model.name());
        assert_eq!(
            back.model.weight_layer_count(),
            request.model.weight_layer_count()
        );
    }

    #[test]
    fn submit_line_parses_as_a_verb() {
        let request = sample_request();
        let line = submit_line(encode_job_payload(&request).unwrap(), None);
        match parse_verb(&line).unwrap() {
            (WireVerb::Submit(back), None) => {
                assert_eq!(back.options.seed, request.options.seed)
            }
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn tokens_travel_on_request_lines() {
        let line = request_line("status", Some(3), Some("s3cret"));
        let (_, token) = parse_verb(&line).unwrap();
        assert_eq!(token.as_deref(), Some("s3cret"));
        let request = sample_request();
        let line = submit_line(encode_job_payload(&request).unwrap(), Some("s3cret"));
        let (verb, token) = parse_verb(&line).unwrap();
        assert!(matches!(verb, WireVerb::Submit(_)));
        assert_eq!(token.as_deref(), Some("s3cret"));
    }

    #[test]
    fn unsupported_requests_are_rejected_at_encode_time() {
        let mut request = sample_request();
        request.options.strategy = WtDupStrategy::Fixed(vec![vec![1]]);
        assert!(encode_job_payload(&request).is_err());
        let mut request = sample_request();
        request.options.space = Some(pimsyn_dse::DesignSpace::reduced());
        assert!(encode_job_payload(&request).is_err());
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let line = r#"{"verb":"status","pimsyn_service":99,"id":0}"#;
        match parse_verb(line).unwrap_err() {
            WireParseError::VersionMismatch { peer } => assert_eq!(peer, Some(99)),
            other => panic!("got {other:?}"),
        }
        let line = r#"{"verb":"status","id":0}"#;
        assert!(matches!(
            parse_verb(line).unwrap_err(),
            WireParseError::VersionMismatch { peer: None }
        ));
        let (code, detail) = WireParseError::VersionMismatch { peer: Some(99) }.reply_parts();
        assert_eq!(code, "version_mismatch");
        assert!(detail.contains("99"), "{detail}");
    }

    #[test]
    fn id_verbs_and_garbage_parse_as_expected() {
        for (verb, want) in [
            ("status", 3u64),
            ("events", 4),
            ("cancel", 5),
            ("result", 6),
        ] {
            match parse_verb(&request_line(verb, Some(want), None)).unwrap().0 {
                WireVerb::Status { id }
                | WireVerb::Events { id }
                | WireVerb::Cancel { id }
                | WireVerb::Result { id } => assert_eq!(id, want),
                other => panic!("{verb} parsed as {other:?}"),
            }
        }
        assert!(matches!(
            parse_verb(&request_line("shutdown", None, None)).unwrap().0,
            WireVerb::Shutdown
        ));
        assert!(matches!(
            parse_verb(&request_line("drain", None, None)).unwrap().0,
            WireVerb::Drain
        ));
        assert!(matches!(
            parse_verb("not json"),
            Err(WireParseError::Bad(_))
        ));
        assert!(matches!(
            parse_verb(&request_line("dance", None, None)),
            Err(WireParseError::Bad(_))
        ));
    }

    #[test]
    fn replies_are_parseable_json_with_ok_flags() {
        for (line, ok) in [
            (submit_reply(7), true),
            (status_reply(7, "queued"), true),
            (cancel_reply(7), true),
            (result_reply(7, JsonValue::Object(vec![])), true),
            (shutdown_reply(), true),
            (drain_reply(), true),
            (events_done_reply(), true),
            (error_reply("queue_full", "full"), false),
        ] {
            let doc = JsonValue::parse(&line).expect("valid JSON");
            assert_eq!(
                doc.get("ok").and_then(JsonValue::as_bool),
                Some(ok),
                "{line}"
            );
        }
        let doc = JsonValue::parse(&error_reply("queue_full", "full")).unwrap();
        assert_eq!(
            doc.get("code").and_then(JsonValue::as_str),
            Some("queue_full")
        );
    }

    #[test]
    fn events_serialize_with_type_tags() {
        let event = SynthesisEvent::ImprovedBest {
            job: 1,
            point_index: 2,
            fitness: 3.5,
        };
        let doc = event_to_json(&event);
        assert_eq!(
            doc.get("type").and_then(JsonValue::as_str),
            Some("improved_best")
        );
        assert_eq!(doc.get("fitness").and_then(JsonValue::as_f64), Some(3.5));
        let line = event_reply(&event);
        let doc = JsonValue::parse(&line).unwrap();
        assert!(doc.get("event").is_some());
    }
}
