//! The long-lived [`SynthesisService`]: a multi-job queue over a shared
//! worker pool.
//!
//! Where a [`SynthesisEngine`](crate::SynthesisEngine) models one ephemeral
//! run (or one throwaway batch), the service models a *daemon*: clients
//! [`submit`](SynthesisService::submit) requests into a bounded queue, a
//! fixed number of job slots drain it under a pluggable
//! [`SchedulingPolicy`] (global FIFO by default; weighted deficit
//! round-robin across [`TenantPolicy`] lanes for multi-tenant front ends
//! such as the HTTP gateway), and every job shares the service's
//! process-wide resources — one `pimsyn --worker` subprocess pool (leased
//! and re-sessioned per job instead of spawned per run) and one in-memory
//! evaluation-cache snapshot store (so jobs with the same fingerprint
//! warm-start each other without touching the cache file). Sharing is
//! transparent: results are bit-identical to standalone runs. (One caveat,
//! inherited from the cache file itself: a job curtailed by a
//! `max_unique_evaluations` budget stops by work actually done, so its
//! stopping point depends on what warm-started its memo — see
//! [`SharedEvalResources`] for the full statement.)
//!
//! Each submission returns a [`JobHandle`] exposing
//! [`status`](JobHandle::status) / [`await_result`](JobHandle::await_result)
//! / [`cancel`](JobHandle::cancel) / [`events`](JobHandle::events), built on
//! the same [`CancelToken`] / [`EventSink`] machinery as the engine.
//!
//! The service is also reachable over a socket: [`serve`] runs it behind a
//! versioned JSON-lines TCP protocol (`submit` / `status` / `events` /
//! `cancel` / `result` / `shutdown`), and [`ServiceClient`] speaks that
//! protocol — the `pimsyn serve` / `pimsyn submit|status|result|cancel|
//! shutdown` CLI subcommands are thin wrappers over the two.
//!
//! # Example
//!
//! ```
//! use pimsyn::{ServiceConfig, SynthesisOptions, SynthesisRequest, SynthesisService};
//! use pimsyn_arch::Watts;
//! use pimsyn_model::zoo;
//!
//! let service = SynthesisService::new(ServiceConfig::default().with_job_slots(2));
//! let job = service
//!     .submit(SynthesisRequest::new(
//!         zoo::alexnet_cifar(10),
//!         SynthesisOptions::fast(Watts(6.0)).with_seed(3),
//!     ))
//!     .expect("queue has room");
//! let result = job.await_result().expect("alexnet at 6 W is feasible");
//! assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
//! service.shutdown();
//! ```

mod client;
pub mod registry;
mod sched;
mod serve;
mod wire;

pub use client::ServiceClient;
pub use registry::{
    serve_registry, serve_registry_in_background, RegistrySnapshot, RegistryWorker, WorkerRegistry,
    DEFAULT_HEARTBEAT_INTERVAL, REGISTRY_PROTOCOL_VERSION,
};
pub use sched::SchedulingPolicy;
pub use serve::{serve, serve_in_background, ServeHandle, ServeOptions};
pub use wire::{encode_job_payload, event_to_json, parse_job_payload, SERVICE_PROTOCOL_VERSION};

use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

use pimsyn_dse::{CancelToken, SharedEvalResources};

use crate::engine::SynthesisEngine;
use crate::error::SynthesisError;
use crate::events::{ChannelSink, EventSink, SynthesisEvent};
use crate::request::SynthesisRequest;
use crate::synthesis::SynthesisResult;

/// Sizing policy of a [`SynthesisService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Concurrent job slots (worker threads draining the queue).
    pub job_slots: usize,
    /// Maximum jobs *waiting* in the queue (running jobs do not count).
    /// A submit beyond this depth returns [`ServiceError::QueueFull`]
    /// instead of blocking.
    pub queue_depth: usize,
    /// How many *finished* jobs stay addressable by id (their results
    /// fetchable through [`SynthesisService::await_result_by_id`] and the
    /// socket `result` verb). Beyond this, the oldest finished records are
    /// dropped — a long-lived daemon must not grow without bound. Live
    /// [`JobHandle`]s are unaffected by eviction.
    pub finished_retention: usize,
    /// Which policy orders waiting jobs: global FIFO (the default) or
    /// weighted deficit round-robin across tenants. With a single tenant —
    /// or no tenants at all — both policies dispatch in submission order,
    /// and every job's result is bit-identical under either (scheduling
    /// reorders dispatch, never a job's own computation).
    pub scheduling: SchedulingPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            job_slots: thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: Self::DEFAULT_QUEUE_DEPTH,
            finished_retention: Self::DEFAULT_FINISHED_RETENTION,
            scheduling: SchedulingPolicy::default(),
        }
    }
}

impl ServiceConfig {
    /// Default bound on waiting jobs.
    pub const DEFAULT_QUEUE_DEPTH: usize = 64;

    /// Default bound on retained finished-job records.
    pub const DEFAULT_FINISHED_RETENTION: usize = 256;

    /// Overrides the number of concurrent job slots (at least one).
    #[must_use]
    pub fn with_job_slots(mut self, slots: usize) -> Self {
        self.job_slots = slots.max(1);
        self
    }

    /// Overrides the queue depth (at least one waiting job).
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Overrides how many finished jobs stay addressable by id (at least
    /// one).
    #[must_use]
    pub fn with_finished_retention(mut self, retained: usize) -> Self {
        self.finished_retention = retained.max(1);
        self
    }

    /// Overrides the queue-scheduling policy.
    #[must_use]
    pub fn with_scheduling(mut self, policy: SchedulingPolicy) -> Self {
        self.scheduling = policy;
        self
    }
}

/// Per-tenant scheduling identity and quotas, attached to submissions via
/// [`SynthesisService::submit_with`].
///
/// The *name* keys everything: jobs submitted under the same name share one
/// scheduling lane, one set of running/queued counts, and one quota budget.
/// Submissions without a tenant share an anonymous weight-1 lane with no
/// quotas (plain [`submit`](SynthesisService::submit) behaves exactly as it
/// always has).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Tenant identity (lane key). Must be non-empty.
    pub name: String,
    /// Scheduling weight under [`SchedulingPolicy::WeightedFair`]: per
    /// round-robin visit a tenant dispatches up to `weight` jobs, so two
    /// flooding tenants get slots in weight proportion. Clamped to ≥ 1.
    pub weight: u32,
    /// Maximum jobs this tenant may have *waiting*; a submit beyond it
    /// returns [`ServiceError::QuotaExceeded`] (the 429-style typed
    /// rejection). `None`: only the global queue depth bounds it.
    pub max_queued: Option<usize>,
    /// Maximum jobs this tenant may have *running*; further jobs stay
    /// queued (dispatch is deferred, never rejected) until one finishes.
    pub max_running: Option<usize>,
}

impl TenantPolicy {
    /// A weight-1 tenant with no quotas.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            weight: 1,
            max_queued: None,
            max_running: None,
        }
    }

    /// Overrides the fair-scheduling weight (clamped to at least 1).
    #[must_use]
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Caps this tenant's waiting jobs.
    #[must_use]
    pub fn with_max_queued(mut self, max: usize) -> Self {
        self.max_queued = Some(max);
        self
    }

    /// Caps this tenant's concurrently running jobs.
    #[must_use]
    pub fn with_max_running(mut self, max: usize) -> Self {
        self.max_running = Some(max);
        self
    }
}

/// One tenant's queue occupancy in a [`ServiceSnapshot`] (anonymous
/// submissions appear under the empty-string tenant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCounts {
    /// The tenant key.
    pub tenant: String,
    /// Jobs waiting in this tenant's lane.
    pub queued: usize,
    /// Jobs of this tenant currently occupying slots.
    pub running: usize,
}

impl TenantCounts {
    fn new(tenant: impl Into<String>) -> Self {
        Self {
            tenant: tenant.into(),
            queued: 0,
            running: 0,
        }
    }
}

/// A point-in-time view of a service's queue, from
/// [`SynthesisService::snapshot`] (the backing store of the gateway's
/// `/metrics` gauges).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceSnapshot {
    /// Jobs waiting, total.
    pub queued: usize,
    /// Jobs occupying slots, total.
    pub running: usize,
    /// Whether a graceful drain is in progress.
    pub draining: bool,
    /// Whether the service has shut down.
    pub shut_down: bool,
    /// Per-tenant occupancy, sorted by tenant key; tenants with neither
    /// queued nor running jobs are absent.
    pub tenants: Vec<TenantCounts>,
}

/// Errors from the service's queueing layer (job *outcomes* travel through
/// [`JobHandle::await_result`] as [`SynthesisError`]s instead).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The bounded queue already holds `depth` waiting jobs; the submit was
    /// rejected rather than blocked. Retry after a job finishes.
    QueueFull {
        /// The configured queue depth that was hit.
        depth: usize,
    },
    /// The submitting tenant already has `limit` jobs waiting
    /// ([`TenantPolicy::max_queued`]); the submit was rejected rather than
    /// blocked. Retry after one of the tenant's jobs dispatches. This is
    /// the typed per-tenant analogue of [`QueueFull`](Self::QueueFull) (an
    /// HTTP front end maps it to `429 Too Many Requests`).
    QuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: String,
        /// The configured `max_queued` bound.
        limit: usize,
    },
    /// The service is draining ([`SynthesisService::begin_drain`]):
    /// already-accepted jobs will finish, but no new jobs are accepted.
    Draining,
    /// The service is shutting down and accepts no new jobs.
    ShutDown,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { depth } => {
                write!(f, "job queue is full ({depth} jobs waiting)")
            }
            ServiceError::QuotaExceeded { tenant, limit } => write!(
                f,
                "tenant `{tenant}` is at its queued-job quota ({limit} jobs waiting)"
            ),
            ServiceError::Draining => {
                write!(
                    f,
                    "the synthesis service is draining and accepts no new jobs"
                )
            }
            ServiceError::ShutDown => write!(f, "the synthesis service is shut down"),
        }
    }
}

impl Error for ServiceError {}

/// Lifecycle phase of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Waiting in the FIFO queue.
    Queued,
    /// Occupying a job slot.
    Running,
    /// Finished; the result is available without blocking.
    Finished,
}

impl fmt::Display for JobStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Finished => "finished",
        })
    }
}

enum JobPhase {
    Queued,
    Running,
    // Boxed: a SynthesisResult is hundreds of bytes, and every queued job
    // carries a phase.
    Finished(Box<Result<SynthesisResult, SynthesisError>>),
}

/// Everything a job needs to run, taken by the slot that executes it (and
/// dropped afterwards, which closes the job's event channel).
struct JobWork {
    request: SynthesisRequest,
    sink: TeeSink,
}

/// Fans one event stream out to several sinks (the handle's channel plus an
/// optional external sink such as a batch aggregator or a socket log).
struct TeeSink {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl EventSink for TeeSink {
    fn emit(&self, event: SynthesisEvent) {
        let mut rest = self.sinks.iter();
        let Some(first) = rest.next() else { return };
        for sink in rest {
            sink.emit(event.clone());
        }
        first.emit(event);
    }
}

struct JobState {
    id: u64,
    /// The `job` tag stamped on this job's events (the batch index for
    /// batch submissions, the job id otherwise).
    event_tag: usize,
    cancel: CancelToken,
    /// Scheduling identity and quotas; `None` = anonymous lane.
    tenant: Option<TenantPolicy>,
    work: Mutex<Option<JobWork>>,
    phase: Mutex<JobPhase>,
    done: Condvar,
}

impl JobState {
    /// The scheduling-lane key ("" for anonymous submissions).
    fn tenant_key(&self) -> &str {
        self.tenant.as_ref().map_or("", |t| t.name.as_str())
    }

    /// Fair-scheduling weight (≥ 1).
    fn weight(&self) -> u32 {
        self.tenant.as_ref().map_or(1, |t| t.weight.max(1))
    }

    /// This job's tenant's running cap, if any.
    fn max_running(&self) -> Option<usize> {
        self.tenant.as_ref().and_then(|t| t.max_running)
    }

    fn status(&self) -> JobStatus {
        match *self.phase.lock().expect("job phase") {
            JobPhase::Queued => JobStatus::Queued,
            JobPhase::Running => JobStatus::Running,
            JobPhase::Finished(_) => JobStatus::Finished,
        }
    }

    fn finish(&self, result: Result<SynthesisResult, SynthesisError>) {
        *self.phase.lock().expect("job phase") = JobPhase::Finished(Box::new(result));
        self.done.notify_all();
    }

    fn await_result(&self) -> Result<SynthesisResult, SynthesisError> {
        let mut phase = self.phase.lock().expect("job phase");
        loop {
            if let JobPhase::Finished(result) = &*phase {
                return (**result).clone();
            }
            phase = self.done.wait(phase).expect("job phase");
        }
    }
}

struct QueueState {
    /// Waiting jobs, ordered by the configured scheduling policy.
    scheduler: Box<dyn sched::Scheduler>,
    /// Jobs currently occupying slots, per tenant key (`max_running` caps
    /// and introspection).
    running: HashMap<String, usize>,
    /// Jobs currently occupying slots, total.
    running_total: usize,
    /// Draining: accepted jobs finish, new submits are rejected.
    draining: bool,
    shutdown: bool,
}

struct Inner {
    config: ServiceConfig,
    engine: SynthesisEngine,
    shared: Arc<SharedEvalResources>,
    queue: Mutex<QueueState>,
    available: Condvar,
    jobs: Mutex<HashMap<u64, Arc<JobState>>>,
    /// Finished-job ids in completion order; the retention bound evicts
    /// from the front.
    finished: Mutex<VecDeque<u64>>,
    next_id: AtomicU64,
}

impl Inner {
    /// Records a job's completion and evicts the oldest finished records
    /// beyond the retention bound: a daemon processing thousands of jobs
    /// must not retain every result and job state forever. Handles keep
    /// their own `Arc<JobState>`, so eviction only ends by-id addressing.
    fn record_finished(&self, id: u64) {
        let evict: Vec<u64> = {
            let mut finished = self.finished.lock().expect("finished jobs");
            finished.push_back(id);
            let excess = finished
                .len()
                .saturating_sub(self.config.finished_retention);
            finished.drain(..excess).collect()
        };
        if !evict.is_empty() {
            let mut jobs = self.jobs.lock().expect("service jobs");
            for id in evict {
                jobs.remove(&id);
            }
        }
    }

    fn run_slot(self: &Arc<Self>) {
        loop {
            let job = {
                let mut state = self.queue.lock().expect("service queue");
                loop {
                    if state.shutdown {
                        return;
                    }
                    // Dispatch and the running-count increment are atomic
                    // under the queue lock, so `max_running` caps hold.
                    let queue_state = &mut *state;
                    if let Some(job) = queue_state.scheduler.dequeue(&queue_state.running) {
                        *queue_state
                            .running
                            .entry(job.tenant_key().to_string())
                            .or_insert(0) += 1;
                        queue_state.running_total += 1;
                        break job;
                    }
                    state = self.available.wait(state).expect("service queue");
                }
            };
            *job.phase.lock().expect("job phase") = JobPhase::Running;
            let work = job.work.lock().expect("job work").take();
            let result = match work {
                // A job cancelled while still queued never runs (and emits
                // no events) — the same contract the engine's batch path
                // has always had for pre-cancelled jobs.
                Some(work) if !job.cancel.is_cancelled() => {
                    let JobWork { mut request, sink } = work;
                    // Every job shares the service's worker pool and
                    // snapshot store unless the request brought its own.
                    if request.options.backend.shared.is_none() {
                        request.options.backend.shared = Some(Arc::clone(&self.shared));
                    }
                    self.engine
                        .run_job(job.event_tag, &request, &sink, &job.cancel)
                }
                _ => Err(SynthesisError::Cancelled),
            };
            job.finish(result);
            {
                let mut state = self.queue.lock().expect("service queue");
                let key = job.tenant_key();
                if let Some(count) = state.running.get_mut(key) {
                    *count -= 1;
                    if *count == 0 {
                        state.running.remove(key);
                    }
                }
                state.running_total -= 1;
            }
            // A freed slot may unblock a tenant at its running cap, and
            // drain waiters recheck on every completion: wake everyone.
            self.available.notify_all();
            self.record_finished(job.id);
        }
    }
}

/// A long-lived, thread-safe synthesis daemon: a bounded FIFO job queue
/// drained by a fixed number of slots, with process-wide shared evaluation
/// resources.
///
/// [`submit`](Self::submit) enqueues a [`SynthesisRequest`] and returns a
/// [`JobHandle`] (or [`ServiceError::QueueFull`] — it never blocks); jobs
/// share one subprocess worker pool and one in-memory evaluation-cache
/// snapshot store through [`SharedEvalResources`], so N jobs spawn at most
/// the pool width of workers and same-fingerprint jobs warm-start each
/// other. Sharing is transparent: results are bit-identical to standalone
/// runs. [`serve`] exposes a service over TCP; [`ServiceClient`] is the
/// matching client (see `docs/PROTOCOLS.md` for the wire format).
pub struct SynthesisService {
    inner: Arc<Inner>,
    slots: Mutex<Vec<thread::JoinHandle<()>>>,
}

impl fmt::Debug for SynthesisService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let queue = self.inner.queue.lock().expect("service queue");
        f.debug_struct("SynthesisService")
            .field("config", &self.inner.config)
            .field("queued", &queue.scheduler.len())
            .field("running", &queue.running_total)
            .field("draining", &queue.draining)
            .field("shutdown", &queue.shutdown)
            .finish_non_exhaustive()
    }
}

impl Default for SynthesisService {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl SynthesisService {
    /// Starts a service: `config.job_slots` worker threads begin draining
    /// the (initially empty) queue immediately.
    pub fn new(config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            engine: SynthesisEngine::new(),
            shared: SharedEvalResources::new(),
            queue: Mutex::new(QueueState {
                scheduler: sched::scheduler_for(config.scheduling),
                running: HashMap::new(),
                running_total: 0,
                draining: false,
                shutdown: false,
            }),
            config,
            available: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            finished: Mutex::new(VecDeque::new()),
            next_id: AtomicU64::new(0),
        });
        let slots = (0..inner.config.job_slots)
            .map(|_| {
                let inner = Arc::clone(&inner);
                thread::spawn(move || inner.run_slot())
            })
            .collect();
        Self {
            inner,
            slots: Mutex::new(slots),
        }
    }

    /// The sizing policy this service runs under.
    pub fn config(&self) -> &ServiceConfig {
        &self.inner.config
    }

    /// The shared evaluation resources every job of this service leases
    /// from (worker pool, snapshot store).
    pub fn shared_resources(&self) -> Arc<SharedEvalResources> {
        Arc::clone(&self.inner.shared)
    }

    /// Worker processes spawned by the service's shared pool so far. N jobs
    /// through a service spawn at most the configured pool width of
    /// workers, not N × width.
    pub fn worker_spawns(&self) -> usize {
        self.inner.shared.worker_spawns()
    }

    /// Jobs currently waiting in the queue (excluding running ones).
    pub fn queued_jobs(&self) -> usize {
        self.inner
            .queue
            .lock()
            .expect("service queue")
            .scheduler
            .len()
    }

    /// A point-in-time view of the queue: totals, drain state, and
    /// per-tenant counts (for dashboards and the gateway's `/metrics`).
    pub fn snapshot(&self) -> ServiceSnapshot {
        let queue = self.inner.queue.lock().expect("service queue");
        let mut tenants: HashMap<String, TenantCounts> = HashMap::new();
        for (name, queued) in queue.scheduler.tenant_counts() {
            tenants
                .entry(name.clone())
                .or_insert_with(|| TenantCounts::new(name))
                .queued = queued;
        }
        for (name, &running) in &queue.running {
            tenants
                .entry(name.clone())
                .or_insert_with(|| TenantCounts::new(name.clone()))
                .running = running;
        }
        let mut tenants: Vec<TenantCounts> = tenants.into_values().collect();
        tenants.sort_by(|a, b| a.tenant.cmp(&b.tenant));
        ServiceSnapshot {
            queued: queue.scheduler.len(),
            running: queue.running_total,
            draining: queue.draining,
            shut_down: queue.shutdown,
            tenants,
        }
    }

    /// Submits a request into the queue.
    ///
    /// # Errors
    ///
    /// - [`ServiceError::QueueFull`] when `queue_depth` jobs are already
    ///   waiting (the call never blocks on a full queue).
    /// - [`ServiceError::ShutDown`] after [`shutdown`](Self::shutdown).
    pub fn submit(&self, request: SynthesisRequest) -> Result<JobHandle, ServiceError> {
        self.submit_inner(request, None, None, None, None)
    }

    /// Submits a request under a tenant policy, optionally tee'ing its
    /// events into an external sink (e.g. a replayable event log).
    ///
    /// The tenant's `name` keys its scheduling lane and quota budget; the
    /// policy travels with the job, so the *submitter* decides quotas and
    /// weights (a front end resolves them from its tenant registry).
    /// `tenant: None` is exactly [`submit`](Self::submit) plus the sink.
    ///
    /// # Errors
    ///
    /// Everything [`submit`](Self::submit) returns, plus
    /// [`ServiceError::QuotaExceeded`] when the tenant is at its
    /// [`max_queued`](TenantPolicy::max_queued) bound and
    /// [`ServiceError::Draining`] while a drain is in progress.
    pub fn submit_with(
        &self,
        request: SynthesisRequest,
        tenant: Option<TenantPolicy>,
        external: Option<Arc<dyn EventSink>>,
    ) -> Result<JobHandle, ServiceError> {
        self.submit_inner(request, None, tenant, external, None)
    }

    /// Batch-path submission: events are tagged with `tag` (the batch
    /// index), tee'd into `external`, and all jobs share `cancel`.
    pub(crate) fn submit_tagged(
        &self,
        request: SynthesisRequest,
        tag: usize,
        external: Arc<dyn EventSink>,
        cancel: CancelToken,
    ) -> Result<JobHandle, ServiceError> {
        self.submit_inner(request, Some(tag), None, Some(external), Some(cancel))
    }

    /// Socket-path submission: events are additionally tee'd into
    /// `external` (the per-job event log the `events` verb replays).
    pub(crate) fn submit_observed(
        &self,
        request: SynthesisRequest,
        external: Arc<dyn EventSink>,
    ) -> Result<JobHandle, ServiceError> {
        self.submit_inner(request, None, None, Some(external), None)
    }

    fn submit_inner(
        &self,
        request: SynthesisRequest,
        tag: Option<usize>,
        tenant: Option<TenantPolicy>,
        external: Option<Arc<dyn EventSink>>,
        cancel: Option<CancelToken>,
    ) -> Result<JobHandle, ServiceError> {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let (channel, events) = ChannelSink::pair();
        let mut sinks: Vec<Arc<dyn EventSink>> = vec![Arc::new(channel)];
        sinks.extend(external);
        let state = Arc::new(JobState {
            id,
            event_tag: tag.unwrap_or(id as usize),
            cancel: cancel.unwrap_or_default(),
            tenant,
            work: Mutex::new(Some(JobWork {
                request,
                sink: TeeSink { sinks },
            })),
            phase: Mutex::new(JobPhase::Queued),
            done: Condvar::new(),
        });
        {
            let mut queue = self.inner.queue.lock().expect("service queue");
            if queue.shutdown {
                return Err(ServiceError::ShutDown);
            }
            if queue.draining {
                return Err(ServiceError::Draining);
            }
            if queue.scheduler.len() >= self.inner.config.queue_depth {
                return Err(ServiceError::QueueFull {
                    depth: self.inner.config.queue_depth,
                });
            }
            if let Some(policy) = &state.tenant {
                if let Some(limit) = policy.max_queued {
                    if queue.scheduler.queued_for(&policy.name) >= limit {
                        return Err(ServiceError::QuotaExceeded {
                            tenant: policy.name.clone(),
                            limit,
                        });
                    }
                }
            }
            queue.scheduler.enqueue(Arc::clone(&state));
        }
        self.inner.available.notify_one();
        self.inner
            .jobs
            .lock()
            .expect("service jobs")
            .insert(id, Arc::clone(&state));
        Ok(JobHandle { state, events })
    }

    /// The status of a job by id (`None` for unknown ids, including
    /// finished jobs evicted past
    /// [`finished_retention`](ServiceConfig::finished_retention)).
    pub fn status_of(&self, id: u64) -> Option<JobStatus> {
        self.job(id).map(|job| job.status())
    }

    /// Cancels a job by id; returns whether the id was known.
    pub fn cancel_by_id(&self, id: u64) -> bool {
        match self.job(id) {
            Some(job) => {
                job.cancel.cancel();
                true
            }
            None => false,
        }
    }

    /// Blocks until the job finishes and returns (a clone of) its result;
    /// `None` for unknown ids. Results stay fetchable until the job is
    /// evicted past [`finished_retention`](ServiceConfig::finished_retention)
    /// (a [`JobHandle`] keeps its result reachable regardless).
    pub fn await_result_by_id(&self, id: u64) -> Option<Result<SynthesisResult, SynthesisError>> {
        self.job(id).map(|job| job.await_result())
    }

    fn job(&self, id: u64) -> Option<Arc<JobState>> {
        self.inner
            .jobs
            .lock()
            .expect("service jobs")
            .get(&id)
            .cloned()
    }

    /// Begins a graceful drain: from now on submits are rejected with
    /// [`ServiceError::Draining`], while already-accepted jobs — queued
    /// *and* running — proceed to completion (unlike
    /// [`shutdown`](Self::shutdown), which cancels queued jobs). Status,
    /// result and cancel calls keep working throughout. Idempotent.
    pub fn begin_drain(&self) {
        self.inner.queue.lock().expect("service queue").draining = true;
    }

    /// Whether [`begin_drain`](Self::begin_drain) has been called.
    pub fn is_draining(&self) -> bool {
        self.inner.queue.lock().expect("service queue").draining
    }

    /// Blocks until no job is waiting or running. Usually preceded by
    /// [`begin_drain`](Self::begin_drain) — without it new submits can keep
    /// the queue busy indefinitely.
    pub fn await_drained(&self) {
        let mut queue = self.inner.queue.lock().expect("service queue");
        while queue.scheduler.len() > 0 || queue.running_total > 0 {
            queue = self.inner.available.wait(queue).expect("service queue");
        }
    }

    /// Graceful drain, end to end: stop accepting new jobs, let every
    /// queued and running job finish, then shut down (joining all slots).
    /// The zero-downtime-restart path: a drained service exits with all
    /// accepted work completed, never cancelled.
    pub fn drain(&self) {
        self.begin_drain();
        self.await_drained();
        self.shutdown();
    }

    /// Shuts the service down: no further submits are accepted, jobs still
    /// waiting in the queue finish as [`SynthesisError::Cancelled`] without
    /// running, running jobs are cancelled cooperatively, and every job
    /// slot is joined before this returns.
    pub fn shutdown(&self) {
        let drained: Vec<Arc<JobState>> = {
            let mut queue = self.inner.queue.lock().expect("service queue");
            queue.shutdown = true;
            queue.scheduler.drain_all()
        };
        self.inner.available.notify_all();
        for job in drained {
            job.finish(Err(SynthesisError::Cancelled));
            self.inner.record_finished(job.id);
        }
        // Cancel only unfinished jobs: a finished job's token may be shared
        // with the caller (batch submissions share one), and cancelling it
        // after the fact would leak into the caller's token.
        for job in self.inner.jobs.lock().expect("service jobs").values() {
            if job.status() != JobStatus::Finished {
                job.cancel.cancel();
            }
        }
        let slots = std::mem::take(&mut *self.slots.lock().expect("service slots"));
        for slot in slots {
            let _ = slot.join();
        }
    }
}

impl Drop for SynthesisService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Handle to one submitted job: status polling, the live event stream, a
/// cancellation lever, and the eventual result.
pub struct JobHandle {
    state: Arc<JobState>,
    events: mpsc::Receiver<SynthesisEvent>,
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.state.id)
            .field("status", &self.state.status())
            .finish_non_exhaustive()
    }
}

impl JobHandle {
    /// The service-wide job id (what the socket protocol's verbs address).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The job's current lifecycle phase.
    pub fn status(&self) -> JobStatus {
        self.state.status()
    }

    /// The tenant this job was submitted under
    /// ([`SynthesisService::submit_with`]), if any.
    pub fn tenant(&self) -> Option<&str> {
        self.state.tenant.as_ref().map(|t| t.name.as_str())
    }

    /// Whether the result is available without blocking.
    pub fn is_finished(&self) -> bool {
        self.status() == JobStatus::Finished
    }

    /// The job's event stream. Iterating blocks until the next event and
    /// ends when the job finishes (the last event is
    /// [`SynthesisEvent::Finished`]); a job cancelled before it ran emits
    /// nothing.
    pub fn events(&self) -> &mpsc::Receiver<SynthesisEvent> {
        &self.events
    }

    /// A clone of the job's cancellation token.
    pub fn cancel_token(&self) -> CancelToken {
        self.state.cancel.clone()
    }

    /// Requests cooperative cancellation: a queued job never runs, a
    /// running one returns [`SynthesisError::Cancelled`] shortly after.
    pub fn cancel(&self) {
        self.state.cancel.cancel();
    }

    /// Blocks until the job finishes and returns (a clone of) its result.
    /// Callable repeatedly; the handle stays usable.
    pub fn await_result(&self) -> Result<SynthesisResult, SynthesisError> {
        self.state.await_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SynthesisOptions;
    use pimsyn_arch::Watts;
    use pimsyn_model::zoo;

    fn fast_request(seed: u64) -> SynthesisRequest {
        SynthesisRequest::new(
            zoo::alexnet_cifar(10),
            SynthesisOptions::fast(Watts(6.0)).with_seed(seed),
        )
    }

    #[test]
    fn submit_runs_and_streams_events() {
        let service = SynthesisService::new(ServiceConfig::default().with_job_slots(1));
        let job = service.submit(fast_request(3)).unwrap();
        let events: Vec<SynthesisEvent> = job.events().iter().collect();
        assert!(matches!(
            events.first(),
            Some(SynthesisEvent::JobStarted { .. })
        ));
        assert!(matches!(
            events.last(),
            Some(SynthesisEvent::Finished { .. })
        ));
        let result = job.await_result().unwrap();
        assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
        assert_eq!(job.status(), JobStatus::Finished);
        // Results stay fetchable, by handle and by id.
        assert!(job.await_result().is_ok());
        assert!(service.await_result_by_id(job.id()).unwrap().is_ok());
        assert_eq!(service.status_of(job.id()), Some(JobStatus::Finished));
        assert_eq!(service.status_of(999), None);
        service.shutdown();
    }

    #[test]
    fn queued_job_cancelled_before_running_never_runs() {
        let service = SynthesisService::new(ServiceConfig::default().with_job_slots(1));
        // Occupy the only slot with a job we keep alive until the victim is
        // cancelled, so the victim is guaranteed still queued.
        let blocker = service.submit(fast_request(3)).unwrap();
        let victim = service.submit(fast_request(4)).unwrap();
        victim.cancel();
        assert!(matches!(
            victim.await_result(),
            Err(SynthesisError::Cancelled)
        ));
        assert_eq!(victim.events().iter().count(), 0, "never ran, no events");
        assert!(blocker.await_result().is_ok());
        service.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let service = SynthesisService::new(ServiceConfig::default().with_job_slots(1));
        service.shutdown();
        assert_eq!(
            service.submit(fast_request(3)).unwrap_err(),
            ServiceError::ShutDown
        );
    }

    #[test]
    fn shutdown_cancels_queued_jobs() {
        let service = SynthesisService::new(ServiceConfig::default().with_job_slots(1));
        let running = service.submit(fast_request(3)).unwrap();
        let queued = service.submit(fast_request(4)).unwrap();
        service.shutdown();
        assert!(matches!(
            queued.await_result(),
            Err(SynthesisError::Cancelled)
        ));
        // The running job either completed or was cancelled, but the
        // service joined its slot either way.
        let _ = running.await_result();
    }

    #[test]
    fn finished_jobs_evict_past_the_retention_bound() {
        let service = SynthesisService::new(
            ServiceConfig::default()
                .with_job_slots(1)
                .with_finished_retention(2),
        );
        let handles: Vec<_> = (0..4)
            .map(|i| service.submit(fast_request(3 + i)).unwrap())
            .collect();
        for handle in &handles {
            assert!(handle.await_result().is_ok());
        }
        // With one serial slot, job 3 finishing implies job 2's completion
        // was recorded, which evicted job 0 (retention 2).
        assert_eq!(
            service.status_of(handles[0].id()),
            None,
            "oldest finished record must evict"
        );
        assert!(service.status_of(handles[3].id()).is_some());
        // Handles keep their own state: an evicted job's result is still
        // reachable through its handle.
        assert!(handles[0].await_result().is_ok());
        service.shutdown();
    }

    #[test]
    fn service_error_displays() {
        assert!(ServiceError::QueueFull { depth: 4 }
            .to_string()
            .contains("4"));
        assert!(ServiceError::ShutDown.to_string().contains("shut down"));
        assert_eq!(JobStatus::Queued.to_string(), "queued");
        assert_eq!(JobStatus::Running.to_string(), "running");
        assert_eq!(JobStatus::Finished.to_string(), "finished");
    }
}
