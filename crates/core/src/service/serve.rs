//! Serving a [`SynthesisService`] over TCP.
//!
//! [`serve`] runs an accept loop on a `std::net::TcpListener`: each
//! connection carries one protocol request ([`wire`](super::wire)) and is
//! handled on its own thread, so a blocking `result` fetch never starves
//! `status` polls or new submits. A `shutdown` verb stops the loop (and the
//! service) cleanly; a `drain` verb stops it *gracefully* — no new jobs,
//! every accepted one finishes first. [`ServeOptions`] adds an optional
//! shared-token authentication check (parity with `pimsyn worker-serve`).
//!
//! Submitted jobs are tee'd into a per-job event log, so the `events` verb
//! can replay a job's stream from the beginning at any time — including
//! after the job finished.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::Duration;

use crate::events::{EventSink, SynthesisEvent};
use crate::request::SynthesisRequest;
use crate::summary::SynthesisSummary;

use super::wire;
use super::{JobStatus, ServiceError, SynthesisService};

/// Buffers a job's events so late subscribers can replay the stream.
struct EventLog {
    events: Mutex<Vec<SynthesisEvent>>,
    grown: Condvar,
}

impl EventLog {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            events: Mutex::new(Vec::new()),
            grown: Condvar::new(),
        })
    }
}

impl EventSink for EventLog {
    fn emit(&self, event: SynthesisEvent) {
        self.events.lock().expect("event log").push(event);
        self.grown.notify_all();
    }
}

/// Daemon-side serving policy, beyond the service itself.
#[derive(Debug, Clone, Default)]
pub struct ServeOptions {
    /// Suppress per-connection log lines on stderr (the script-facing
    /// `listening on <addr>` line prints regardless).
    pub quiet: bool,
    /// Shared-secret authentication: when set, every request line must
    /// carry a matching `"token"` field; mismatches are answered with an
    /// `auth_failed` error reply. `None` (the default) serves openly —
    /// bind loopback or a trusted network.
    pub token: Option<String>,
}

impl ServeOptions {
    /// Open, chatty serving (the defaults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets stderr chattiness.
    #[must_use]
    pub fn with_quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Requires this shared secret on every request.
    #[must_use]
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }
}

struct ServerShared {
    service: Arc<SynthesisService>,
    configure: Box<dyn Fn(&mut SynthesisRequest) + Send + Sync>,
    logs: Mutex<std::collections::HashMap<u64, Arc<EventLog>>>,
    stop: AtomicBool,
    addr: SocketAddr,
    quiet: bool,
    token: Option<String>,
}

impl ServerShared {
    fn note(&self, message: &str) {
        if !self.quiet {
            eprintln!("pimsyn serve: {message}");
        }
    }
}

/// Runs `service` behind `listener` until a `shutdown` or `drain` verb
/// arrives, blocking the calling thread. `configure` overlays server-side
/// policy (evaluation backend, cache file) onto every submitted request —
/// socket clients describe *what* to synthesize, the daemon decides *how*.
///
/// On startup the actually-bound address — including the kernel-resolved
/// port when the listener was bound to port 0 — is printed to stderr as
/// `pimsyn serve: listening on <addr>` regardless of
/// [`quiet`](ServeOptions::quiet), so scripts and tests can bind port 0
/// instead of racing for free ports.
///
/// # Errors
///
/// Propagates listener-level IO errors (failure to read the local address
/// or accept connections); per-connection errors only drop that connection.
pub fn serve<F>(
    listener: TcpListener,
    service: Arc<SynthesisService>,
    configure: F,
    options: ServeOptions,
) -> std::io::Result<()>
where
    F: Fn(&mut SynthesisRequest) + Send + Sync + 'static,
{
    let addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        service,
        configure: Box::new(configure),
        logs: Mutex::new(std::collections::HashMap::new()),
        stop: AtomicBool::new(false),
        addr,
        quiet: options.quiet,
        token: options.token,
    });
    // Unconditional: the script-facing bound-address line (see above).
    eprintln!("pimsyn serve: listening on {addr}");
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        thread::spawn(move || handle_connection(&shared, stream));
    }
    shared.note("stopped");
    Ok(())
}

/// Handle to a server running on a background thread (in-process embeddings
/// and tests; the CLI's `pimsyn serve` blocks on [`serve`] directly).
#[derive(Debug)]
pub struct ServeHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<std::io::Result<()>>,
}

impl ServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to stop (a `shutdown` verb) and returns its
    /// exit result.
    ///
    /// # Panics
    ///
    /// Panics if the server thread itself panicked (a bug).
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("serve thread panicked")
    }
}

/// [`serve`] on a background thread, returning immediately with a handle.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn serve_in_background<F>(
    listener: TcpListener,
    service: Arc<SynthesisService>,
    configure: F,
    options: ServeOptions,
) -> std::io::Result<ServeHandle>
where
    F: Fn(&mut SynthesisRequest) + Send + Sync + 'static,
{
    let addr = listener.local_addr()?;
    let thread = thread::spawn(move || serve(listener, service, configure, options));
    Ok(ServeHandle { addr, thread })
}

fn reply(stream: &mut TcpStream, line: &str) {
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

fn handle_connection(shared: &Arc<ServerShared>, mut stream: TcpStream) {
    let mut line = String::new();
    {
        let Ok(peer) = stream.try_clone() else { return };
        let mut reader = BufReader::new(peer);
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => return, // peer hung up before sending anything
        }
    }
    let (verb, peer_token) = match wire::parse_verb(line.trim()) {
        Ok(parsed) => parsed,
        Err(e) => {
            let (code, detail) = e.reply_parts();
            reply(&mut stream, &wire::error_reply(code, &detail));
            return;
        }
    };
    if shared.token.is_some() && shared.token != peer_token {
        reply(
            &mut stream,
            &wire::error_reply("auth_failed", "bad or missing token"),
        );
        return;
    }
    match verb {
        wire::WireVerb::Submit(request) => {
            let mut request = *request;
            (shared.configure)(&mut request);
            let log = EventLog::new();
            match shared
                .service
                .submit_observed(request, Arc::clone(&log) as Arc<dyn EventSink>)
            {
                Ok(handle) => {
                    let id = handle.id();
                    let mut logs = shared.logs.lock().expect("server logs");
                    // Event logs live exactly as long as the service still
                    // knows the job: once a finished job is evicted past
                    // the retention bound, its (potentially large) event
                    // log goes too — a daemon must not grow without bound.
                    logs.retain(|id, _| shared.service.status_of(*id).is_some());
                    logs.insert(id, log);
                    drop(logs);
                    shared.note(&format!("job {id} submitted"));
                    if let Some(line) = fleet_summary(&shared.service) {
                        shared.note(&line);
                    }
                    reply(&mut stream, &wire::submit_reply(id));
                }
                Err(e @ ServiceError::QueueFull { .. }) => reply(
                    &mut stream,
                    &wire::error_reply("queue_full", &e.to_string()),
                ),
                Err(e @ ServiceError::QuotaExceeded { .. }) => reply(
                    &mut stream,
                    &wire::error_reply("quota_exceeded", &e.to_string()),
                ),
                Err(e @ ServiceError::Draining) => {
                    reply(&mut stream, &wire::error_reply("draining", &e.to_string()))
                }
                Err(e) => reply(&mut stream, &wire::error_reply("shut_down", &e.to_string())),
            }
        }
        wire::WireVerb::Status { id } => match shared.service.status_of(id) {
            Some(status) => reply(&mut stream, &wire::status_reply(id, &status.to_string())),
            None => reply(
                &mut stream,
                &wire::error_reply("unknown_job", &format!("no job with id {id}")),
            ),
        },
        wire::WireVerb::Cancel { id } => {
            if shared.service.cancel_by_id(id) {
                reply(&mut stream, &wire::cancel_reply(id));
            } else {
                reply(
                    &mut stream,
                    &wire::error_reply("unknown_job", &format!("no job with id {id}")),
                );
            }
        }
        wire::WireVerb::Result { id } => match shared.service.await_result_by_id(id) {
            Some(Ok(result)) => reply(
                &mut stream,
                &wire::result_reply(id, SynthesisSummary::from_result(&result).to_json()),
            ),
            Some(Err(e)) => reply(
                &mut stream,
                &wire::error_reply("job_failed", &e.to_string()),
            ),
            None => reply(
                &mut stream,
                &wire::error_reply("unknown_job", &format!("no job with id {id}")),
            ),
        },
        wire::WireVerb::Events { id } => {
            let log = shared.logs.lock().expect("server logs").get(&id).cloned();
            match log {
                Some(log) => stream_events(shared, &mut stream, id, &log),
                None => reply(
                    &mut stream,
                    &wire::error_reply("unknown_job", &format!("no job with id {id}")),
                ),
            }
        }
        wire::WireVerb::Drain => {
            shared.note("drain requested");
            reply(&mut stream, &wire::drain_reply());
            // Blocks this connection's thread (not the accept loop) until
            // every accepted job has finished: status/result/events
            // connections keep being served throughout the drain.
            shared.service.drain();
            shared.note("drained");
            if let Some(line) = fleet_summary(&shared.service) {
                shared.note(&line);
            }
            shared.stop.store(true, Ordering::SeqCst);
            crate::worker::poke_listener(shared.addr);
        }
        wire::WireVerb::Shutdown => {
            shared.note("shutdown requested");
            reply(&mut stream, &wire::shutdown_reply());
            shared.stop.store(true, Ordering::SeqCst);
            shared.service.shutdown();
            // Unblock the accept loop so `serve` can observe the stop flag.
            crate::worker::poke_listener(shared.addr);
        }
    }
}

/// One stderr line summarizing the daemon's remote worker fleet: endpoint
/// count, live/idle persistent connections, lifetime dials, and the last
/// negotiated protocol version per endpoint. `None` until a remote backend
/// has materialized the shared pool (inline/threads/subprocess daemons stay
/// silent — there is no fleet to summarize).
fn fleet_summary(service: &SynthesisService) -> Option<String> {
    let fleet = service.shared_resources().remote_fleet()?;
    let mut line = format!(
        "fleet: {} endpoints, {} live + {} idle connections, {} dials, {} requeued pieces",
        fleet.endpoints.len(),
        fleet.live_connections,
        fleet.idle_connections,
        fleet.connects,
        fleet.requeued_pieces
    );
    for endpoint in &fleet.endpoints {
        let proto = match endpoint.protocol {
            0 => "v?".to_string(),
            v => format!("v{v}"),
        };
        let origin = if endpoint.discovered {
            "registry"
        } else {
            "static"
        };
        let timing = if endpoint.batches > 0 {
            format!(
                ", {} jobs in {} batches avg {:.1} ms",
                endpoint.jobs,
                endpoint.batches,
                endpoint.batch_seconds / endpoint.batches as f64 * 1e3
            )
        } else {
            String::new()
        };
        let rate = match endpoint.throughput {
            Some(rate) => format!(", ~{rate:.0} cand/s"),
            None => String::new(),
        };
        line.push_str(&format!(
            "; {} [{origin} {proto}, {} live{timing}{rate}]",
            endpoint.addr, endpoint.live
        ));
    }
    Some(line)
}

/// Replays a job's event log from the start and follows it live until the
/// job finishes (a cancelled-while-queued job emits nothing; its finished
/// status alone ends the stream).
fn stream_events(shared: &Arc<ServerShared>, stream: &mut TcpStream, id: u64, log: &EventLog) {
    let mut cursor = 0usize;
    loop {
        let batch: Vec<SynthesisEvent> = {
            let mut events = log.events.lock().expect("event log");
            while events.len() == cursor
                && shared.service.status_of(id) != Some(JobStatus::Finished)
            {
                // A bounded wait so a job that finishes *without* a final
                // event (cancelled while queued) still ends the stream.
                let (guard, _) = log
                    .grown
                    .wait_timeout(events, Duration::from_millis(100))
                    .expect("event log");
                events = guard;
            }
            events[cursor..].to_vec()
        };
        cursor += batch.len();
        let mut finished = false;
        for event in &batch {
            finished |= matches!(event, SynthesisEvent::Finished { .. });
            let line = wire::event_reply(event);
            if writeln!(stream, "{line}").is_err() {
                return; // subscriber hung up
            }
        }
        let _ = stream.flush();
        if finished
            || (batch.is_empty() && shared.service.status_of(id) == Some(JobStatus::Finished))
        {
            reply(stream, &wire::events_done_reply());
            return;
        }
    }
}
