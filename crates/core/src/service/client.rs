//! A client for the served [`SynthesisService`] protocol.
//!
//! One [`ServiceClient`] addresses one daemon; every call opens a fresh
//! connection, sends one request line and reads the reply (the `events`
//! verb reads a stream). Replies come back as parsed [`JsonValue`]
//! documents — check the `ok` field; error replies carry a machine-readable
//! `code` and a human-readable `error`. Transport failures (daemon
//! unreachable, connection dropped) surface as `Err` strings.
//!
//! [`SynthesisService`]: super::SynthesisService

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use pimsyn_model::json::JsonValue;

use crate::request::SynthesisRequest;

use super::wire;

/// A thin TCP client speaking the versioned service protocol.
#[derive(Debug, Clone)]
pub struct ServiceClient {
    addr: String,
    token: Option<String>,
}

impl ServiceClient {
    /// A client addressing the daemon at `addr` (`host:port`).
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            token: None,
        }
    }

    /// Attaches the daemon's shared auth token to every request (daemons
    /// started with `--auth-token-file` reject token-less requests with an
    /// `auth_failed` error reply).
    #[must_use]
    pub fn with_token(mut self, token: impl Into<String>) -> Self {
        self.token = Some(token.into());
        self
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn token(&self) -> Option<&str> {
        self.token.as_deref()
    }

    fn connect(&self) -> Result<TcpStream, String> {
        TcpStream::connect(&self.addr).map_err(|e| format!("cannot connect to {}: {e}", self.addr))
    }

    /// Sends one request line and reads one reply line.
    fn call(&self, line: &str) -> Result<JsonValue, String> {
        let mut stream = self.connect()?;
        writeln!(stream, "{line}").map_err(|e| format!("cannot send request: {e}"))?;
        stream
            .flush()
            .map_err(|e| format!("cannot send request: {e}"))?;
        let mut reader = BufReader::new(stream);
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(n) if n > 0 => {}
            Ok(_) => return Err("daemon closed the connection without replying".to_string()),
            Err(e) => return Err(format!("cannot read reply: {e}")),
        }
        JsonValue::parse(reply.trim()).map_err(|e| format!("malformed reply: {e}"))
    }

    /// Submits a request; the reply carries the assigned job `id` on
    /// success.
    ///
    /// # Errors
    ///
    /// Transport failures, or request features the wire format cannot carry
    /// (design-space overrides, fixed duplication vectors).
    pub fn submit(&self, request: &SynthesisRequest) -> Result<JsonValue, String> {
        let payload = wire::encode_job_payload(request)?;
        self.call(&wire::submit_line(payload, self.token()))
    }

    /// Polls a job's lifecycle phase (`status` field: `queued` / `running`
    /// / `finished`).
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn status(&self, id: u64) -> Result<JsonValue, String> {
        self.call(&wire::request_line("status", Some(id), self.token()))
    }

    /// Blocks until the job finishes; the reply carries its `summary` (the
    /// same JSON document `pimsyn --output json` prints) or a `job_failed`
    /// error.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn result(&self, id: u64) -> Result<JsonValue, String> {
        self.call(&wire::request_line("result", Some(id), self.token()))
    }

    /// Requests cooperative cancellation of a job.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn cancel(&self, id: u64) -> Result<JsonValue, String> {
        self.call(&wire::request_line("cancel", Some(id), self.token()))
    }

    /// Asks the daemon to drain gracefully: stop accepting new jobs,
    /// finish every queued and running one, then exit with code 0. The
    /// acknowledgment returns immediately; the drain proceeds behind it.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn drain(&self) -> Result<JsonValue, String> {
        self.call(&wire::request_line("drain", None, self.token()))
    }

    /// Asks the daemon to shut down cleanly.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn shutdown(&self) -> Result<JsonValue, String> {
        self.call(&wire::request_line("shutdown", None, self.token()))
    }

    /// Streams a job's events from the beginning until it finishes,
    /// returning the event documents in order. A single error reply (e.g.
    /// `unknown_job`) comes back as the one-element stream.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn events(&self, id: u64) -> Result<Vec<JsonValue>, String> {
        let mut stream = self.connect()?;
        let line = wire::request_line("events", Some(id), self.token());
        writeln!(stream, "{line}").map_err(|e| format!("cannot send request: {e}"))?;
        stream
            .flush()
            .map_err(|e| format!("cannot send request: {e}"))?;
        let reader = BufReader::new(stream);
        let mut out = Vec::new();
        for line in reader.lines() {
            let line = line.map_err(|e| format!("cannot read event stream: {e}"))?;
            if line.trim().is_empty() {
                continue;
            }
            let doc =
                JsonValue::parse(line.trim()).map_err(|e| format!("malformed event line: {e}"))?;
            if doc.get("done").and_then(JsonValue::as_bool) == Some(true) {
                break;
            }
            out.push(doc);
        }
        Ok(out)
    }
}
