//! The worker registry: dynamic discovery of `pimsyn worker-serve`
//! daemons by a running `pimsyn serve` / `pimsyn gateway` process.
//!
//! Remote rosters were static before this module: the set of worker
//! daemons a service scored on was fixed at startup. The registry makes
//! the fleet elastic — a daemon started with `--announce HOST:PORT`
//! registers itself with the service's registry listener, keeps the
//! registration alive with heartbeats, and deregisters gracefully when it
//! drains. The service's remote backend unions the registry roster with
//! any statically configured endpoints before every batch, so capacity
//! scales up and down under live traffic without restarts.
//!
//! The protocol is JSON lines over one TCP connection per worker, with
//! its own strict version field (`pimsyn_registry`):
//!
//! ```text
//! > {"type":"announce","pimsyn_registry":1,"addr":"10.0.0.5:7801",
//!    "slots":8,"proto_max":2}                          (or +"token":"…")
//! < {"type":"registered","pimsyn_registry":1,"interval_s":2}
//! > {"type":"heartbeat","pimsyn_registry":1,"addr":"10.0.0.5:7801",
//!    "slots":8,"proto_max":2}                          (no reply)
//! > {"type":"drain","pimsyn_registry":1,"addr":"10.0.0.5:7801"}
//! < {"type":"bye","pimsyn_registry":1}
//! ```
//!
//! Liveness is staleness-based: a worker whose last announce/heartbeat is
//! older than [`EVICT_AFTER_MISSED`] × the heartbeat interval is evicted
//! lazily the next time the roster (or a snapshot) is read. A worker that
//! dies without draining simply stops heartbeating and ages out; one whose
//! heartbeat was merely delayed re-enters on its next beat (heartbeats
//! upsert, so recovery needs no re-announce). Eviction and churn never
//! change results: the remote backend already recomputes any chunk whose
//! connection fails inline, and scoring is pure.
//!
//! When the daemon was started with `--auth-token-file`, every registry
//! message must carry the same shared token; a mismatch is answered with
//! an `error` line and the connection is closed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pimsyn_dse::{DirectoryEntry, WorkerDirectory};
use pimsyn_model::json::JsonValue;

/// Registry wire-format version; bumped on any incompatible change.
pub const REGISTRY_PROTOCOL_VERSION: u32 = 1;

/// Default heartbeat interval assigned to announcing workers.
pub const DEFAULT_HEARTBEAT_INTERVAL: Duration = Duration::from_secs(2);

/// How many heartbeat intervals a worker may go silent before it is
/// evicted from the roster.
pub const EVICT_AFTER_MISSED: u32 = 3;

fn registry_line(kind: &str, fields: Vec<(String, JsonValue)>) -> String {
    let mut all = vec![
        ("type".to_string(), JsonValue::String(kind.to_string())),
        (
            "pimsyn_registry".into(),
            JsonValue::Number(REGISTRY_PROTOCOL_VERSION as f64),
        ),
    ];
    all.extend(fields);
    JsonValue::Object(all).to_string()
}

fn worker_fields(
    addr: &str,
    slots: usize,
    proto_max: u32,
    token: Option<&str>,
) -> Vec<(String, JsonValue)> {
    let mut fields = vec![
        ("addr".to_string(), JsonValue::String(addr.to_string())),
        ("slots".to_string(), JsonValue::Number(slots as f64)),
        ("proto_max".to_string(), JsonValue::Number(proto_max as f64)),
    ];
    if let Some(token) = token {
        fields.push(("token".into(), JsonValue::String(token.to_string())));
    }
    fields
}

/// The `announce` line a worker daemon registers itself with.
pub fn announce_line(addr: &str, slots: usize, proto_max: u32, token: Option<&str>) -> String {
    registry_line("announce", worker_fields(addr, slots, proto_max, token))
}

/// A periodic `heartbeat` line (same payload as an announce; heartbeats
/// upsert, so a worker evicted during a stall re-enters on its next beat).
pub fn heartbeat_line(addr: &str, slots: usize, proto_max: u32, token: Option<&str>) -> String {
    registry_line("heartbeat", worker_fields(addr, slots, proto_max, token))
}

/// The graceful-deregistration `drain` line.
pub fn drain_line(addr: &str, token: Option<&str>) -> String {
    let mut fields = vec![("addr".to_string(), JsonValue::String(addr.to_string()))];
    if let Some(token) = token {
        fields.push(("token".into(), JsonValue::String(token.to_string())));
    }
    registry_line("drain", fields)
}

/// The registry's acknowledgment of an accepted announce, assigning the
/// heartbeat interval.
pub fn registered_line(interval: Duration) -> String {
    registry_line(
        "registered",
        vec![(
            "interval_s".to_string(),
            JsonValue::Number(interval.as_secs().max(1) as f64),
        )],
    )
}

/// The registry's acknowledgment of a graceful drain.
pub fn registry_bye_line() -> String {
    registry_line("bye", Vec::new())
}

fn registry_error_line(detail: &str) -> String {
    JsonValue::Object(vec![
        ("type".into(), JsonValue::String("error".into())),
        ("detail".into(), JsonValue::String(detail.to_string())),
    ])
    .to_string()
}

/// One parsed worker→registry message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryRequest {
    /// First registration of a worker daemon.
    Announce {
        /// The dialable `host:port` the worker serves sessions on.
        addr: String,
        /// Session slots the worker advertises.
        slots: usize,
        /// Highest worker-protocol version the daemon speaks.
        proto_max: u32,
        /// Shared secret; must match the registry's token when it has one.
        token: Option<String>,
    },
    /// Liveness refresh (payload identical to an announce).
    Heartbeat {
        /// The worker's dialable address.
        addr: String,
        /// Session slots the worker advertises.
        slots: usize,
        /// Highest worker-protocol version the daemon speaks.
        proto_max: u32,
        /// Shared secret; same rule as for announce.
        token: Option<String>,
    },
    /// Graceful deregistration.
    Drain {
        /// The worker's dialable address.
        addr: String,
        /// Shared secret; same rule as for announce.
        token: Option<String>,
    },
}

/// Parses one worker→registry line, enforcing the registry protocol
/// version and that `addr` is a well-formed socket address.
///
/// # Errors
///
/// A human-readable message (suitable for an error-line reply) for
/// malformed JSON, unknown types, version mismatches or a bogus address.
pub fn parse_registry_request(line: &str) -> Result<RegistryRequest, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed registry message: {e}"))?;
    let kind = match doc.get("type").and_then(JsonValue::as_str) {
        Some(kind @ ("announce" | "heartbeat" | "drain")) => kind,
        Some(other) => return Err(format!("unknown registry message type `{other}`")),
        None => return Err("missing registry message `type`".to_string()),
    };
    match doc.get("pimsyn_registry").and_then(JsonValue::as_usize) {
        Some(v) if v == REGISTRY_PROTOCOL_VERSION as usize => {}
        Some(v) => {
            return Err(format!(
                "registry protocol version mismatch: peer speaks {v}, this build speaks {REGISTRY_PROTOCOL_VERSION}"
            ))
        }
        None => return Err("registry message lacks a `pimsyn_registry` version".to_string()),
    }
    let addr = doc
        .get("addr")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "missing worker `addr`".to_string())?
        .to_string();
    if addr.parse::<SocketAddr>().is_err() {
        return Err(format!("worker addr `{addr}` is not a socket address"));
    }
    let token = doc
        .get("token")
        .and_then(JsonValue::as_str)
        .map(str::to_string);
    if kind == "drain" {
        return Ok(RegistryRequest::Drain { addr, token });
    }
    let slots = doc
        .get("slots")
        .and_then(JsonValue::as_usize)
        .ok_or_else(|| "missing worker `slots`".to_string())?
        .max(1);
    let proto_max = doc
        .get("proto_max")
        .and_then(JsonValue::as_usize)
        .unwrap_or(1)
        .max(1) as u32;
    Ok(match kind {
        "announce" => RegistryRequest::Announce {
            addr,
            slots,
            proto_max,
            token,
        },
        _ => RegistryRequest::Heartbeat {
            addr,
            slots,
            proto_max,
            token,
        },
    })
}

/// One parsed registry→worker reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryReply {
    /// The announce was accepted; heartbeat at this interval.
    Registered {
        /// The assigned heartbeat interval.
        interval: Duration,
    },
    /// A drain was acknowledged.
    Bye,
}

/// Parses one registry→worker reply line (an `error` line's detail is
/// surfaced as the error message).
///
/// # Errors
///
/// A human-readable message for malformed or rejected replies.
pub fn parse_registry_reply(line: &str) -> Result<RegistryReply, String> {
    let doc = JsonValue::parse(line).map_err(|e| format!("malformed registry reply: {e}"))?;
    match doc.get("type").and_then(JsonValue::as_str) {
        Some("registered") => {
            let secs = doc
                .get("interval_s")
                .and_then(JsonValue::as_usize)
                .ok_or_else(|| "registered reply lacks `interval_s`".to_string())?;
            Ok(RegistryReply::Registered {
                interval: Duration::from_secs(secs.max(1) as u64),
            })
        }
        Some("bye") => Ok(RegistryReply::Bye),
        Some("error") => {
            let detail = doc
                .get("detail")
                .and_then(JsonValue::as_str)
                .unwrap_or("unspecified");
            Err(format!("registry rejected the request: {detail}"))
        }
        _ => Err(format!("expected a registry reply, got: {line}")),
    }
}

/// One registered worker daemon as seen by observability surfaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryWorker {
    /// The worker's dialable `host:port`.
    pub addr: String,
    /// Session slots the worker advertised.
    pub slots: usize,
    /// Highest worker-protocol version the daemon speaks.
    pub proto_max: u32,
}

/// A point-in-time view of the registry for metrics and summaries.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RegistrySnapshot {
    /// Currently registered (non-stale) workers, sorted by address.
    pub workers: Vec<RegistryWorker>,
    /// Announces accepted over the registry's lifetime.
    pub announces: usize,
    /// Heartbeats received over the registry's lifetime.
    pub heartbeats: usize,
    /// Workers evicted for missed heartbeats over the lifetime.
    pub evictions: usize,
    /// Graceful drains over the lifetime.
    pub drains: usize,
}

struct WorkerEntry {
    slots: usize,
    proto_max: u32,
    last_seen: Instant,
    /// Registration generation: assigned (from a registry-wide counter,
    /// starting at 1) whenever the address enters the roster *fresh* —
    /// first announce, or any announce/heartbeat after an eviction or
    /// drain. Refreshes keep the epoch, so the remote pool can tell "same
    /// worker, still alive" from "address re-announced by a restarted
    /// worker" and drop stale throughput estimates for the latter.
    epoch: u64,
}

/// The live roster of announced worker daemons, with staleness-based
/// eviction. Shared between the registry's TCP listener (which feeds it)
/// and the remote backend's [`WorkerDirectory`] hook (which reads it).
pub struct WorkerRegistry {
    interval: Duration,
    token: Option<String>,
    quiet: bool,
    entries: Mutex<HashMap<String, WorkerEntry>>,
    next_epoch: AtomicU64,
    announces: AtomicUsize,
    heartbeats: AtomicUsize,
    evictions: AtomicUsize,
    drains: AtomicUsize,
}

impl std::fmt::Debug for WorkerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerRegistry")
            .field("interval", &self.interval)
            .field("workers", &self.entries.lock().expect("registry").len())
            .field("announces", &self.announces.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .field("drains", &self.drains.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl WorkerRegistry {
    /// A registry assigning `interval` heartbeats (clamped to ≥ 1 s on the
    /// wire) and requiring `token` on every message when set. `quiet`
    /// suppresses the per-event stderr notes.
    pub fn new(interval: Duration, token: Option<String>, quiet: bool) -> Arc<Self> {
        Arc::new(Self {
            interval,
            token,
            quiet,
            entries: Mutex::new(HashMap::new()),
            next_epoch: AtomicU64::new(1),
            announces: AtomicUsize::new(0),
            heartbeats: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            drains: AtomicUsize::new(0),
        })
    }

    /// The heartbeat interval this registry assigns to workers.
    pub fn interval(&self) -> Duration {
        self.interval
    }

    fn note(&self, message: &str) {
        if !self.quiet {
            eprintln!("pimsyn worker-registry: {message}");
        }
    }

    /// Checks a message's token against the registry's.
    fn authorized(&self, token: Option<&str>) -> bool {
        self.token.is_none() || self.token.as_deref() == token
    }

    /// How long a worker may go silent before eviction.
    fn staleness_bound(&self) -> Duration {
        self.interval * EVICT_AFTER_MISSED
    }

    /// Drops entries whose last announce/heartbeat is too old. Called
    /// lazily from every read path, so a worker that dies without draining
    /// ages out without any background reaper thread.
    fn evict_stale(&self, entries: &mut HashMap<String, WorkerEntry>) {
        let bound = self.staleness_bound();
        let stale: Vec<String> = entries
            .iter()
            .filter(|(_, e)| e.last_seen.elapsed() > bound)
            .map(|(addr, _)| addr.clone())
            .collect();
        for addr in stale {
            entries.remove(&addr);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.note(&format!("evicted {addr} (missed heartbeats)"));
        }
    }

    /// Upserts a worker entry. A *fresh* insert (first sighting, or any
    /// sighting after an eviction/drain removed the address) draws a new
    /// registration epoch; a refresh keeps the existing one. Stale entries
    /// are evicted first so a worker that died and re-announced before any
    /// roster read gets a fresh epoch, not its zombie predecessor's.
    /// Returns whether the entry was fresh.
    fn upsert(&self, addr: &str, slots: usize, proto_max: u32) -> bool {
        let mut entries = self.entries.lock().expect("registry");
        self.evict_stale(&mut entries);
        let now = Instant::now();
        match entries.get_mut(addr) {
            Some(entry) => {
                entry.slots = slots;
                entry.proto_max = proto_max;
                entry.last_seen = now;
                false
            }
            None => {
                entries.insert(
                    addr.to_string(),
                    WorkerEntry {
                        slots,
                        proto_max,
                        last_seen: now,
                        epoch: self.next_epoch.fetch_add(1, Ordering::Relaxed),
                    },
                );
                true
            }
        }
    }

    /// Registers (or refreshes) a worker.
    pub fn announce(&self, addr: &str, slots: usize, proto_max: u32) {
        let fresh = self.upsert(addr, slots, proto_max);
        self.announces.fetch_add(1, Ordering::Relaxed);
        if fresh {
            self.note(&format!(
                "registered {addr} ({slots} slots, protocol ≤ {proto_max})"
            ));
        }
    }

    /// Refreshes a worker's liveness; upserts, so a worker evicted during
    /// a stall re-enters on its next beat.
    pub fn heartbeat(&self, addr: &str, slots: usize, proto_max: u32) {
        let returned = self.upsert(addr, slots, proto_max);
        self.heartbeats.fetch_add(1, Ordering::Relaxed);
        if returned {
            self.note(&format!("{addr} returned on a heartbeat"));
        }
    }

    /// Gracefully removes a worker (it asked to drain).
    pub fn drain(&self, addr: &str) {
        let removed = self
            .entries
            .lock()
            .expect("registry")
            .remove(addr)
            .is_some();
        if removed {
            self.drains.fetch_add(1, Ordering::Relaxed);
            self.note(&format!("drained {addr}"));
        }
    }

    /// A point-in-time view for metrics and summaries (evicts stale
    /// entries first).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut entries = self.entries.lock().expect("registry");
        self.evict_stale(&mut entries);
        let mut workers: Vec<RegistryWorker> = entries
            .iter()
            .map(|(addr, e)| RegistryWorker {
                addr: addr.clone(),
                slots: e.slots,
                proto_max: e.proto_max,
            })
            .collect();
        workers.sort_by(|a, b| a.addr.cmp(&b.addr));
        RegistrySnapshot {
            workers,
            announces: self.announces.load(Ordering::Relaxed),
            heartbeats: self.heartbeats.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            drains: self.drains.load(Ordering::Relaxed),
        }
    }
}

impl WorkerDirectory for WorkerRegistry {
    /// The current non-stale roster, sorted for a deterministic endpoint
    /// order.
    fn roster(&self) -> Vec<String> {
        let mut entries = self.entries.lock().expect("registry");
        self.evict_stale(&mut entries);
        let mut roster: Vec<String> = entries.keys().cloned().collect();
        roster.sort();
        roster
    }

    /// The roster with the scheduling hints the remote pool's adaptive
    /// chunker consumes: advertised slots (seeding multi-session dialing
    /// before the first welcome) and the registration epoch (so a worker
    /// that restarted between two roster refreshes starts from a cold
    /// throughput estimate).
    fn entries(&self) -> Vec<DirectoryEntry> {
        let mut entries = self.entries.lock().expect("registry");
        self.evict_stale(&mut entries);
        let mut rows: Vec<DirectoryEntry> = entries
            .iter()
            .map(|(addr, e)| DirectoryEntry {
                addr: addr.clone(),
                slots: e.slots.max(1),
                epoch: e.epoch,
            })
            .collect();
        rows.sort_by(|a, b| a.addr.cmp(&b.addr));
        rows
    }
}

/// Serves the registry's TCP listener, blocking the calling thread: one
/// connection per announcing worker, JSON lines, closed on drain, EOF,
/// error or heartbeat silence. Runs until the process exits — the
/// registry lives exactly as long as the serve/gateway daemon that owns
/// it.
///
/// On startup the actually-bound address is printed to stderr as
/// `pimsyn worker-registry: listening on <addr>` regardless of the
/// registry's quiet flag, so scripts can bind port 0.
///
/// # Errors
///
/// Propagates listener-level IO errors; per-connection errors only drop
/// that connection.
pub fn serve_registry(listener: TcpListener, registry: Arc<WorkerRegistry>) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    eprintln!("pimsyn worker-registry: listening on {addr}");
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || handle_registry_connection(&registry, stream));
    }
    Ok(())
}

/// [`serve_registry`] on a detached background thread, returning the
/// bound address.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn serve_registry_in_background(
    listener: TcpListener,
    registry: Arc<WorkerRegistry>,
) -> std::io::Result<SocketAddr> {
    let addr = listener.local_addr()?;
    std::thread::spawn(move || serve_registry(listener, registry));
    Ok(addr)
}

fn handle_registry_connection(registry: &WorkerRegistry, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    // A connection silent for longer than the eviction bound is useless —
    // its worker is already aging out — so bound every read by it (plus
    // slack for scheduling jitter).
    let _ = stream.set_read_timeout(Some(registry.staleness_bound() + Duration::from_secs(1)));
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(peer);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {}
            _ => return, // EOF or silence: the entry ages out naturally
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match parse_registry_request(line.trim()) {
            Ok(request) => request,
            Err(detail) => {
                let _ = writeln!(stream, "{}", registry_error_line(&detail));
                let _ = stream.flush();
                return;
            }
        };
        let token = match &request {
            RegistryRequest::Announce { token, .. }
            | RegistryRequest::Heartbeat { token, .. }
            | RegistryRequest::Drain { token, .. } => token.as_deref(),
        };
        if !registry.authorized(token) {
            registry.note("rejected a registration: bad or missing auth token");
            let _ = writeln!(
                stream,
                "{}",
                registry_error_line("authentication failed: bad or missing token")
            );
            let _ = stream.flush();
            return;
        }
        match request {
            RegistryRequest::Announce {
                addr,
                slots,
                proto_max,
                ..
            } => {
                registry.announce(&addr, slots, proto_max);
                if writeln!(stream, "{}", registered_line(registry.interval()))
                    .and_then(|()| stream.flush())
                    .is_err()
                {
                    return;
                }
            }
            RegistryRequest::Heartbeat {
                addr,
                slots,
                proto_max,
                ..
            } => registry.heartbeat(&addr, slots, proto_max),
            RegistryRequest::Drain { addr, .. } => {
                registry.drain(&addr);
                let _ = writeln!(stream, "{}", registry_bye_line());
                let _ = stream.flush();
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lines_round_trip() {
        let line = announce_line("127.0.0.1:7801", 8, 2, Some("s3cret"));
        assert_eq!(
            parse_registry_request(&line).unwrap(),
            RegistryRequest::Announce {
                addr: "127.0.0.1:7801".to_string(),
                slots: 8,
                proto_max: 2,
                token: Some("s3cret".to_string()),
            }
        );
        let line = heartbeat_line("127.0.0.1:7801", 8, 2, None);
        assert_eq!(
            parse_registry_request(&line).unwrap(),
            RegistryRequest::Heartbeat {
                addr: "127.0.0.1:7801".to_string(),
                slots: 8,
                proto_max: 2,
                token: None,
            }
        );
        let line = drain_line("127.0.0.1:7801", None);
        assert_eq!(
            parse_registry_request(&line).unwrap(),
            RegistryRequest::Drain {
                addr: "127.0.0.1:7801".to_string(),
                token: None,
            }
        );
        assert_eq!(
            parse_registry_reply(&registered_line(Duration::from_secs(2))).unwrap(),
            RegistryReply::Registered {
                interval: Duration::from_secs(2)
            }
        );
        assert_eq!(
            parse_registry_reply(&registry_bye_line()).unwrap(),
            RegistryReply::Bye
        );
    }

    #[test]
    fn registry_rejects_mismatches_and_garbage() {
        let err = parse_registry_request(r#"{"type":"announce","pimsyn_registry":9,"addr":"a:1"}"#)
            .unwrap_err();
        assert!(err.contains("version mismatch"), "{err}");
        assert!(parse_registry_request("not json").is_err());
        assert!(parse_registry_request(r#"{"type":"dance","pimsyn_registry":1}"#).is_err());
        // A bogus address is refused at the door.
        let err = parse_registry_request(
            r#"{"type":"announce","pimsyn_registry":1,"addr":"nonsense","slots":1}"#,
        )
        .unwrap_err();
        assert!(err.contains("socket address"), "{err}");
        // Error replies surface their detail.
        let err = parse_registry_reply(&registry_error_line("authentication failed")).unwrap_err();
        assert!(err.contains("authentication failed"), "{err}");
    }

    #[test]
    fn roster_tracks_announce_drain_and_eviction() {
        // A zero-ish interval makes staleness immediate for the test.
        let registry = WorkerRegistry::new(Duration::from_millis(1), None, true);
        registry.announce("127.0.0.1:7801", 4, 2);
        registry.announce("127.0.0.1:7802", 2, 1);
        assert_eq!(
            registry.roster(),
            vec!["127.0.0.1:7801".to_string(), "127.0.0.1:7802".to_string()]
        );
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.announces, 2);
        assert_eq!(snapshot.workers.len(), 2);
        assert_eq!(snapshot.workers[0].slots, 4);
        assert_eq!(snapshot.workers[0].proto_max, 2);

        // Graceful drain removes immediately.
        registry.drain("127.0.0.1:7801");
        assert_eq!(registry.roster(), vec!["127.0.0.1:7802".to_string()]);
        assert_eq!(registry.snapshot().drains, 1);

        // Silence past the staleness bound evicts the other.
        std::thread::sleep(Duration::from_millis(10));
        assert!(registry.roster().is_empty());
        assert_eq!(registry.snapshot().evictions, 1);

        // A late heartbeat brings an evicted worker back (upsert).
        registry.heartbeat("127.0.0.1:7802", 2, 1);
        assert_eq!(registry.roster(), vec!["127.0.0.1:7802".to_string()]);
    }

    #[test]
    fn epochs_survive_refreshes_and_change_on_reentry() {
        let registry = WorkerRegistry::new(Duration::from_secs(60), None, true);
        registry.announce("127.0.0.1:7801", 4, 2);
        let first = registry.entries();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].slots, 4);
        assert!(first[0].epoch >= 1, "fresh epochs start at 1");

        // Refreshes (re-announce, heartbeat) keep the epoch: same worker,
        // still alive — even when the advertised slots change.
        registry.announce("127.0.0.1:7801", 8, 2);
        registry.heartbeat("127.0.0.1:7801", 8, 2);
        let refreshed = registry.entries();
        assert_eq!(refreshed[0].epoch, first[0].epoch);
        assert_eq!(refreshed[0].slots, 8);

        // Leaving (drain here; eviction behaves the same) and coming back
        // draws a new epoch: the remote pool must treat the address as a
        // restarted worker and drop its throughput estimate.
        registry.drain("127.0.0.1:7801");
        registry.announce("127.0.0.1:7801", 4, 2);
        let reentered = registry.entries();
        assert!(
            reentered[0].epoch > first[0].epoch,
            "re-entry must draw a fresh epoch ({} vs {})",
            reentered[0].epoch,
            first[0].epoch
        );
    }

    #[test]
    fn stale_entries_are_evicted_before_an_upsert_refreshes_them() {
        // A worker that died (heartbeats lapsed) and re-announced before
        // any roster read must come back with a *new* epoch — the upsert
        // path evicts the zombie first instead of refreshing it.
        let registry = WorkerRegistry::new(Duration::from_millis(1), None, true);
        registry.announce("127.0.0.1:7801", 4, 2);
        let first = registry.entries()[0].epoch;
        std::thread::sleep(Duration::from_millis(10));
        registry.announce("127.0.0.1:7801", 4, 2);
        let second = registry.entries()[0].epoch;
        assert!(second > first, "{second} vs {first}");
        assert_eq!(registry.snapshot().evictions, 1);
    }

    #[test]
    fn registry_listener_serves_the_wire_protocol() {
        let registry =
            WorkerRegistry::new(Duration::from_secs(2), Some("s3cret".to_string()), true);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = serve_registry_in_background(listener, Arc::clone(&registry)).unwrap();

        // Announce with the right token registers and assigns the interval.
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(
            stream,
            "{}",
            announce_line("127.0.0.1:7801", 4, 2, Some("s3cret"))
        )
        .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            parse_registry_reply(line.trim()).unwrap(),
            RegistryReply::Registered {
                interval: Duration::from_secs(2)
            }
        );
        assert_eq!(registry.roster(), vec!["127.0.0.1:7801".to_string()]);

        // Drain deregisters and is acknowledged with a bye.
        writeln!(stream, "{}", drain_line("127.0.0.1:7801", Some("s3cret"))).unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(
            parse_registry_reply(line.trim()).unwrap(),
            RegistryReply::Bye
        );
        assert!(registry.roster().is_empty());

        // A bad token is rejected with an error line.
        let mut stream = TcpStream::connect(addr).unwrap();
        writeln!(
            stream,
            "{}",
            announce_line("127.0.0.1:7809", 1, 1, Some("wrong"))
        )
        .unwrap();
        let mut reader = BufReader::new(stream);
        line.clear();
        reader.read_line(&mut line).unwrap();
        let err = parse_registry_reply(line.trim()).unwrap_err();
        assert!(err.contains("authentication failed"), "{err}");
        assert!(registry.roster().is_empty());
    }
}
