//! Pluggable queue-scheduling policies for the [`SynthesisService`].
//!
//! The service historically drained one global FIFO. Multi-tenant front
//! ends (the HTTP gateway) need *fairness*: one tenant flooding the queue
//! must not starve everyone else. This module abstracts "which waiting job
//! runs next" behind the [`Scheduler`] trait with two implementations:
//!
//! - [`SchedulingPolicy::Fifo`] — the original single global queue,
//!   byte-for-byte the old behavior (and the default).
//! - [`SchedulingPolicy::WeightedFair`] — deficit round-robin across
//!   tenants: each tenant owns a FIFO of its jobs, the rotation grants each
//!   tenant a credit quantum equal to its weight, and every dispatched job
//!   costs one credit. Two tenants flooding the queue therefore get slots
//!   in proportion to their weights; a single tenant degenerates to plain
//!   FIFO, so single-tenant results stay bit-identical.
//!
//! Scheduling only reorders *dispatch*; each job's synthesis is
//! deterministic in isolation, so policy never changes any job's result.
//! Per-tenant `max_running` caps are enforced here too: a tenant at its cap
//! is rotated past without consuming credit until a slot frees up.
//!
//! [`SynthesisService`]: super::SynthesisService

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use super::JobState;

/// Which policy orders waiting jobs (see
/// [`ServiceConfig::scheduling`](super::ServiceConfig::scheduling)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum SchedulingPolicy {
    /// One global first-in-first-out queue (the default; the service's
    /// original behavior).
    #[default]
    Fifo,
    /// Weighted deficit round-robin across tenants: tenants with queued
    /// jobs are served in rotation, each receiving a credit quantum equal
    /// to its [`TenantPolicy::weight`](super::TenantPolicy::weight) per
    /// visit, one credit per dispatched job. Jobs submitted without a
    /// tenant share one anonymous weight-1 lane.
    WeightedFair,
}

/// A queue of waiting jobs plus the policy choosing the next one.
///
/// All methods are called under the service's queue mutex, so
/// implementations need no interior locking.
pub(super) trait Scheduler: Send {
    /// Adds a job to the wait queue.
    fn enqueue(&mut self, job: Arc<JobState>);
    /// Removes and returns the next dispatchable job. `running` maps tenant
    /// key → jobs currently occupying slots; tenants at their `max_running`
    /// cap are not dispatched. `None` when nothing can run right now.
    fn dequeue(&mut self, running: &HashMap<String, usize>) -> Option<Arc<JobState>>;
    /// Removes and returns every waiting job (shutdown path).
    fn drain_all(&mut self) -> Vec<Arc<JobState>>;
    /// Waiting jobs, total.
    fn len(&self) -> usize;
    /// Waiting jobs of one tenant (`max_queued` quota checks).
    fn queued_for(&self, tenant: &str) -> usize;
    /// `(tenant key, waiting jobs)` for every tenant with queued work
    /// (introspection/metrics).
    fn tenant_counts(&self) -> Vec<(String, usize)>;
}

/// Whether a job's tenant is under its `max_running` cap.
fn dispatchable(job: &JobState, running: &HashMap<String, usize>) -> bool {
    match job.max_running() {
        Some(cap) => running.get(job.tenant_key()).copied().unwrap_or(0) < cap,
        None => true,
    }
}

pub(super) fn scheduler_for(policy: SchedulingPolicy) -> Box<dyn Scheduler> {
    match policy {
        SchedulingPolicy::Fifo => Box::new(FifoScheduler::default()),
        SchedulingPolicy::WeightedFair => Box::new(DrrScheduler::default()),
    }
}

/// The original single global queue. Dispatch skips past head-of-line jobs
/// whose tenant is at its running cap (order is otherwise untouched), so
/// quotas hold even under FIFO.
#[derive(Default)]
struct FifoScheduler {
    queue: VecDeque<Arc<JobState>>,
}

impl Scheduler for FifoScheduler {
    fn enqueue(&mut self, job: Arc<JobState>) {
        self.queue.push_back(job);
    }

    fn dequeue(&mut self, running: &HashMap<String, usize>) -> Option<Arc<JobState>> {
        let pos = self
            .queue
            .iter()
            .position(|job| dispatchable(job, running))?;
        self.queue.remove(pos)
    }

    fn drain_all(&mut self) -> Vec<Arc<JobState>> {
        self.queue.drain(..).collect()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn queued_for(&self, tenant: &str) -> usize {
        self.queue
            .iter()
            .filter(|job| job.tenant_key() == tenant)
            .count()
    }

    fn tenant_counts(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for job in &self.queue {
            let key = job.tenant_key();
            match counts.iter_mut().find(|(name, _)| name == key) {
                Some((_, n)) => *n += 1,
                None => counts.push((key.to_string(), 1)),
            }
        }
        counts
    }
}

/// Weighted deficit round-robin: one FIFO per tenant, tenants served in
/// rotation, `weight` dispatches per visit.
#[derive(Default)]
struct DrrScheduler {
    /// Per-tenant FIFO queues; entries are removed when they empty.
    queues: HashMap<String, VecDeque<Arc<JobState>>>,
    /// Rotation order over tenants with queued jobs (front = next served).
    active: VecDeque<String>,
    /// Unspent dispatch credits of the tenant currently at the front.
    credit: HashMap<String, u64>,
}

impl Scheduler for DrrScheduler {
    fn enqueue(&mut self, job: Arc<JobState>) {
        let tenant = job.tenant_key().to_string();
        let queue = self.queues.entry(tenant.clone()).or_default();
        if queue.is_empty() {
            // Empty queues are pruned on dequeue, so empty here means the
            // tenant just became active: it joins the back of the rotation.
            self.active.push_back(tenant);
        }
        queue.push_back(job);
    }

    fn dequeue(&mut self, running: &HashMap<String, usize>) -> Option<Arc<JobState>> {
        // At most one full rotation: if every active tenant is at its
        // running cap, nothing can dispatch right now.
        let mut skipped = 0usize;
        while skipped < self.active.len() {
            let tenant = self.active.front().cloned()?;
            let queue = self
                .queues
                .get_mut(&tenant)
                .expect("active tenant has a queue");
            let front = queue.front().expect("active tenant queue is non-empty");
            if !dispatchable(front, running) {
                // Rotate past a capped tenant without consuming credit.
                self.active.rotate_left(1);
                skipped += 1;
                continue;
            }
            let credit = self.credit.entry(tenant.clone()).or_insert(0);
            if *credit == 0 {
                // A fresh visit grants one quantum: the tenant's weight.
                *credit = u64::from(front.weight());
            }
            *credit -= 1;
            let exhausted = *credit == 0;
            let job = queue.pop_front().expect("front existed");
            if queue.is_empty() {
                self.queues.remove(&tenant);
                self.credit.remove(&tenant);
                self.active.pop_front();
            } else if exhausted {
                self.active.rotate_left(1);
            }
            return Some(job);
        }
        None
    }

    fn drain_all(&mut self) -> Vec<Arc<JobState>> {
        let mut all = Vec::new();
        for tenant in std::mem::take(&mut self.active) {
            if let Some(mut queue) = self.queues.remove(&tenant) {
                all.extend(queue.drain(..));
            }
        }
        self.credit.clear();
        all
    }

    fn len(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    fn queued_for(&self, tenant: &str) -> usize {
        self.queues.get(tenant).map_or(0, VecDeque::len)
    }

    fn tenant_counts(&self) -> Vec<(String, usize)> {
        self.active
            .iter()
            .map(|tenant| (tenant.clone(), self.queues[tenant].len()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::super::{JobPhase, TenantPolicy};
    use super::*;
    use pimsyn_dse::CancelToken;
    use std::sync::{Condvar, Mutex};

    fn job(id: u64, tenant: Option<TenantPolicy>) -> Arc<JobState> {
        Arc::new(JobState {
            id,
            event_tag: id as usize,
            cancel: CancelToken::default(),
            tenant,
            work: Mutex::new(None),
            phase: Mutex::new(JobPhase::Queued),
            done: Condvar::new(),
        })
    }

    fn drain_ids(sched: &mut dyn Scheduler, running: &HashMap<String, usize>) -> Vec<u64> {
        let mut order = Vec::new();
        while let Some(job) = sched.dequeue(running) {
            order.push(job.id);
        }
        order
    }

    #[test]
    fn fifo_dispatches_in_submission_order() {
        let mut sched = scheduler_for(SchedulingPolicy::Fifo);
        for id in 0..5 {
            sched.enqueue(job(id, None));
        }
        assert_eq!(sched.len(), 5);
        assert_eq!(
            drain_ids(sched.as_mut(), &HashMap::new()),
            vec![0, 1, 2, 3, 4]
        );
        assert_eq!(sched.len(), 0);
    }

    #[test]
    fn weighted_fair_single_tenant_degenerates_to_fifo() {
        let mut sched = scheduler_for(SchedulingPolicy::WeightedFair);
        let tenant = TenantPolicy::new("solo").with_weight(3);
        for id in 0..6 {
            sched.enqueue(job(id, Some(tenant.clone())));
        }
        assert_eq!(
            drain_ids(sched.as_mut(), &HashMap::new()),
            vec![0, 1, 2, 3, 4, 5]
        );
    }

    #[test]
    fn weighted_fair_interleaves_tenants_in_weight_proportion() {
        let mut sched = scheduler_for(SchedulingPolicy::WeightedFair);
        let a = TenantPolicy::new("a").with_weight(3);
        let b = TenantPolicy::new("b").with_weight(1);
        // a gets even ids, b odd ids; both flood the queue.
        for i in 0..6u64 {
            sched.enqueue(job(2 * i, Some(a.clone())));
            sched.enqueue(job(2 * i + 1, Some(b.clone())));
        }
        // Rotation: a serves 3, b serves 1, repeatedly — a 3:1 dispatch
        // ratio while both have work, then b drains its tail.
        assert_eq!(
            drain_ids(sched.as_mut(), &HashMap::new()),
            vec![0, 2, 4, 1, 6, 8, 10, 3, 5, 7, 9, 11]
        );
    }

    #[test]
    fn max_running_caps_defer_dispatch_without_losing_jobs() {
        let mut sched = scheduler_for(SchedulingPolicy::WeightedFair);
        let capped = TenantPolicy::new("capped").with_max_running(1);
        sched.enqueue(job(0, Some(capped.clone())));
        sched.enqueue(job(1, Some(TenantPolicy::new("free"))));
        let mut running = HashMap::new();
        running.insert("capped".to_string(), 1usize);
        // The capped tenant is rotated past; the free tenant dispatches.
        assert_eq!(sched.dequeue(&running).expect("free job").id, 1);
        assert!(
            sched.dequeue(&running).is_none(),
            "capped tenant must not dispatch at its running cap"
        );
        assert_eq!(sched.len(), 1, "the capped job stays queued");
        running.clear();
        assert_eq!(sched.dequeue(&running).expect("now dispatchable").id, 0);
    }

    #[test]
    fn fifo_skips_capped_head_of_line() {
        let mut sched = scheduler_for(SchedulingPolicy::Fifo);
        let capped = TenantPolicy::new("capped").with_max_running(1);
        sched.enqueue(job(0, Some(capped)));
        sched.enqueue(job(1, None));
        let mut running = HashMap::new();
        running.insert("capped".to_string(), 1usize);
        assert_eq!(sched.dequeue(&running).expect("anonymous job").id, 1);
        assert!(sched.dequeue(&running).is_none());
    }

    #[test]
    fn drain_all_empties_every_lane() {
        for policy in [SchedulingPolicy::Fifo, SchedulingPolicy::WeightedFair] {
            let mut sched = scheduler_for(policy);
            sched.enqueue(job(0, Some(TenantPolicy::new("a"))));
            sched.enqueue(job(1, Some(TenantPolicy::new("b"))));
            sched.enqueue(job(2, None));
            let mut drained: Vec<u64> = sched.drain_all().iter().map(|j| j.id).collect();
            drained.sort_unstable();
            assert_eq!(drained, vec![0, 1, 2], "{policy:?}");
            assert_eq!(sched.len(), 0, "{policy:?}");
            assert!(sched.tenant_counts().is_empty(), "{policy:?}");
        }
    }

    #[test]
    fn tenant_counts_reflect_queued_work() {
        let mut sched = scheduler_for(SchedulingPolicy::WeightedFair);
        sched.enqueue(job(0, Some(TenantPolicy::new("a"))));
        sched.enqueue(job(1, Some(TenantPolicy::new("a"))));
        sched.enqueue(job(2, Some(TenantPolicy::new("b"))));
        assert_eq!(sched.queued_for("a"), 2);
        assert_eq!(sched.queued_for("b"), 1);
        assert_eq!(sched.queued_for("nope"), 0);
        let counts = sched.tenant_counts();
        assert!(counts.contains(&("a".to_string(), 2)));
        assert!(counts.contains(&("b".to_string(), 1)));
    }
}
