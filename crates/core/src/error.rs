use std::error::Error;
use std::fmt;

use pimsyn_dse::DseError;
use pimsyn_sim::SimError;

/// Errors from the end-to-end synthesis flow.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// Exploration failed (most commonly: the power constraint cannot host
    /// one copy of the network's weights at any design point).
    Dse(DseError),
    /// Final cycle-accurate validation failed.
    Sim(SimError),
    /// An option combination is invalid (e.g. zero validation images).
    InvalidOptions {
        /// What was wrong.
        detail: String,
    },
    /// The job was cancelled through its
    /// [`CancelToken`](crate::CancelToken).
    Cancelled,
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Dse(e) => write!(f, "design-space exploration failed: {e}"),
            SynthesisError::Sim(e) => write!(f, "cycle-accurate validation failed: {e}"),
            SynthesisError::InvalidOptions { detail } => {
                write!(f, "invalid synthesis options: {detail}")
            }
            SynthesisError::Cancelled => write!(f, "synthesis cancelled"),
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Dse(e) => Some(e),
            SynthesisError::Sim(e) => Some(e),
            SynthesisError::InvalidOptions { .. } => None,
            SynthesisError::Cancelled => None,
        }
    }
}

impl From<DseError> for SynthesisError {
    fn from(e: DseError) -> Self {
        match e {
            // Cancellation is a caller decision, not an exploration failure.
            DseError::Cancelled => SynthesisError::Cancelled,
            other => SynthesisError::Dse(other),
        }
    }
}

impl From<SimError> for SynthesisError {
    fn from(e: SimError) -> Self {
        SynthesisError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SynthesisError>();
    }

    #[test]
    fn source_is_chained() {
        let e = SynthesisError::from(DseError::NoFeasibleSolution);
        assert!(e.source().is_some());
    }
}
