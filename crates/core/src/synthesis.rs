//! The end-to-end synthesis flow (Fig. 3): CNN + power constraint in,
//! architecture + dataflow schedule + evaluation out.

use std::time::Duration;

use pimsyn_arch::Architecture;
use pimsyn_dse::{CancelToken, PointResult, StopReason};
use pimsyn_ir::Dataflow;
use pimsyn_model::Model;
use pimsyn_sim::SimReport;

use crate::engine::SynthesisEngine;
use crate::error::SynthesisError;
use crate::events::NullSink;
use crate::options::SynthesisOptions;
use crate::report;
use crate::request::SynthesisRequest;

/// The PIMSYN synthesizer: turn-key transformation of CNN applications into
/// PIM accelerator implementations.
///
/// # Example
///
/// ```no_run
/// use pimsyn::{Synthesizer, SynthesisOptions};
/// use pimsyn_arch::Watts;
/// use pimsyn_model::zoo;
///
/// # fn main() -> Result<(), pimsyn::SynthesisError> {
/// let synth = Synthesizer::new(SynthesisOptions::new(Watts(50.0)));
/// let result = synth.synthesize(&zoo::vgg16())?;
/// println!("{}", result.report_text());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    options: SynthesisOptions,
}

impl Synthesizer {
    /// Creates a synthesizer with the given options.
    pub fn new(options: SynthesisOptions) -> Self {
        Self { options }
    }

    /// The configured options.
    pub fn options(&self) -> &SynthesisOptions {
        &self.options
    }

    /// Runs the full four-stage synthesis (weight duplication, dataflow
    /// compilation, macro partitioning, components allocation) with the
    /// embedded DSE flow, returning the power-efficiency-optimal
    /// implementation found.
    ///
    /// This is the one-call facade over a single-job
    /// [`SynthesisEngine`](crate::SynthesisEngine) run with no observer; use
    /// the engine directly for progress events, cancellation, budgets, or
    /// batches.
    ///
    /// # Errors
    ///
    /// - [`SynthesisError::InvalidOptions`] for inconsistent options.
    /// - [`SynthesisError::Dse`] when no feasible accelerator exists under
    ///   the power constraint.
    /// - [`SynthesisError::Sim`] if the optional cycle validation fails.
    pub fn synthesize(&self, model: &Model) -> Result<SynthesisResult, SynthesisError> {
        let request = SynthesisRequest::new(model.clone(), self.options.clone());
        SynthesisEngine::new().run(&request, &NullSink, &CancelToken::new())
    }
}

/// The complete output of one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The input model (kept for reporting).
    pub model: Model,
    /// The synthesized accelerator.
    pub architecture: Architecture,
    /// The compiled dataflow schedule.
    pub dataflow: Dataflow,
    /// Winning weight-duplication factors, one per layer.
    pub wt_dup: Vec<usize>,
    /// Analytic evaluation (what the DSE optimized).
    pub analytic: SimReport,
    /// Cycle-accurate evaluation, when requested.
    pub cycle: Option<SimReport>,
    /// Candidate architectures evaluated during exploration.
    pub evaluations: usize,
    /// Per-design-point exploration history.
    pub history: Vec<PointResult>,
    /// Whether the search ran to completion or stopped on a time /
    /// evaluation budget.
    pub stop_reason: StopReason,
    /// Wall-clock synthesis time.
    pub elapsed: Duration,
}

impl SynthesisResult {
    /// The most accurate available evaluation: cycle-accurate when present,
    /// analytic otherwise.
    pub fn best_report(&self) -> &SimReport {
        self.cycle.as_ref().unwrap_or(&self.analytic)
    }

    /// Peak power efficiency of the winner in TOPS/W at the model's
    /// precision (the paper's Table IV metric).
    pub fn peak_efficiency(&self) -> f64 {
        let p = self.model.precision();
        self.architecture
            .peak_power_efficiency(p.activation_bits(), p.weight_bits())
    }

    /// Renders the full human-readable synthesis report.
    pub fn report_text(&self) -> String {
        report::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Effort;
    use pimsyn_arch::Watts;
    use pimsyn_model::zoo;

    fn fast_options() -> SynthesisOptions {
        SynthesisOptions::fast(Watts(6.0)).with_seed(3)
    }

    #[test]
    fn synthesize_cifar_alexnet_end_to_end() {
        let model = zoo::alexnet_cifar(10);
        let result = Synthesizer::new(fast_options()).synthesize(&model).unwrap();
        assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
        assert!(result.peak_efficiency() > 0.0);
        assert_eq!(result.wt_dup.len(), model.weight_layer_count());
        result.architecture.validate(&model).unwrap();
        assert!(result.evaluations > 0);
        assert!(!result.history.is_empty());
    }

    #[test]
    fn cycle_validation_produces_second_report() {
        let model = zoo::alexnet_cifar(10);
        let opts = fast_options().with_cycle_validation(2);
        let result = Synthesizer::new(opts).synthesize(&model).unwrap();
        let cyc = result.cycle.as_ref().expect("cycle report");
        assert!(cyc.latency.value() > 0.0);
        assert!(std::ptr::eq(result.best_report(), cyc));
    }

    #[test]
    fn zero_cycle_images_rejected() {
        let model = zoo::alexnet_cifar(10);
        let mut opts = fast_options();
        opts.cycle_validation = true;
        opts.cycle_images = 0;
        assert!(matches!(
            Synthesizer::new(opts).synthesize(&model),
            Err(SynthesisError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn report_text_is_complete() {
        let model = zoo::alexnet_cifar(10);
        let result = Synthesizer::new(fast_options()).synthesize(&model).unwrap();
        let text = result.report_text();
        assert!(text.contains("alexnet-cifar"));
        assert!(text.contains("TOPS/W"));
        assert!(text.contains("WtDup"));
        assert!(text.contains("power breakdown"));
    }

    #[test]
    fn effort_presets_differ_in_evaluations() {
        // The two presets must lower to genuinely different search scales:
        // Paper traverses a strictly larger design space with strictly
        // larger metaheuristic budgets (Table I: 36 outer points, 30 SA
        // candidates; the fast preset is a reduced smoke configuration).
        let fast = SynthesisOptions::fast(Watts(6.0)).to_dse_config();
        let paper = SynthesisOptions::new(Watts(6.0)).to_dse_config();
        assert!(
            paper.space.outer_len() > fast.space.outer_len(),
            "paper space ({}) must exceed fast space ({})",
            paper.space.outer_len(),
            fast.space.outer_len()
        );
        assert_eq!(paper.space.outer_len(), 36);
        assert!(paper.space.dacs().len() > fast.space.dacs().len());
        assert!(paper.sa.candidates > fast.sa.candidates);
        assert!(paper.sa.iterations > fast.sa.iterations);
        assert!(paper.ea.population > fast.ea.population);
        assert!(paper.ea.generations > fast.ea.generations);

        // Both lower coherently: the explicit effort field is what decides
        // the space, and shared knobs (power, seed) survive the lowering.
        for (opts, cfg) in [
            (SynthesisOptions::fast(Watts(6.0)), &fast),
            (SynthesisOptions::new(Watts(6.0)), &paper),
        ] {
            assert_eq!(cfg.total_power, opts.power_budget);
            assert_eq!(cfg.seed, opts.seed);
            assert_eq!(cfg.ea.allow_sharing, opts.allow_macro_sharing);
        }

        // And the larger preset really evaluates more candidates end to
        // end, on a space small enough to keep the test quick: pin a
        // single-point space and scale only the metaheuristic budgets.
        let model = zoo::alexnet_cifar(10);
        let space = pimsyn_dse::DesignSpace::single(
            0.3,
            pimsyn_arch::CrossbarConfig::new(128, 2).unwrap(),
            1,
        );
        let small = Synthesizer::new(fast_options().with_design_space(space.clone()))
            .synthesize(&model)
            .unwrap();
        let mut larger_opts = fast_options().with_design_space(space);
        larger_opts.effort = Effort::Paper;
        larger_opts.max_evaluations = Some(small.evaluations * 3);
        let larger = Synthesizer::new(larger_opts).synthesize(&model).unwrap();
        assert!(
            larger.evaluations > small.evaluations,
            "paper-effort run ({}) must evaluate more than fast run ({})",
            larger.evaluations,
            small.evaluations
        );
    }
}
