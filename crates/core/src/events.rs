//! Typed synthesis progress events and the sinks that receive them.
//!
//! A [`SynthesisEngine`](crate::SynthesisEngine) job reports its progress as
//! a stream of [`SynthesisEvent`]s delivered through an [`EventSink`]. Three
//! sink implementations are provided: [`ChannelSink`] (an `mpsc` sender, the
//! natural fit for driving a UI from another thread), [`CallbackSink`] (a
//! closure), and [`CollectingSink`] (an in-memory buffer for tests and
//! post-hoc inspection). [`NullSink`] discards everything.

use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Duration;

use pimsyn_dse::{DesignPoint, EvaluatorStats, ExploreEvent, StopReason, SynthesisStage};

/// Progress events emitted while a synthesis job runs.
///
/// Stage and design-point events mirror the paper's Fig. 3 flow as executed
/// at each outer design point of Algorithm 1; `point_index` identifies the
/// design point and, with parallel exploration enabled, events from
/// different points interleave. In a batch, `job` identifies the request
/// (its index in the submitted slice).
#[derive(Debug, Clone, PartialEq)]
pub enum SynthesisEvent {
    /// A batch job began executing.
    JobStarted {
        /// Index of the request in the batch (0 for single jobs).
        job: usize,
        /// Human-readable job label (request label or model name).
        label: String,
    },
    /// One of the four paper stages began at a design point.
    StageStarted {
        /// Index of the request in the batch (0 for single jobs).
        job: usize,
        /// Outer design-point index.
        point_index: usize,
        /// Which stage.
        stage: SynthesisStage,
    },
    /// One of the four paper stages completed at a design point.
    StageFinished {
        /// Index of the request in the batch (0 for single jobs).
        job: usize,
        /// Outer design-point index.
        point_index: usize,
        /// Which stage.
        stage: SynthesisStage,
    },
    /// An outer design point was fully explored.
    DesignPointEvaluated {
        /// Index of the request in the batch (0 for single jobs).
        job: usize,
        /// The design point.
        point: DesignPoint,
        /// Outer design-point index.
        point_index: usize,
        /// Best objective fitness found there (TOPS/W by default, 1/EDP
        /// under [`Objective::EnergyDelayProduct`](crate::Objective)); 0
        /// when infeasible.
        best_efficiency: f64,
        /// Candidate architectures evaluated at this point.
        evaluations: usize,
    },
    /// The job improved on its best fitness so far. "Best" is per job:
    /// fitness values from different jobs in a batch are not comparable.
    ImprovedBest {
        /// Index of the request in the batch (0 for single jobs).
        job: usize,
        /// Design point where the improvement happened.
        point_index: usize,
        /// The new best fitness.
        fitness: f64,
    },
    /// Cumulative candidate-evaluator throughput counters (scored
    /// candidates, unique evaluations, cache hits), snapshotted as each
    /// design point finishes. Stats are job-wide and monotonic; the last
    /// snapshot before [`Finished`](Self::Finished) summarizes the job.
    EvaluatorStats {
        /// Index of the request in the batch (0 for single jobs).
        job: usize,
        /// Outer design-point index whose completion triggered the snapshot.
        point_index: usize,
        /// Job-wide evaluator counters at snapshot time.
        stats: EvaluatorStats,
    },
    /// The job finished (the terminal event of every job).
    Finished {
        /// Index of the request in the batch (0 for single jobs).
        job: usize,
        /// Best efficiency achieved (TOPS/W), `None` on failure.
        efficiency: Option<f64>,
        /// Total candidate evaluations performed.
        evaluations: usize,
        /// Why the search ended (`None` when the job failed outright).
        stop_reason: Option<StopReason>,
        /// Wall-clock job duration.
        elapsed: Duration,
        /// Error rendering, when the job failed.
        error: Option<String>,
    },
}

/// Receives [`SynthesisEvent`]s from a running job.
///
/// Sinks are shared across the exploration's worker threads, so
/// implementations must be `Send + Sync` and should be cheap: events are
/// delivered synchronously from the synthesis hot path.
pub trait EventSink: Send + Sync {
    /// Called once per event, possibly from several threads at once.
    fn emit(&self, event: SynthesisEvent);
}

/// Discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: SynthesisEvent) {}
}

/// Forwards events into an [`mpsc`] channel. Send errors (receiver hung up)
/// are ignored: a consumer that stopped listening must not kill the job.
#[derive(Debug, Clone)]
pub struct ChannelSink {
    tx: mpsc::Sender<SynthesisEvent>,
}

impl ChannelSink {
    /// A sink wrapping the given sender.
    pub fn new(tx: mpsc::Sender<SynthesisEvent>) -> Self {
        Self { tx }
    }

    /// Convenience: a connected sink/receiver pair.
    pub fn pair() -> (Self, mpsc::Receiver<SynthesisEvent>) {
        let (tx, rx) = mpsc::channel();
        (Self::new(tx), rx)
    }
}

impl EventSink for ChannelSink {
    fn emit(&self, event: SynthesisEvent) {
        let _ = self.tx.send(event);
    }
}

/// Invokes a closure for every event.
#[derive(Debug, Clone)]
pub struct CallbackSink<F: Fn(SynthesisEvent) + Send + Sync>(pub F);

impl<F: Fn(SynthesisEvent) + Send + Sync> EventSink for CallbackSink<F> {
    fn emit(&self, event: SynthesisEvent) {
        (self.0)(event)
    }
}

/// Buffers every event in memory; useful in tests and for post-hoc
/// inspection of a finished job.
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<SynthesisEvent>>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the events received so far.
    pub fn snapshot(&self) -> Vec<SynthesisEvent> {
        self.events.lock().expect("event buffer poisoned").clone()
    }

    /// Drains and returns all buffered events.
    pub fn take(&self) -> Vec<SynthesisEvent> {
        std::mem::take(&mut *self.events.lock().expect("event buffer poisoned"))
    }
}

impl EventSink for CollectingSink {
    fn emit(&self, event: SynthesisEvent) {
        self.events
            .lock()
            .expect("event buffer poisoned")
            .push(event);
    }
}

/// Lifts a DSE-layer exploration event into the synthesis-level stream,
/// stamping it with the job it belongs to.
pub(crate) fn lift(job: usize, event: ExploreEvent) -> SynthesisEvent {
    match event {
        ExploreEvent::StageStarted { point_index, stage } => SynthesisEvent::StageStarted {
            job,
            point_index,
            stage,
        },
        ExploreEvent::StageFinished { point_index, stage } => SynthesisEvent::StageFinished {
            job,
            point_index,
            stage,
        },
        ExploreEvent::DesignPointEvaluated {
            point,
            point_index,
            best_efficiency,
            evaluations,
        } => SynthesisEvent::DesignPointEvaluated {
            job,
            point,
            point_index,
            best_efficiency,
            evaluations,
        },
        ExploreEvent::ImprovedBest {
            point_index,
            fitness,
        } => SynthesisEvent::ImprovedBest {
            job,
            point_index,
            fitness,
        },
        ExploreEvent::EvaluatorStats { point_index, stats } => SynthesisEvent::EvaluatorStats {
            job,
            point_index,
            stats,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SynthesisEvent {
        SynthesisEvent::ImprovedBest {
            job: 0,
            point_index: 3,
            fitness: 1.5,
        }
    }

    #[test]
    fn channel_sink_delivers() {
        let (sink, rx) = ChannelSink::pair();
        sink.emit(sample());
        assert_eq!(rx.recv().unwrap(), sample());
    }

    #[test]
    fn channel_sink_survives_hangup() {
        let (sink, rx) = ChannelSink::pair();
        drop(rx);
        sink.emit(sample()); // must not panic
    }

    #[test]
    fn collecting_sink_buffers_in_order() {
        let sink = CollectingSink::new();
        sink.emit(sample());
        sink.emit(SynthesisEvent::JobStarted {
            job: 0,
            label: "x".into(),
        });
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], sample());
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn callback_sink_invokes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        let sink = CallbackSink(|_ev| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        sink.emit(sample());
        sink.emit(sample());
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn sinks_are_object_safe() {
        let sinks: Vec<Box<dyn EventSink>> =
            vec![Box::new(NullSink), Box::new(CollectingSink::new())];
        for s in &sinks {
            s.emit(sample());
        }
    }
}
