//! **PIMSYN**: full-stack synthesis of processing-in-memory CNN accelerators
//! — a Rust reproduction of [Li et al., DATE 2024].
//!
//! Given a trained, quantified CNN and a total power constraint, PIMSYN
//! performs a one-click transformation into a crossbar-based PIM
//! accelerator: it decides per-layer weight duplication (SA-filtered),
//! compiles the network into a PIM IR dataflow, partitions layers across
//! macros (EA-explored, with inter-layer macro/ADC sharing) and allocates
//! peripheral components (closed-form water-filling), all inside a design-
//! space-exploration loop over `RatioRram`, crossbar size/resolution and DAC
//! resolution that maximizes power efficiency.
//!
//! # Quickstart
//!
//! One blocking call ([`Synthesizer`]):
//!
//! ```
//! use pimsyn::{Synthesizer, SynthesisOptions};
//! use pimsyn_arch::Watts;
//! use pimsyn_model::zoo;
//!
//! # fn main() -> Result<(), pimsyn::SynthesisError> {
//! let model = zoo::alexnet_cifar(10);
//! let options = SynthesisOptions::fast(Watts(6.0)); // reduced search effort
//! let result = Synthesizer::new(options).synthesize(&model)?;
//! assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! # Jobs, events, cancellation, batches
//!
//! [`SynthesisEngine`] runs the same flow as observable, cancellable,
//! budgeted *jobs*:
//!
//! ```
//! use std::time::Duration;
//! use pimsyn::{SynthesisEngine, SynthesisEvent, SynthesisOptions, SynthesisRequest};
//! use pimsyn_arch::Watts;
//! use pimsyn_model::zoo;
//!
//! let engine = SynthesisEngine::new();
//!
//! // A spawned job streams progress events and can be cancelled.
//! let job = engine.spawn(SynthesisRequest::new(
//!     zoo::alexnet_cifar(10),
//!     SynthesisOptions::fast(Watts(6.0))
//!         .with_seed(3)
//!         .with_time_budget(Duration::from_secs(60)),
//! ));
//! for event in job.events() {
//!     if let SynthesisEvent::ImprovedBest { fitness, .. } = event {
//!         eprintln!("new best: {fitness:.3} TOPS/W");
//!     }
//! }
//! let result = job.join().expect("feasible at 6 W");
//!
//! // A batch fans several requests over a worker pool; one infeasible
//! // job does not fail the rest.
//! let batch = engine.synthesize_batch(&[
//!     SynthesisRequest::new(zoo::alexnet_cifar(10), SynthesisOptions::fast(Watts(6.0))),
//!     SynthesisRequest::new(zoo::alexnet_cifar(10), SynthesisOptions::fast(Watts(0.01))),
//! ]);
//! assert!(batch[0].is_ok());
//! assert!(batch[1].is_err());
//! # let _ = result;
//! ```
//!
//! # Service mode
//!
//! For sweep-shaped workloads (power sweeps, model zoos, objective grids),
//! [`SynthesisService`] runs as a long-lived daemon: a bounded FIFO job
//! queue drained by concurrent job slots, whose jobs share one subprocess
//! worker pool (leased and re-sessioned per job) and one warm
//! evaluation-cache snapshot store. [`serve`] exposes it over a versioned
//! JSON-lines TCP protocol (`pimsyn serve` / `pimsyn submit|status|result|
//! cancel|shutdown` on the CLI); [`ServiceClient`] speaks that protocol.
//! [`SynthesisEngine::synthesize_batch`] is a thin client of a private
//! service, so batches get the shared resources for free — transparently:
//! results stay bit-identical to standalone runs.
//!
//! The companion crates expose the substrates: [`pimsyn_model`] (CNNs),
//! [`pimsyn_arch`] (hardware), [`pimsyn_ir`] (dataflow IR), [`pimsyn_sim`]
//! (simulators) and [`pimsyn_dse`] (search).
//!
//! [Li et al., DATE 2024]: https://arxiv.org/abs/2402.18114

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod error;
mod events;
mod options;
mod report;
mod request;
mod service;
mod summary;
mod synthesis;
mod worker;

pub use engine::{SynthesisEngine, SynthesisJob};
pub use error::SynthesisError;
pub use events::{CallbackSink, ChannelSink, CollectingSink, EventSink, NullSink, SynthesisEvent};
pub use options::{Effort, SynthesisOptions};
pub use request::SynthesisRequest;
pub use service::{
    encode_job_payload, event_to_json, parse_job_payload, serve, serve_in_background,
    serve_registry, serve_registry_in_background, JobHandle, JobStatus, RegistrySnapshot,
    RegistryWorker, SchedulingPolicy, ServeHandle, ServeOptions, ServiceClient, ServiceConfig,
    ServiceError, ServiceSnapshot, SynthesisService, TenantCounts, TenantPolicy, WorkerRegistry,
    DEFAULT_HEARTBEAT_INTERVAL, REGISTRY_PROTOCOL_VERSION, SERVICE_PROTOCOL_VERSION,
};
pub use summary::SynthesisSummary;
pub use synthesis::{SynthesisResult, Synthesizer};
pub use worker::{
    run_worker, run_worker_stdio, run_worker_with, serve_workers, serve_workers_in_background,
    stop_worker_server, FaultInjection, WorkerServeConfig, WorkerServeHandle,
};

// Re-export the vocabulary types users need at the API boundary.
pub use pimsyn_arch::{Architecture, MacroMode, Watts};
pub use pimsyn_dse::{
    parse_remote_roster, read_token_file, BackendKind, BackendStats, CancelToken, DesignPoint,
    DesignSpace, EvalBackendConfig, EvalCacheConfig, EvaluatorStats, Objective,
    RemoteEndpointStatus, RemoteFleetSnapshot, SharedEvalResources, StopReason, SynthesisStage,
    WorkerDirectory, WtDupStrategy,
};
pub use pimsyn_sim::SimReport;
