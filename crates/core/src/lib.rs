//! **PIMSYN**: full-stack synthesis of processing-in-memory CNN accelerators
//! — a Rust reproduction of [Li et al., DATE 2024].
//!
//! Given a trained, quantified CNN and a total power constraint, PIMSYN
//! performs a one-click transformation into a crossbar-based PIM
//! accelerator: it decides per-layer weight duplication (SA-filtered),
//! compiles the network into a PIM IR dataflow, partitions layers across
//! macros (EA-explored, with inter-layer macro/ADC sharing) and allocates
//! peripheral components (closed-form water-filling), all inside a design-
//! space-exploration loop over `RatioRram`, crossbar size/resolution and DAC
//! resolution that maximizes power efficiency.
//!
//! # Quickstart
//!
//! ```
//! use pimsyn::{Synthesizer, SynthesisOptions};
//! use pimsyn_arch::Watts;
//! use pimsyn_model::zoo;
//!
//! # fn main() -> Result<(), pimsyn::SynthesisError> {
//! let model = zoo::alexnet_cifar(10);
//! let options = SynthesisOptions::fast(Watts(6.0)); // reduced search effort
//! let result = Synthesizer::new(options).synthesize(&model)?;
//! assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! The companion crates expose the substrates: [`pimsyn_model`] (CNNs),
//! [`pimsyn_arch`] (hardware), [`pimsyn_ir`] (dataflow IR), [`pimsyn_sim`]
//! (simulators) and [`pimsyn_dse`] (search).
//!
//! [Li et al., DATE 2024]: https://arxiv.org/abs/2402.18114

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod options;
mod report;
mod synthesis;

pub use error::SynthesisError;
pub use options::{Effort, SynthesisOptions};
pub use synthesis::{SynthesisResult, Synthesizer};

// Re-export the vocabulary types users need at the API boundary.
pub use pimsyn_arch::{Architecture, MacroMode, Watts};
pub use pimsyn_dse::{DesignSpace, Objective, WtDupStrategy};
pub use pimsyn_sim::SimReport;
