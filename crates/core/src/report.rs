//! Human-readable synthesis reports: the architecture implementation,
//! dataflow summary, power breakdown and evaluation metrics in one text
//! block (what the PIMSYN CLI would print after a run).

use std::fmt::Write as _;

use crate::synthesis::SynthesisResult;

/// Renders the full report for a synthesis result.
pub(crate) fn render(result: &SynthesisResult) -> String {
    let mut out = String::new();
    let arch = &result.architecture;
    let stats = result.model.stats();

    let _ = writeln!(out, "=== PIMSYN synthesis report ===");
    let _ = writeln!(
        out,
        "model: {} ({} weight layers, {:.2} GMACs, {} quantization)",
        result.model.name(),
        stats.weight_layer_count,
        stats.total_macs as f64 / 1e9,
        result.model.precision(),
    );
    let _ = writeln!(
        out,
        "power constraint: {:.2} W | explored {} candidates in {:.2} s",
        arch.power_budget.value(),
        result.evaluations,
        result.elapsed.as_secs_f64(),
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "--- architecture ---");
    let _ = writeln!(
        out,
        "crossbar {}x{} @{}b cell | dac {}b | RatioRram {:.1} | {} macro mode",
        arch.crossbar.size(),
        arch.crossbar.size(),
        arch.crossbar.cell_bits(),
        arch.dac.bits(),
        arch.ratio_rram,
        arch.macro_mode,
    );
    let _ = writeln!(
        out,
        "{} macros on a {}x{} mesh | {} crossbars | area {:.2} mm^2",
        arch.macro_count(),
        arch.noc().mesh_dim(),
        arch.noc().mesh_dim(),
        arch.crossbar_count(),
        arch.area_breakdown().total().0,
    );
    let _ = writeln!(out, "{}", arch.power_breakdown());

    let _ = writeln!(out, "--- per-layer implementation ---");
    let _ = writeln!(
        out,
        "{:<14} {:>6} {:>6} {:>7} {:>6} {:>6} {:>8}",
        "layer", "WtDup", "xbars", "macros", "share", "adc", "adc bits"
    );
    for lh in &arch.layers {
        let share = match lh.shares_macros_with {
            Some(j) => format!("L{j}"),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>6} {:>7} {:>6} {:>6} {:>8}",
            lh.name,
            lh.wt_dup,
            lh.crossbars(),
            lh.macros,
            share,
            lh.components.adc,
            lh.adc.bits(),
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "--- evaluation ---");
    let _ = writeln!(
        out,
        "peak efficiency: {:.3} TOPS/W",
        result.peak_efficiency()
    );
    let _ = writeln!(out, "analytic : {}", result.analytic);
    if let Some(cycle) = &result.cycle {
        let _ = writeln!(out, "cycle    : {cycle}");
    }
    out
}
