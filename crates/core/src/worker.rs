//! The `pimsyn --worker` evaluation server.
//!
//! A worker is a child process of the
//! [`SubprocessBackend`](pimsyn_dse::SubprocessBackend): it reads the
//! versioned JSON-lines protocol of [`pimsyn_dse::backend::protocol`] from
//! stdin — an `init` message fixing a run's model, hardware, power, macro
//! mode and objective, then a stream of `score` requests — and answers each
//! request with the candidate's score on stdout. Scoring runs the same
//! [`EvalCore`] pipeline as in-process evaluation, so worker scores are
//! bit-identical to inline ones (floats cross the pipe as `f64::to_bits`
//! hex).
//!
//! A worker process outlives any single run: a later `init` message
//! *re-opens the session* — the model/hardware/power are re-ingested, a
//! fresh `ready` line acknowledges them, and scoring continues under the
//! new run's parameters. This is what lets a long-lived
//! [`WorkerPool`](pimsyn_dse::WorkerPool) recycle processes across
//! synthesis jobs instead of spawning a fresh complement per run.
//!
//! The worker exits when its stdin closes (the parent dropped it) and on
//! the first malformed message (after writing a diagnostic `error` line the
//! parent surfaces); the parent recomputes any in-flight work inline, so a
//! dying worker never changes results.
//!
//! Sessions are also reachable over TCP: [`serve_workers`] runs the same
//! loop behind `pimsyn worker-serve`, one session per accepted connection,
//! guarded by the protocol's transport handshake (version check plus an
//! optional shared auth token). The
//! [`RemoteBackend`](pimsyn_dse::RemoteBackend) is the dialing side.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use crate::service::registry;

use pimsyn_arch::{hardware_config, CrossbarConfig, DacConfig, Watts};
use pimsyn_dse::backend::protocol::{
    bye_line, decode_score_batch, encode_score_reply, error_line, parse_bye, parse_handshake,
    peer_max_version, read_frame, ready_line, ready_line_with_max, stop_line, welcome_line,
    write_frame, ScoreResponse, TcpHandshake, WorkerInit, WorkerRequest, FRAME_ERROR,
    FRAME_SCORE_BATCH, FRAME_SCORE_REPLY, NO_FREE_SLOTS, PROTOCOL_VERSION, PROTOCOL_VERSION_MAX,
};
use pimsyn_dse::{CandidateScore, DesignPoint, EvalCacheConfig, EvalCore, MacAllocGene};
use pimsyn_ir::Dataflow;
use pimsyn_model::onnx;

/// Dataflow-identity of a score request: `(xb_size, cell_bits, dac_bits,
/// wt_dup)` — everything `Dataflow::compile` consumes besides the model.
type DataflowKey = (usize, u32, u32, Vec<usize>);

/// One inbound protocol unit, distinguished by peeking the first byte: a
/// JSON line starts with `{`, a v2 binary frame with a frame-kind byte
/// (which never collides with `{`).
enum Incoming {
    /// The transport closed cleanly.
    Eof,
    /// One JSON protocol line (init, or a v1 score request).
    Line(String),
    /// One v2 binary frame.
    Frame(u8, Vec<u8>),
}

/// Reads the next protocol unit. Frames are only recognized when
/// `allow_frames` is set (a negotiated v2 session); otherwise every byte
/// stream is treated as JSON lines, exactly like a v1-only build.
fn read_incoming(input: &mut impl BufRead, allow_frames: bool) -> Result<Incoming, String> {
    loop {
        let first = {
            let buf = input
                .fill_buf()
                .map_err(|e| format!("stdin read failed: {e}"))?;
            if buf.is_empty() {
                return Ok(Incoming::Eof);
            }
            buf[0]
        };
        if allow_frames && matches!(first, FRAME_SCORE_BATCH | FRAME_SCORE_REPLY | FRAME_ERROR) {
            let (kind, payload) =
                read_frame(input).map_err(|e| format!("frame read failed: {e}"))?;
            return Ok(Incoming::Frame(kind, payload));
        }
        let mut line = String::new();
        let n = input
            .read_line(&mut line)
            .map_err(|e| format!("stdin read failed: {e}"))?;
        if n == 0 {
            return Ok(Incoming::Eof);
        }
        if line.trim().is_empty() {
            continue;
        }
        return Ok(Incoming::Line(line));
    }
}

/// Serves one worker session over the given streams at the newest protocol
/// version this build speaks; returns the protocol error that ended it, if
/// any. Repeated `init` messages re-open the session with new run
/// parameters (each acknowledged by its own `ready` line).
///
/// # Errors
///
/// A human-readable message (already reported to the peer as an `error`
/// line or frame) for malformed messages or an un-ingestable init payload.
pub fn run_worker(input: impl BufRead, output: impl Write) -> Result<(), String> {
    run_worker_with(input, output, PROTOCOL_VERSION_MAX)
}

/// [`run_worker`] capped at `max_version`: sessions negotiate down to at
/// most this protocol version. `max_version = 1` reproduces a v1-only
/// build bit-for-bit (plain `ready` lines, JSON score lines only) — used
/// by downgrade tests and the v1-vs-v2 bench.
///
/// # Errors
///
/// Same as [`run_worker`].
pub fn run_worker_with(
    input: impl BufRead,
    output: impl Write,
    max_version: u32,
) -> Result<(), String> {
    run_worker_session(input, output, max_version, &FaultInjection::default())
}

/// The session engine behind [`run_worker_with`], with `faults` applied to
/// every score exchange (see [`FaultInjection`]; the default injects
/// nothing and is bit-for-bit the old behavior).
fn run_worker_session(
    mut input: impl BufRead,
    mut output: impl Write,
    max_version: u32,
    faults: &FaultInjection,
) -> Result<(), String> {
    // Score exchanges answered on this connection so far (1-based), the
    // clock the stall/drop faults tick on.
    let mut exchanges = 0usize;
    let fail = |output: &mut dyn Write, detail: String| -> Result<(), String> {
        let _ = writeln!(output, "{}", error_line(&detail));
        let _ = output.flush();
        Err(detail)
    };
    // In a v2 session the peer reads frames, so errors must travel as an
    // error *frame* — a JSON error line would be misread as a frame header.
    let fail_frame = |output: &mut dyn Write, detail: String| -> Result<(), String> {
        let _ = write_frame(output, FRAME_ERROR, detail.as_bytes());
        let _ = output.flush();
        Err(detail)
    };
    let own_max = max_version.clamp(PROTOCOL_VERSION, PROTOCOL_VERSION_MAX);

    // The first message is a JSON init line in every protocol version.
    let first = match read_incoming(&mut input, false)? {
        Incoming::Eof => return Ok(()), // empty session: nothing to do
        Incoming::Line(line) => line,
        Incoming::Frame(..) => unreachable!("frames are not recognized before init"),
    };
    let mut pending = match WorkerRequest::parse(first.trim()) {
        Ok(WorkerRequest::Init(init)) => Some((init, peer_max_version(first.trim()))),
        Ok(_) => return fail(&mut output, "first message must be `init`".to_string()),
        Err(e) => return fail(&mut output, e),
    };

    // One iteration per session: ingest the init, acknowledge, then score
    // until stdin closes or another init re-opens the session.
    while let Some((init, peer_max)) = pending.take() {
        let version = peer_max.min(own_max);
        let WorkerInit {
            model_json,
            hw_json,
            power_bits,
            macro_mode,
            objective,
        } = init;
        let model = match onnx::parse_model(&model_json) {
            Ok(m) => m,
            Err(e) => return fail(&mut output, format!("cannot ingest model: {e}")),
        };
        let hw = match hardware_config::from_json_exact(&hw_json) {
            Ok(hw) => hw,
            Err(e) => return fail(&mut output, format!("cannot ingest hardware params: {e}")),
        };
        let core = EvalCore::new(
            &model,
            Watts(f64::from_bits(power_bits)),
            &hw,
            macro_mode,
            objective,
            EvalCacheConfig::default(),
        );
        // A v1 peer (or a v1-capped build) gets the plain v1 ready; a v2
        // session acknowledges with the negotiated version.
        let ack = if version >= 2 {
            ready_line_with_max(version)
        } else {
            ready_line()
        };
        writeln!(output, "{ack}").map_err(|e| format!("stdout write failed: {e}"))?;
        output
            .flush()
            .map_err(|e| format!("stdout flush failed: {e}"))?;

        // Requests of one batch share a dataflow; cache the last compiled
        // one (per session — the model changed, so it cannot carry over).
        let mut compiled: Option<(DataflowKey, Dataflow)> = None;
        // Scores one candidate through the same pipeline as in-process
        // evaluation; anything uncompilable is INFEASIBLE, never an error.
        let score_one = |compiled: &mut Option<(DataflowKey, Dataflow)>,
                         ratio_bits: u64,
                         xb_size: usize,
                         cell_bits: u32,
                         dac_bits: u32,
                         wt_dup: Vec<usize>,
                         gene: Vec<u32>|
         -> CandidateScore {
            (|| -> Option<CandidateScore> {
                let crossbar = CrossbarConfig::new(xb_size, cell_bits).ok()?;
                let dac = DacConfig::new(dac_bits).ok()?;
                let df_key = (xb_size, cell_bits, dac_bits, wt_dup);
                if compiled.as_ref().map(|(k, _)| k) != Some(&df_key) {
                    let df = Dataflow::compile(&model, crossbar, dac, &df_key.3).ok()?;
                    *compiled = Some((df_key, df));
                }
                let (_, df) = compiled.as_ref().expect("just compiled");
                let gene = MacAllocGene::from_raw(gene).ok()?;
                let point = DesignPoint {
                    ratio_rram: f64::from_bits(ratio_bits),
                    crossbar,
                };
                Some(core.score(df, point, &gene))
            })()
            .unwrap_or(CandidateScore::INFEASIBLE)
        };
        loop {
            match read_incoming(&mut input, version >= 2)? {
                Incoming::Eof => break,
                Incoming::Line(line) => {
                    match WorkerRequest::parse(line.trim()) {
                        Ok(WorkerRequest::Score(request)) => {
                            exchanges += 1;
                            if faults.should_drop(exchanges) {
                                return Ok(()); // injected fault: die mid-chunk
                            }
                            let score = score_one(
                                &mut compiled,
                                request.ratio_bits,
                                request.xb_size,
                                request.cell_bits,
                                request.dac_bits,
                                request.wt_dup,
                                request.gene,
                            );
                            faults.delay_reply(exchanges, 1);
                            let response = ScoreResponse {
                                id: request.id,
                                score,
                            };
                            writeln!(output, "{}", response.to_line())
                                .map_err(|e| format!("stdout write failed: {e}"))?;
                            output
                                .flush()
                                .map_err(|e| format!("stdout flush failed: {e}"))?;
                        }
                        Ok(WorkerRequest::Init(next)) => {
                            // Session re-open: a new run leased this
                            // process. The re-init renegotiates the
                            // version (the new run may be a v1 client).
                            pending = Some((next, peer_max_version(line.trim())));
                            break;
                        }
                        Err(e) => return fail(&mut output, e),
                    }
                }
                Incoming::Frame(FRAME_SCORE_BATCH, payload) => {
                    let (id_base, items) = match decode_score_batch(&payload) {
                        Ok(batch) => batch,
                        Err(e) => return fail_frame(&mut output, e),
                    };
                    exchanges += 1;
                    if faults.should_drop(exchanges) {
                        return Ok(()); // injected fault: die mid-chunk
                    }
                    let jobs = items.len();
                    let scores: Vec<CandidateScore> = items
                        .into_iter()
                        .map(|item| {
                            score_one(
                                &mut compiled,
                                item.ratio_bits,
                                item.xb_size as usize,
                                item.cell_bits,
                                item.dac_bits,
                                item.wt_dup.into_iter().map(|d| d as usize).collect(),
                                item.gene,
                            )
                        })
                        .collect();
                    faults.delay_reply(exchanges, jobs);
                    write_frame(
                        &mut output,
                        FRAME_SCORE_REPLY,
                        &encode_score_reply(id_base, &scores),
                    )
                    .map_err(|e| format!("stdout write failed: {e}"))?;
                    output
                        .flush()
                        .map_err(|e| format!("stdout flush failed: {e}"))?;
                }
                Incoming::Frame(kind, _) => {
                    return fail_frame(&mut output, format!("unexpected frame kind 0x{kind:02x}"))
                }
            }
        }
    }
    Ok(())
}

/// The `pimsyn --worker` entry point: serves stdin/stdout until EOF.
pub fn run_worker_stdio() -> ExitCode {
    let stdin = std::io::stdin().lock();
    let stdout = std::io::stdout().lock();
    match run_worker(stdin, stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(_) => ExitCode::FAILURE,
    }
}

/// Artificial worker misbehavior, injected into served sessions for chaos
/// tests, CI smokes, and the straggler-scheduling bench. All off by
/// default (and in every production path): faults only run when a test
/// sets them on [`WorkerServeConfig`] directly or the `worker-serve` CLI
/// picks them up from `PIMSYN_FAULT_*` environment variables.
///
/// The injected faults model the real failure shapes the adaptive chunker
/// must stay bit-identical under:
///
/// - **Per-batch / per-job delay** — a uniformly slow worker (loaded box,
///   cold cache). `PIMSYN_FAULT_BATCH_DELAY_MS` sleeps once per score
///   exchange; `PIMSYN_FAULT_JOB_DELAY_US` sleeps once per candidate, so
///   the slowdown scales with chunk size like real compute does.
/// - **Mid-run stall** — a worker that degrades after warmup.
///   `PIMSYN_FAULT_STALL_AFTER` lets that many score exchanges answer
///   normally, then every later reply is delayed `PIMSYN_FAULT_STALL_MS`
///   (default 5000).
/// - **Connection drop** — a worker that dies mid-chunk. With
///   `PIMSYN_FAULT_DROP_EVERY=n`, every nth score exchange on a
///   connection closes the socket instead of answering; the dialing
///   backend recomputes the chunk inline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjection {
    /// Sleep before answering each score exchange.
    pub batch_delay: Option<Duration>,
    /// Sleep per candidate in each score exchange.
    pub job_delay: Option<Duration>,
    /// Score exchanges answered normally before stalling kicks in.
    pub stall_after: Option<usize>,
    /// The per-reply stall once [`stall_after`](Self::stall_after) is
    /// exceeded.
    pub stall_delay: Duration,
    /// Close the connection instead of answering every nth exchange.
    pub drop_every: Option<usize>,
}

impl FaultInjection {
    /// Reads the `PIMSYN_FAULT_*` variables (unset, empty, unparsable and
    /// zero all mean "off"). Used by the `worker-serve` CLI so test
    /// harnesses can misconfigure a stock binary without new flags.
    pub fn from_env() -> Self {
        let read = |name: &str| -> Option<u64> {
            std::env::var(name)
                .ok()?
                .trim()
                .parse()
                .ok()
                .filter(|&v| v > 0)
        };
        Self {
            batch_delay: read("PIMSYN_FAULT_BATCH_DELAY_MS").map(Duration::from_millis),
            job_delay: read("PIMSYN_FAULT_JOB_DELAY_US").map(Duration::from_micros),
            stall_after: read("PIMSYN_FAULT_STALL_AFTER").map(|v| v as usize),
            stall_delay: read("PIMSYN_FAULT_STALL_MS")
                .map(Duration::from_millis)
                .unwrap_or(Duration::from_secs(5)),
            drop_every: read("PIMSYN_FAULT_DROP_EVERY").map(|v| v as usize),
        }
    }

    /// Whether any fault is configured.
    pub fn is_active(&self) -> bool {
        self.batch_delay.is_some()
            || self.job_delay.is_some()
            || self.stall_after.is_some()
            || self.drop_every.is_some()
    }

    /// Whether the `exchange`th (1-based) score exchange on a connection
    /// should close the socket instead of answering.
    fn should_drop(&self, exchange: usize) -> bool {
        self.drop_every
            .is_some_and(|n| n > 0 && exchange.is_multiple_of(n))
    }

    /// Injects the configured delays before the reply to the `exchange`th
    /// (1-based) score exchange carrying `jobs` candidates.
    fn delay_reply(&self, exchange: usize, jobs: usize) {
        if let Some(delay) = self.batch_delay {
            std::thread::sleep(delay);
        }
        if let Some(delay) = self.job_delay {
            std::thread::sleep(delay.saturating_mul(jobs.min(u32::MAX as usize) as u32));
        }
        if self.stall_after.is_some_and(|n| exchange > n) {
            std::thread::sleep(self.stall_delay);
        }
    }
}

/// Configuration of a [`serve_workers`] daemon.
#[derive(Debug, Clone, Default)]
pub struct WorkerServeConfig {
    /// Concurrent worker sessions served (`0` = one per available core).
    /// Connections past the cap are answered with an `error` frame and
    /// closed; the dialing backend scores those chunks inline.
    pub slots: usize,
    /// Shared auth token. When set, a `hello` (or `stop`) frame must carry
    /// the same token or the connection is rejected.
    pub token: Option<String>,
    /// Suppress per-connection log lines on stderr. The one `listening on
    /// <addr>` startup line prints regardless — it is the script-facing
    /// way to learn the bound port when listening on port 0.
    pub quiet: bool,
    /// Cap on the negotiated worker protocol version (`None` = the newest
    /// this build speaks). `Some(1)` reproduces a v1-only daemon — for
    /// downgrade tests and the v1-vs-v2 bench.
    pub protocol_max: Option<u32>,
    /// A worker registry (`HOST:PORT` of a `pimsyn serve`/`pimsyn gateway`
    /// started with `--worker-registry`) to announce this daemon to. While
    /// serving, a background thread keeps the registration alive with
    /// heartbeats and deregisters gracefully when the daemon stops.
    pub announce: Option<String>,
    /// Artificial misbehavior injected into every served session — the
    /// chaos-test harness. [`FaultInjection::default`] (all off) in any
    /// production configuration.
    pub faults: FaultInjection,
}

impl WorkerServeConfig {
    fn resolved_slots(&self) -> usize {
        if self.slots == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.slots
        }
    }
}

/// How long a dialing peer gets to send its handshake frame before the
/// connection is dropped (keeps port scanners and wedged peers from
/// pinning sessions open).
const TCP_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Bounded dial for [`stop_worker_server`], matching the remote backend's
/// own connect timeout.
const STOP_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// Per-read idle bound on an open worker session. A healthy dialer sends
/// batches continuously while a run is live and closes the connection when
/// it ends, so a session silent this long is a half-open peer (power-
/// failed client, NAT silently dropping the flow) — without the bound it
/// would pin one of the daemon's slots until restart. A dialer that does
/// trip it just reconnects and re-opens its session on the next batch;
/// scoring is pure, so results are unaffected.
const SESSION_IDLE_TIMEOUT: Duration = Duration::from_secs(15 * 60);

struct WorkerServeState {
    slots: usize,
    token: Option<String>,
    quiet: bool,
    addr: SocketAddr,
    protocol_max: u32,
    faults: FaultInjection,
    active: AtomicUsize,
    stop: AtomicBool,
}

impl WorkerServeState {
    fn note(&self, message: &str) {
        if !self.quiet {
            eprintln!("pimsyn worker-serve: {message}");
        }
    }
}

fn reply_frame(stream: &mut TcpStream, line: &str) {
    let _ = writeln!(stream, "{line}");
    let _ = stream.flush();
}

/// Self-connects to a listener to unblock its blocking accept loop after a
/// stop flag was set. A wildcard bind address (`0.0.0.0` / `::`) is not
/// connectable on every platform, so it is rewritten to the matching
/// loopback address first.
pub(crate) fn poke_listener(addr: SocketAddr) {
    let mut target = addr;
    if target.ip().is_unspecified() {
        target.set_ip(match target {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    if TcpStream::connect(target).is_err() {
        eprintln!(
            "pimsyn: cannot poke the listener on {addr} to finish shutdown; \
             it will stop on its next accepted connection"
        );
    }
}

/// Serves evaluation-worker sessions over TCP until a `stop` frame
/// arrives, blocking the calling thread. Each accepted connection is
/// handshaked (protocol version, optional auth token, free-slot check) and
/// then handed to [`run_worker`] on its own thread — one connection is one
/// worker session, ended by the peer closing the socket.
///
/// On startup the actually-bound address — including the kernel-resolved
/// port when the listener was bound to port 0 — is printed to stderr as
/// `pimsyn worker-serve: listening on <addr>` regardless of `quiet`, so
/// scripts and tests can bind port 0 instead of racing for free ports.
///
/// A `stop` ends the accept loop only; sessions still in flight are cut
/// when the process exits, and their dialing backends recompute the
/// affected chunks inline (results are unaffected — scoring is pure).
///
/// # Errors
///
/// Propagates listener-level IO errors (failure to read the local address
/// or accept connections); per-connection errors only drop that
/// connection.
pub fn serve_workers(listener: TcpListener, config: WorkerServeConfig) -> std::io::Result<()> {
    let addr = listener.local_addr()?;
    let state = Arc::new(WorkerServeState {
        slots: config.resolved_slots(),
        token: config.token.clone(),
        quiet: config.quiet,
        addr,
        protocol_max: config
            .protocol_max
            .unwrap_or(PROTOCOL_VERSION_MAX)
            .clamp(PROTOCOL_VERSION, PROTOCOL_VERSION_MAX),
        faults: config.faults.clone(),
        active: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
    });
    if state.faults.is_active() {
        // Loud by design: a daemon that deliberately misbehaves must never
        // pass for a healthy one in a log.
        eprintln!(
            "pimsyn worker-serve: FAULT INJECTION ACTIVE: {:?}",
            state.faults
        );
    }
    // Unconditional: the script-facing bound-address line (see above).
    eprintln!("pimsyn worker-serve: listening on {addr}");
    let announcer = config.announce.map(|registry| {
        start_announcer(
            registry,
            config.token,
            addr,
            state.slots,
            state.protocol_max,
            config.quiet,
        )
    });
    for stream in listener.incoming() {
        if state.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let state = Arc::clone(&state);
        std::thread::spawn(move || handle_worker_connection(&state, stream));
    }
    if let Some(announcer) = announcer {
        announcer.stop(); // deregisters gracefully (a drain message)
    }
    state.note("stopped");
    Ok(())
}

/// Bounded dial for the registry announce path, matching the remote
/// backend's own connect timeout.
const ANNOUNCE_CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the announcer waits for the registry's replies.
const ANNOUNCE_REPLY_TIMEOUT: Duration = Duration::from_secs(10);

/// How long the announcer waits before redialing a registry it cannot
/// reach (or that hung up on it).
const ANNOUNCE_REDIAL_BACKOFF: Duration = Duration::from_secs(2);

/// Handle to the registry-announce thread of a worker daemon.
struct Announcer {
    tx: mpsc::Sender<()>,
    thread: std::thread::JoinHandle<()>,
}

impl Announcer {
    /// Signals the announce thread to deregister (a graceful `drain`
    /// message) and waits for it to finish.
    fn stop(self) {
        let _ = self.tx.send(());
        let _ = self.thread.join();
    }
}

/// Starts the background thread that keeps this daemon registered with a
/// worker registry: announce once, heartbeat at the registry-assigned
/// interval, redial with backoff on connection loss, deregister on stop.
fn start_announcer(
    registry: String,
    token: Option<String>,
    listen: SocketAddr,
    slots: usize,
    protocol_max: u32,
    quiet: bool,
) -> Announcer {
    let (tx, rx) = mpsc::channel();
    let thread = std::thread::spawn(move || {
        run_announcer(
            &registry,
            token.as_deref(),
            listen,
            slots,
            protocol_max,
            quiet,
            &rx,
        );
    });
    Announcer { tx, thread }
}

/// Dials the registry and announces this daemon. Returns the open
/// connection (heartbeats reuse it), the address that was advertised, and
/// the registry-assigned heartbeat interval.
fn announce_once(
    registry: &str,
    token: Option<&str>,
    listen: SocketAddr,
    slots: usize,
    protocol_max: u32,
) -> Result<(TcpStream, String, Duration), String> {
    let mut stream = pimsyn_dse::backend::dial_bounded(registry, ANNOUNCE_CONNECT_TIMEOUT)?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(ANNOUNCE_REPLY_TIMEOUT));
    // A daemon listening on a wildcard address advertises the concrete
    // interface this very connection reached the registry over — the one
    // address the registry's service is known to be able to dial back.
    let mut advertised = listen;
    if advertised.ip().is_unspecified() {
        let local = stream
            .local_addr()
            .map_err(|e| format!("cannot resolve the announce source address: {e}"))?;
        advertised.set_ip(local.ip());
    }
    let advertised = advertised.to_string();
    writeln!(
        stream,
        "{}",
        registry::announce_line(&advertised, slots, protocol_max, token)
    )
    .and_then(|()| stream.flush())
    .map_err(|e| format!("cannot announce to {registry}: {e}"))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cannot clone the registry stream: {e}"))?,
    );
    let mut line = String::new();
    let interval = match reader.read_line(&mut line) {
        Ok(n) if n > 0 => match registry::parse_registry_reply(line.trim())? {
            registry::RegistryReply::Registered { interval } => interval,
            registry::RegistryReply::Bye => {
                return Err(format!("{registry} answered an announce with a bye"))
            }
        },
        Ok(_) => return Err(format!("{registry} closed the connection without replying")),
        Err(e) => {
            return Err(format!(
                "cannot read the announce reply from {registry}: {e}"
            ))
        }
    };
    Ok((stream, advertised, interval))
}

/// The announce thread body: keep one registration alive until `stop`
/// fires, then deregister gracefully.
fn run_announcer(
    registry: &str,
    token: Option<&str>,
    listen: SocketAddr,
    slots: usize,
    protocol_max: u32,
    quiet: bool,
    stop: &mpsc::Receiver<()>,
) {
    let note = |message: &str| {
        if !quiet {
            eprintln!("pimsyn worker-serve: {message}");
        }
    };
    loop {
        match announce_once(registry, token, listen, slots, protocol_max) {
            Ok((mut stream, advertised, interval)) => {
                note(&format!(
                    "announced {advertised} to registry {registry} (heartbeat every {}s)",
                    interval.as_secs().max(1)
                ));
                loop {
                    match stop.recv_timeout(interval) {
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            let beat =
                                registry::heartbeat_line(&advertised, slots, protocol_max, token);
                            if writeln!(stream, "{beat}")
                                .and_then(|()| stream.flush())
                                .is_err()
                            {
                                note("lost the registry connection; redialing");
                                break; // back to the outer redial loop
                            }
                        }
                        _ => {
                            // Graceful deregistration; the reply is read
                            // best-effort — the daemon is exiting anyway.
                            let _ =
                                writeln!(stream, "{}", registry::drain_line(&advertised, token))
                                    .and_then(|()| stream.flush());
                            let mut reader = BufReader::new(&stream);
                            let mut line = String::new();
                            let _ = reader.read_line(&mut line);
                            note("deregistered from the registry");
                            return;
                        }
                    }
                }
            }
            Err(e) => {
                note(&format!("registry announce failed: {e}; retrying"));
                if !matches!(
                    stop.recv_timeout(ANNOUNCE_REDIAL_BACKOFF),
                    Err(mpsc::RecvTimeoutError::Timeout)
                ) {
                    return;
                }
            }
        }
    }
}

/// Decrements the active-session counter even if the session panics.
struct SessionGuard<'a>(&'a WorkerServeState);

impl Drop for SessionGuard<'_> {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_worker_connection(state: &Arc<WorkerServeState>, mut stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(TCP_HANDSHAKE_TIMEOUT));
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(peer);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => {}
        _ => return, // peer hung up (or stalled) before the handshake
    }
    let handshake = match parse_handshake(line.trim()) {
        Ok(handshake) => handshake,
        Err(detail) => {
            reply_frame(&mut stream, &error_line(&detail));
            return;
        }
    };
    let token = match &handshake {
        TcpHandshake::Hello { token } | TcpHandshake::Stop { token } => token,
    };
    if state.token.is_some() && state.token != *token {
        state.note("rejected a connection: bad or missing auth token");
        reply_frame(
            &mut stream,
            &error_line("authentication failed: bad or missing token"),
        );
        return;
    }
    match handshake {
        TcpHandshake::Stop { .. } => {
            state.note("stop requested");
            reply_frame(&mut stream, &bye_line());
            state.stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so `serve_workers` observes the flag.
            poke_listener(state.addr);
        }
        TcpHandshake::Hello { .. } => {
            let prior = state.active.fetch_add(1, Ordering::SeqCst);
            if prior >= state.slots {
                state.active.fetch_sub(1, Ordering::SeqCst);
                reply_frame(
                    &mut stream,
                    &error_line(&format!("{NO_FREE_SLOTS} ({} in use)", state.slots)),
                );
                return;
            }
            let _guard = SessionGuard(state);
            // Advertise the sessions still available to this peer at
            // handshake time (including this one), so a daemon shared by
            // several runs throttles each to what actually remains
            // instead of inviting rejections.
            reply_frame(&mut stream, &welcome_line(state.slots - prior));
            // Sessions get a generous idle bound instead of no timeout:
            // healthy backends send batches continuously, and a half-open
            // peer must not pin this slot forever.
            let _ = stream.set_read_timeout(Some(SESSION_IDLE_TIMEOUT));
            state.note("session opened");
            let _ = run_worker_session(reader, &mut stream, state.protocol_max, &state.faults);
            state.note("session closed");
        }
    }
}

/// Handle to a worker daemon running on a background thread (in-process
/// embeddings and tests; the CLI's `pimsyn worker-serve` blocks on
/// [`serve_workers`] directly).
#[derive(Debug)]
pub struct WorkerServeHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

impl WorkerServeHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to stop (a `stop` frame) and returns its exit
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if the daemon thread itself panicked (a bug).
    pub fn join(self) -> std::io::Result<()> {
        self.thread.join().expect("worker-serve thread panicked")
    }
}

/// [`serve_workers`] on a background thread, returning immediately with a
/// handle.
///
/// # Errors
///
/// Propagates the listener's local-address lookup failure.
pub fn serve_workers_in_background(
    listener: TcpListener,
    config: WorkerServeConfig,
) -> std::io::Result<WorkerServeHandle> {
    let addr = listener.local_addr()?;
    let thread = std::thread::spawn(move || serve_workers(listener, config));
    Ok(WorkerServeHandle { addr, thread })
}

/// Asks the worker daemon at `addr` to stop, authenticating with `token`
/// when given (required when the daemon was started with an auth token).
///
/// # Errors
///
/// Transport failures, or the daemon's refusal (bad token).
pub fn stop_worker_server(addr: &str, token: Option<&str>) -> Result<(), String> {
    // Bounded connect (trying every resolved address), so a script
    // sweeping a roster of daemons never hangs on a dead host for the OS
    // default TCP timeout.
    let mut stream = pimsyn_dse::backend::dial_bounded(addr, STOP_CONNECT_TIMEOUT)?;
    let _ = stream.set_read_timeout(Some(TCP_HANDSHAKE_TIMEOUT));
    writeln!(stream, "{}", stop_line(token))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("cannot send stop to {addr}: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(n) if n > 0 => parse_bye(line.trim()),
        Ok(_) => Err(format!("{addr} closed the connection without replying")),
        Err(e) => Err(format!("cannot read the stop reply from {addr}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimsyn_arch::{HardwareParams, MacroMode};
    use pimsyn_dse::backend::protocol::{parse_ready, ScoreRequest};
    use pimsyn_dse::Objective;
    use pimsyn_model::zoo;

    fn init_line(model_power: f64) -> String {
        let model = zoo::alexnet_cifar(10);
        WorkerInit {
            model_json: onnx::to_json(&model),
            hw_json: hardware_config::to_json_exact(&HardwareParams::date24()),
            power_bits: model_power.to_bits(),
            macro_mode: MacroMode::Specialized,
            objective: Objective::PowerEfficiency,
        }
        .to_line()
    }

    fn score_request(id: u64, macros: usize) -> (ScoreRequest, DesignPoint, Vec<usize>) {
        let model = zoo::alexnet_cifar(10);
        let l = model.weight_layer_count();
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dup = vec![1usize; l];
        let gene = MacAllocGene::encode(&vec![macros; l], &vec![None; l]);
        let point = DesignPoint {
            ratio_rram: 0.3,
            crossbar: xb,
        };
        (
            ScoreRequest {
                id,
                ratio_bits: point.ratio_rram.to_bits(),
                xb_size: xb.size(),
                cell_bits: xb.cell_bits(),
                dac_bits: 1,
                wt_dup: dup.clone(),
                gene: gene.as_slice().to_vec(),
            },
            point,
            dup,
        )
    }

    #[test]
    fn worker_session_scores_bit_identically_to_inline() {
        let model = zoo::alexnet_cifar(10);
        let hw = HardwareParams::date24();
        let l = model.weight_layer_count();
        let xb = CrossbarConfig::new(128, 2).unwrap();
        let dac = DacConfig::new(1).unwrap();
        let dup = vec![1usize; l];
        let df = Dataflow::compile(&model, xb, dac, &dup).unwrap();
        let point = DesignPoint {
            ratio_rram: 0.3,
            crossbar: xb,
        };
        let genes: Vec<MacAllocGene> = (1..=3)
            .map(|m| MacAllocGene::encode(&vec![m; l], &vec![None; l]))
            .collect();

        // Drive a full session through in-memory pipes.
        let mut session = String::new();
        session.push_str(&init_line(9.0));
        session.push('\n');
        for (id, gene) in genes.iter().enumerate() {
            let request = ScoreRequest {
                id: id as u64,
                ratio_bits: point.ratio_rram.to_bits(),
                xb_size: xb.size(),
                cell_bits: xb.cell_bits(),
                dac_bits: dac.bits(),
                wt_dup: dup.clone(),
                gene: gene.as_slice().to_vec(),
            };
            session.push_str(&request.to_line());
            session.push('\n');
        }
        let mut output = Vec::new();
        run_worker(session.as_bytes(), &mut output).expect("clean session");
        let text = String::from_utf8(output).unwrap();
        let mut lines = text.lines();
        parse_ready(lines.next().expect("ready line")).expect("valid ready");

        // Compare against in-process scoring, bit for bit.
        let core = EvalCore::new(
            &model,
            Watts(9.0),
            &hw,
            MacroMode::Specialized,
            Objective::PowerEfficiency,
            EvalCacheConfig::default(),
        );
        for (id, gene) in genes.iter().enumerate() {
            let response = ScoreResponse::parse(lines.next().expect("score line")).unwrap();
            assert_eq!(response.id, id as u64);
            let expect = core.score(&df, point, gene);
            assert_eq!(response.score.fitness.to_bits(), expect.fitness.to_bits());
            assert_eq!(response.score.feasible, expect.feasible);
        }
        assert!(lines.next().is_none());
    }

    #[test]
    fn second_init_reopens_the_session() {
        // Two back-to-back sessions at different power levels on one worker
        // process: each init is acknowledged by its own ready line, and the
        // same candidate scores differently under the different budgets —
        // each bit-identical to in-process scoring at that power.
        let model = zoo::alexnet_cifar(10);
        let hw = HardwareParams::date24();
        let (request_a, point, dup) = score_request(0, 2);
        let (request_b, _, _) = score_request(7, 2);
        let mut session = String::new();
        for (power, request) in [(9.0, &request_a), (15.0, &request_b)] {
            session.push_str(&init_line(power));
            session.push('\n');
            session.push_str(&request.to_line());
            session.push('\n');
        }
        let mut output = Vec::new();
        run_worker(session.as_bytes(), &mut output).expect("clean two-session run");
        let text = String::from_utf8(output).unwrap();
        let mut lines = text.lines();

        let df =
            Dataflow::compile(&model, point.crossbar, DacConfig::new(1).unwrap(), &dup).unwrap();
        let gene = MacAllocGene::from_raw(request_a.gene.clone()).unwrap();
        for (power, id) in [(9.0, 0u64), (15.0, 7)] {
            parse_ready(lines.next().expect("ready line")).expect("valid ready");
            let response = ScoreResponse::parse(lines.next().expect("score line")).unwrap();
            assert_eq!(response.id, id);
            let core = EvalCore::new(
                &model,
                Watts(power),
                &hw,
                MacroMode::Specialized,
                Objective::PowerEfficiency,
                EvalCacheConfig::default(),
            );
            let expect = core.score(&df, point, &gene);
            assert_eq!(response.score.fitness.to_bits(), expect.fitness.to_bits());
            assert_eq!(response.score.feasible, expect.feasible);
        }
        assert!(lines.next().is_none());
    }

    #[test]
    fn worker_rejects_garbage_with_an_error_line() {
        let mut output = Vec::new();
        let err = run_worker("not json\n".as_bytes(), &mut output).unwrap_err();
        assert!(err.contains("malformed"), "{err}");
        let text = String::from_utf8(output).unwrap();
        assert!(text.contains("\"error\""), "{text}");

        // A score before init is rejected too.
        let mut output = Vec::new();
        let premature = r#"{"type":"score","id":0,"ratio":"0","xb":128,"cell":2,"dac":1,"wt_dup":[],"gene":[]}"#;
        let err = run_worker(format!("{premature}\n").as_bytes(), &mut output).unwrap_err();
        assert!(err.contains("init"), "{err}");
    }

    #[test]
    fn worker_answers_infeasible_for_uncompilable_requests() {
        let mut session = String::new();
        session.push_str(&init_line(9.0));
        session.push('\n');
        // Wrong wt_dup arity: the dataflow cannot compile.
        let bad = ScoreRequest {
            id: 5,
            ratio_bits: 0.3f64.to_bits(),
            xb_size: 128,
            cell_bits: 2,
            dac_bits: 1,
            wt_dup: vec![1],
            gene: vec![1],
        };
        session.push_str(&bad.to_line());
        session.push('\n');
        let mut output = Vec::new();
        run_worker(session.as_bytes(), &mut output).expect("session survives");
        let text = String::from_utf8(output).unwrap();
        let response = ScoreResponse::parse(text.lines().nth(1).unwrap()).unwrap();
        assert_eq!(response.id, 5);
        assert_eq!(response.score, CandidateScore::INFEASIBLE);
    }

    #[test]
    fn empty_session_is_clean() {
        let mut output = Vec::new();
        run_worker("".as_bytes(), &mut output).expect("empty session");
        assert!(output.is_empty());
    }

    #[test]
    fn fault_injection_defaults_are_inert() {
        let faults = FaultInjection::default();
        assert!(!faults.is_active());
        for exchange in 1..100 {
            assert!(!faults.should_drop(exchange));
        }
    }

    #[test]
    fn fault_injection_drop_cadence_is_every_nth_exchange() {
        let faults = FaultInjection {
            drop_every: Some(3),
            ..Default::default()
        };
        assert!(faults.is_active());
        let drops: Vec<usize> = (1..=9).filter(|&e| faults.should_drop(e)).collect();
        assert_eq!(drops, vec![3, 6, 9]);
    }

    #[test]
    fn fault_injected_drop_closes_the_session_after_replying_earlier_exchanges() {
        // Two v1 score requests with drop_every = 2: the first is answered,
        // the second silently closes the session — the connection-drop
        // shape the remote backend's inline recompute handles.
        let mut session = String::new();
        session.push_str(&init_line(9.0));
        session.push('\n');
        for id in [1u64, 2] {
            let request = ScoreRequest {
                id,
                ratio_bits: 0.3f64.to_bits(),
                xb_size: 128,
                cell_bits: 2,
                dac_bits: 1,
                wt_dup: vec![1],
                gene: vec![1],
            };
            session.push_str(&request.to_line());
            session.push('\n');
        }
        let faults = FaultInjection {
            drop_every: Some(2),
            ..Default::default()
        };
        let mut output = Vec::new();
        run_worker_session(session.as_bytes(), &mut output, 1, &faults)
            .expect("drop ends the session cleanly");
        let text = String::from_utf8(output).unwrap();
        let mut lines = text.lines();
        let _ready = lines.next().expect("ready line");
        let reply = ScoreResponse::parse(lines.next().expect("first score answered")).unwrap();
        assert_eq!(reply.id, 1);
        assert_eq!(lines.next(), None, "second exchange must drop, not reply");
    }
}
