//! The [`SynthesisEngine`]: a reusable, thread-safe entry point that runs
//! synthesis as observable, cancellable *jobs*.
//!
//! Where [`Synthesizer`](crate::Synthesizer) is one opaque blocking call,
//! the engine exposes the same four-stage flow (Fig. 3) as:
//!
//! - [`SynthesisEngine::run`] — blocking, but streaming typed
//!   [`SynthesisEvent`]s to an [`EventSink`] and honoring a
//!   [`CancelToken`] plus the wall-clock / evaluation budgets configured in
//!   [`SynthesisOptions`].
//! - [`SynthesisEngine::spawn`] — the same job on a background thread,
//!   returning a [`SynthesisJob`] handle with an event receiver and a
//!   cancellation token.
//! - [`SynthesisEngine::synthesize_batch`] — many requests fanned out over
//!   a bounded worker pool, with per-job isolation: one infeasible model
//!   does not fail the batch.
//!
//! # Example
//!
//! ```
//! use pimsyn::{SynthesisEngine, SynthesisEvent, SynthesisOptions, SynthesisRequest};
//! use pimsyn_arch::Watts;
//! use pimsyn_model::zoo;
//!
//! let engine = SynthesisEngine::new();
//! let request = SynthesisRequest::new(
//!     zoo::alexnet_cifar(10),
//!     SynthesisOptions::fast(Watts(6.0)).with_seed(3),
//! );
//! let job = engine.spawn(request);
//! let mut improvements = 0;
//! for event in job.events() {
//!     if let SynthesisEvent::ImprovedBest { .. } = event {
//!         improvements += 1;
//!     }
//! }
//! let result = job.join().expect("alexnet at 6 W is feasible");
//! assert!(improvements >= 1);
//! assert!(result.analytic.efficiency_tops_per_watt() > 0.0);
//! ```

use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use pimsyn_dse::{run_dse_observed, CancelToken, ExploreContext, ExploreEvent, ExploreObserver};
use pimsyn_sim::simulate;

use crate::error::SynthesisError;
use crate::events::{lift, ChannelSink, EventSink, SynthesisEvent};
use crate::request::SynthesisRequest;
use crate::synthesis::SynthesisResult;

/// Reusable, thread-safe synthesis entry point running jobs and batches.
///
/// The engine itself holds only scheduling policy (batch worker width); all
/// per-job state lives in the request and the per-call context, so one
/// engine can serve many concurrent callers.
#[derive(Debug, Clone)]
pub struct SynthesisEngine {
    batch_workers: Option<usize>,
}

impl Default for SynthesisEngine {
    fn default() -> Self {
        Self::new()
    }
}

/// Adapter delivering DSE-layer events into a synthesis-level sink,
/// stamped with the job they belong to (so batch streams stay
/// attributable).
struct SinkAdapter<'a> {
    sink: &'a dyn EventSink,
    job: usize,
}

impl ExploreObserver for SinkAdapter<'_> {
    fn on_event(&self, event: ExploreEvent) {
        self.sink.emit(lift(self.job, event));
    }
}

impl SynthesisEngine {
    /// An engine with default batch parallelism (one worker per available
    /// core, capped by the batch size).
    pub fn new() -> Self {
        Self {
            batch_workers: None,
        }
    }

    /// Overrides how many batch jobs may run concurrently.
    #[must_use]
    pub fn with_batch_workers(mut self, workers: usize) -> Self {
        self.batch_workers = Some(workers.max(1));
        self
    }

    /// Runs one job to completion on the calling thread, streaming progress
    /// to `sink` and honoring `cancel` plus the budgets in the request's
    /// options.
    ///
    /// # Errors
    ///
    /// - [`SynthesisError::Cancelled`] when `cancel` fires before the job
    ///   finishes.
    /// - [`SynthesisError::InvalidOptions`] for inconsistent options.
    /// - [`SynthesisError::Dse`] when nothing feasible was found (including
    ///   budgets that expire before the first feasible candidate).
    /// - [`SynthesisError::Sim`] if the optional cycle validation fails.
    pub fn run(
        &self,
        request: &SynthesisRequest,
        sink: &dyn EventSink,
        cancel: &CancelToken,
    ) -> Result<SynthesisResult, SynthesisError> {
        self.run_job(0, request, sink, cancel)
    }

    /// Runs one job with its events tagged as `job` (the batch index or a
    /// service job id); the `SynthesisService` job slots call this too.
    pub(crate) fn run_job(
        &self,
        job: usize,
        request: &SynthesisRequest,
        sink: &dyn EventSink,
        cancel: &CancelToken,
    ) -> Result<SynthesisResult, SynthesisError> {
        let started = Instant::now();
        sink.emit(SynthesisEvent::JobStarted {
            job,
            label: request.display_label(),
        });
        let (outcome, charged) = self.run_inner(job, request, sink, cancel);
        let (efficiency, evaluations, stop_reason, error) = match &outcome {
            Ok(result) => (
                Some(result.analytic.efficiency_tops_per_watt()),
                result.evaluations,
                Some(result.stop_reason),
                None,
            ),
            // Failed jobs still did work; report what was actually spent.
            Err(e) => (None, charged, None, Some(e.to_string())),
        };
        sink.emit(SynthesisEvent::Finished {
            job,
            efficiency,
            evaluations,
            stop_reason,
            elapsed: started.elapsed(),
            error,
        });
        outcome
    }

    /// Runs one job; besides the result, returns the candidate evaluations
    /// actually charged to the exploration budget (nonzero even when the
    /// job fails, so metering stays accurate).
    fn run_inner(
        &self,
        job: usize,
        request: &SynthesisRequest,
        sink: &dyn EventSink,
        cancel: &CancelToken,
    ) -> (Result<SynthesisResult, SynthesisError>, usize) {
        let options = &request.options;
        if options.cycle_validation && options.cycle_images == 0 {
            return (
                Err(SynthesisError::InvalidOptions {
                    detail: "cycle validation needs at least one image".to_string(),
                }),
                0,
            );
        }
        // Persistence snapshots the memo; with the memo disabled there is
        // nothing to load or save — reject instead of silently dropping the
        // cache file (the CLI enforces the same rule at arg level).
        if !options.eval_cache.enabled && options.backend.cache_file.is_some() {
            return (
                Err(SynthesisError::InvalidOptions {
                    detail: "an eval-cache file requires the evaluation cache to be enabled"
                        .to_string(),
                }),
                0,
            );
        }
        // The entry cap trims what is written to the cache file; without a
        // file it caps nothing — reject the mistake instead of ignoring it.
        if options.backend.cache_max_entries.is_some() && options.backend.cache_file.is_none() {
            return (
                Err(SynthesisError::InvalidOptions {
                    detail: "an eval-cache entry cap requires an eval-cache file".to_string(),
                }),
                0,
            );
        }
        let started = Instant::now();
        let cfg = options.to_dse_config();
        let adapter = SinkAdapter { sink, job };
        let ctx = ExploreContext::new(&adapter, cancel.clone(), options.to_explore_budget());
        let outcome = match run_dse_observed(&request.model, &cfg, &ctx) {
            Ok(outcome) => outcome,
            Err(e) => return (Err(e.into()), ctx.evaluations()),
        };
        let charged = ctx.evaluations();
        if cancel.is_cancelled() {
            return (Err(SynthesisError::Cancelled), charged);
        }
        let cycle = if options.cycle_validation {
            match simulate(
                &request.model,
                &outcome.dataflow,
                &outcome.architecture,
                options.cycle_images,
            ) {
                Ok(report) => Some(report),
                Err(e) => return (Err(e.into()), charged),
            }
        } else {
            None
        };
        (
            Ok(SynthesisResult {
                model: request.model.clone(),
                architecture: outcome.architecture,
                dataflow: outcome.dataflow,
                wt_dup: outcome.wt_dup,
                analytic: outcome.report,
                cycle,
                evaluations: outcome.evaluations,
                history: outcome.history,
                stop_reason: outcome.stop_reason,
                elapsed: started.elapsed(),
            }),
            charged,
        )
    }

    /// Starts one job on a background thread and returns a handle carrying
    /// the live event stream and a cancellation token.
    pub fn spawn(&self, request: SynthesisRequest) -> SynthesisJob {
        let (sink, events) = ChannelSink::pair();
        let cancel = CancelToken::new();
        let engine = self.clone();
        let token = cancel.clone();
        let handle = thread::spawn(move || engine.run_job(0, &request, &sink, &token));
        SynthesisJob {
            events,
            cancel,
            handle,
        }
    }

    /// Synthesizes a batch of requests over a bounded worker pool,
    /// returning per-job results in request order.
    ///
    /// Jobs are isolated: an infeasible or failing request yields an `Err`
    /// at its position while the rest of the batch completes normally. All
    /// jobs share `cancel` (cancelling it stops the whole batch) and
    /// deliver their events — tagged with the job index in `JobStarted` /
    /// `Finished` — to the shared `sink`.
    ///
    /// Internally the batch is a thin client of a private
    /// [`SynthesisService`](crate::SynthesisService): the requests are
    /// submitted in order to a queue drained by `batch_workers` job slots,
    /// so they also share the service's worker pool and cache-snapshot
    /// store (transparently — results are bit-identical to standalone
    /// runs).
    pub fn synthesize_batch_observed(
        &self,
        requests: &[SynthesisRequest],
        sink: &dyn EventSink,
        cancel: &CancelToken,
    ) -> Vec<Result<SynthesisResult, SynthesisError>> {
        if requests.is_empty() {
            return Vec::new();
        }
        let default_workers = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let workers = self
            .batch_workers
            .unwrap_or(default_workers)
            .min(requests.len());
        let service = crate::SynthesisService::new(
            crate::ServiceConfig::default()
                .with_job_slots(workers)
                .with_queue_depth(requests.len()),
        );
        // Jobs deliver their (already job-tagged) events into one channel;
        // this thread forwards them to the caller's borrowed sink. The
        // channel closes once every job has finished (each job's sender
        // drops with its work), which ends the forwarding loop.
        let (tx, events) = mpsc::channel();
        let handles: Vec<crate::JobHandle> = requests
            .iter()
            .enumerate()
            .map(|(i, request)| {
                service
                    .submit_tagged(
                        request.clone(),
                        i,
                        std::sync::Arc::new(ChannelSink::new(tx.clone())),
                        cancel.clone(),
                    )
                    .expect("batch queue is sized to the batch")
            })
            .collect();
        drop(tx);
        for event in events {
            sink.emit(event);
        }
        let results = handles.iter().map(crate::JobHandle::await_result).collect();
        service.shutdown();
        results
    }

    /// [`synthesize_batch_observed`](Self::synthesize_batch_observed)
    /// without observation: no events, cancellable only by dropping the
    /// process, budgets still honored per job.
    pub fn synthesize_batch(
        &self,
        requests: &[SynthesisRequest],
    ) -> Vec<Result<SynthesisResult, SynthesisError>> {
        self.synthesize_batch_observed(requests, &crate::events::NullSink, &CancelToken::new())
    }
}

/// Handle to a spawned synthesis job: a live event stream, a cancellation
/// token, and the eventual result.
#[derive(Debug)]
pub struct SynthesisJob {
    events: mpsc::Receiver<SynthesisEvent>,
    cancel: CancelToken,
    handle: thread::JoinHandle<Result<SynthesisResult, SynthesisError>>,
}

impl SynthesisJob {
    /// The job's event stream. Iterating blocks until the next event and
    /// ends when the job finishes (the last event is
    /// [`SynthesisEvent::Finished`]); use
    /// [`try_iter`](mpsc::Receiver::try_iter) for non-blocking draining.
    pub fn events(&self) -> &mpsc::Receiver<SynthesisEvent> {
        &self.events
    }

    /// A clone of the job's cancellation token (usable from other threads).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Requests cooperative cancellation; the job returns
    /// [`SynthesisError::Cancelled`] shortly after.
    pub fn cancel(&self) {
        self.cancel.cancel();
    }

    /// Whether the job has finished (its result is ready without blocking).
    pub fn is_finished(&self) -> bool {
        self.handle.is_finished()
    }

    /// Waits for the job and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the job thread itself panicked (a bug, not a synthesis
    /// failure — infeasibility and cancellation come back as `Err`).
    pub fn join(self) -> Result<SynthesisResult, SynthesisError> {
        self.handle.join().expect("synthesis job thread panicked")
    }
}
