//! Synthesis options: everything a user can configure about the flow, with
//! paper-faithful defaults.

use std::time::Duration;

use pimsyn_arch::{HardwareParams, MacroMode, Watts};
use pimsyn_dse::{
    BackendKind, DesignSpace, DseConfig, EaConfig, EvalBackendConfig, EvalCacheConfig,
    ExploreBudget, Objective, SaConfig, WtDupStrategy,
};

/// How much search effort to spend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Effort {
    /// Reduced design space and small SA/EA budgets — seconds, for smoke
    /// runs, tests and interactive use.
    Fast,
    /// The paper's full Algorithm 1 traversal (36 outer points, 30 SA
    /// candidates, 3 DAC resolutions) — minutes.
    #[default]
    Paper,
}

/// Configuration for [`Synthesizer`](crate::Synthesizer).
///
/// # Example
///
/// ```
/// use pimsyn::{Effort, SynthesisOptions};
/// use pimsyn_arch::Watts;
///
/// let opts = SynthesisOptions::new(Watts(50.0))
///     .with_effort(Effort::Fast)
///     .with_seed(7)
///     .without_macro_sharing();
/// assert_eq!(opts.seed, 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisOptions {
    /// Total power constraint — a primary input of PIMSYN (Fig. 3).
    pub power_budget: Watts,
    /// Device/circuit constants (Table III defaults).
    pub hw: HardwareParams,
    /// Search effort preset.
    pub effort: Effort,
    /// Optional design-space override; `None` uses the effort preset's
    /// space. Useful to pin the PIM variables (e.g. large crossbars for
    /// ImageNet-scale classifiers).
    pub space: Option<DesignSpace>,
    /// Weight-duplication strategy (stage 1); the SA filter by default.
    pub strategy: WtDupStrategy,
    /// Optimization objective (power efficiency by default; EDP for
    /// Gibbon-style comparisons).
    pub objective: Objective,
    /// Identical or specialized macros (Fig. 8).
    pub macro_mode: MacroMode,
    /// Explore inter-layer macro sharing (Fig. 9).
    pub allow_macro_sharing: bool,
    /// Parallelize outer design points.
    pub parallel: bool,
    /// Base RNG seed (the whole flow is deterministic given the seed).
    pub seed: u64,
    /// Re-validate the winning architecture with the cycle-accurate engine.
    pub cycle_validation: bool,
    /// Images streamed through the pipeline during cycle validation (>= 1;
    /// more images sharpen the steady-state throughput estimate).
    pub cycle_images: usize,
    /// Wall-clock budget for the exploration. When it expires the search
    /// stops gracefully and returns the best implementation found so far.
    pub time_budget: Option<Duration>,
    /// Maximum candidate-architecture evaluations across the whole
    /// exploration; like [`time_budget`](Self::time_budget), exhaustion
    /// stops the search gracefully.
    pub max_evaluations: Option<usize>,
    /// Maximum *unique* evaluations (memo misses that actually run the
    /// scoring pipeline). With high cache-hit rates the scored-candidate
    /// budget and the work actually done diverge; this bounds the work.
    pub max_unique_evaluations: Option<usize>,
    /// Candidate-evaluation memoization (on by default). Caching is
    /// transparent: cached and uncached runs produce bit-identical results;
    /// hit statistics stream as
    /// [`SynthesisEvent::EvaluatorStats`](crate::SynthesisEvent::EvaluatorStats).
    pub eval_cache: EvalCacheConfig,
    /// Evaluation backend: where candidate scoring runs (inline by default,
    /// a thread pool, or `pimsyn --worker` subprocesses) plus the optional
    /// persistent cache file that warm-starts repeated runs. Every backend
    /// produces bit-identical results; only wall-clock differs.
    pub backend: EvalBackendConfig,
}

impl SynthesisOptions {
    /// Default base RNG seed. The whole flow is deterministic given the
    /// seed: two runs with identical options (and models) produce identical
    /// architectures, even with `parallel = true`.
    pub const DEFAULT_SEED: u64 = 0x9127_51AE;

    /// Paper-faithful options under the given power constraint.
    pub fn new(power_budget: Watts) -> Self {
        Self {
            power_budget,
            hw: HardwareParams::date24(),
            effort: Effort::Paper,
            space: None,
            strategy: WtDupStrategy::SimulatedAnnealing,
            objective: Objective::PowerEfficiency,
            macro_mode: MacroMode::Specialized,
            allow_macro_sharing: true,
            parallel: true,
            seed: Self::DEFAULT_SEED,
            cycle_validation: false,
            cycle_images: 3,
            time_budget: None,
            max_evaluations: None,
            max_unique_evaluations: None,
            eval_cache: EvalCacheConfig::default(),
            backend: EvalBackendConfig::default(),
        }
    }

    /// Fast-effort options (reduced space, small metaheuristic budgets).
    pub fn fast(power_budget: Watts) -> Self {
        Self {
            effort: Effort::Fast,
            parallel: false,
            ..Self::new(power_budget)
        }
    }

    /// Sets the search effort.
    pub fn with_effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    /// Sets the weight-duplication strategy.
    pub fn with_strategy(mut self, strategy: WtDupStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the traversed design space (otherwise the effort preset's).
    pub fn with_design_space(mut self, space: DesignSpace) -> Self {
        self.space = Some(space);
        self
    }

    /// Sets the optimization objective.
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets identical vs specialized macro mode.
    pub fn with_macro_mode(mut self, mode: MacroMode) -> Self {
        self.macro_mode = mode;
        self
    }

    /// Disables inter-layer macro sharing (Fig. 9's "without reuse" arm).
    pub fn without_macro_sharing(mut self) -> Self {
        self.allow_macro_sharing = false;
        self
    }

    /// Sets the base RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables final cycle-accurate validation with `images` pipelined
    /// inferences.
    pub fn with_cycle_validation(mut self, images: usize) -> Self {
        self.cycle_validation = true;
        self.cycle_images = images;
        self
    }

    /// Overrides the hardware parameters.
    pub fn with_hardware(mut self, hw: HardwareParams) -> Self {
        self.hw = hw;
        self
    }

    /// Bounds exploration wall-clock time; on expiry the search returns the
    /// best implementation found so far.
    pub fn with_time_budget(mut self, limit: Duration) -> Self {
        self.time_budget = Some(limit);
        self
    }

    /// Bounds total candidate-architecture evaluations.
    pub fn with_max_evaluations(mut self, n: usize) -> Self {
        self.max_evaluations = Some(n);
        self
    }

    /// Bounds unique candidate evaluations (memo misses).
    pub fn with_max_unique_evaluations(mut self, n: usize) -> Self {
        self.max_unique_evaluations = Some(n);
        self
    }

    /// Configures (or disables) the candidate-evaluation memo caches.
    pub fn with_eval_cache(mut self, cache: EvalCacheConfig) -> Self {
        self.eval_cache = cache;
        self
    }

    /// Selects the evaluation backend (inline, thread pool, subprocess).
    pub fn with_backend(mut self, kind: BackendKind) -> Self {
        self.backend.kind = kind;
        self
    }

    /// Persists the evaluation memo to `path` across runs: loaded (when its
    /// fingerprint matches the run) before the search, rewritten after it.
    pub fn with_eval_cache_file(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.backend.cache_file = Some(path.into());
        self
    }

    /// Overrides the subprocess worker executable (tests and embeddings;
    /// the CLI defaults to its own binary).
    pub fn with_worker_command(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.backend.worker_command = Some(path.into());
        self
    }

    /// Sets the file holding the shared token
    /// [`BackendKind::Remote`](pimsyn_dse::BackendKind::Remote) connections
    /// authenticate with (`pimsyn worker-serve --auth-token-file`).
    pub fn with_remote_token_file(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.backend.remote_token_file = Some(path.into());
        self
    }

    /// Lowers the configured budgets to the DSE layer (deadline anchored at
    /// the moment of the call).
    pub(crate) fn to_explore_budget(&self) -> ExploreBudget {
        let mut budget = ExploreBudget::unlimited();
        if let Some(limit) = self.time_budget {
            budget = budget.with_timeout(limit);
        }
        if let Some(n) = self.max_evaluations {
            budget = budget.with_max_evaluations(n);
        }
        if let Some(n) = self.max_unique_evaluations {
            budget = budget.with_max_unique_evaluations(n);
        }
        budget
    }

    /// Lowers to the DSE-layer configuration.
    pub(crate) fn to_dse_config(&self) -> DseConfig {
        let (space, sa, ea) = match self.effort {
            Effort::Fast => (DesignSpace::reduced(), SaConfig::fast(), EaConfig::fast()),
            Effort::Paper => (DesignSpace::paper(), SaConfig::paper(), EaConfig::paper()),
        };
        let space = self.space.clone().unwrap_or(space);
        DseConfig {
            total_power: self.power_budget,
            hw: self.hw.clone(),
            space,
            strategy: self.strategy.clone(),
            sa: SaConfig {
                seed: self.seed ^ 0x5A,
                ..sa
            },
            ea: EaConfig {
                seed: self.seed ^ 0xEA,
                allow_sharing: self.allow_macro_sharing,
                objective: self.objective,
                ..ea
            },
            macro_mode: self.macro_mode,
            parallel: self.parallel,
            eval_cache: self.eval_cache,
            backend: self.backend.clone(),
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let o = SynthesisOptions::new(Watts(10.0))
            .with_effort(Effort::Fast)
            .with_macro_mode(MacroMode::Identical)
            .without_macro_sharing()
            .with_cycle_validation(5)
            .with_seed(42);
        assert_eq!(o.effort, Effort::Fast);
        assert_eq!(o.macro_mode, MacroMode::Identical);
        assert!(!o.allow_macro_sharing);
        assert!(o.cycle_validation);
        assert_eq!(o.cycle_images, 5);
        assert_eq!(o.seed, 42);
    }

    #[test]
    fn backend_options_lower_to_dse_config_and_budget() {
        let o = SynthesisOptions::fast(Watts(8.0))
            .with_backend(BackendKind::Subprocess { workers: 2 })
            .with_eval_cache_file("/tmp/pimsyn-cache.json")
            .with_max_unique_evaluations(10);
        let cfg = o.to_dse_config();
        assert_eq!(cfg.backend.kind, BackendKind::Subprocess { workers: 2 });
        assert_eq!(
            cfg.backend.cache_file.as_deref(),
            Some(std::path::Path::new("/tmp/pimsyn-cache.json"))
        );
        let budget = o.to_explore_budget();
        assert_eq!(budget.max_unique_evaluations, Some(10));
        // Defaults stay inline with no persistence.
        let d = SynthesisOptions::new(Watts(8.0));
        assert_eq!(d.backend.kind, BackendKind::Inline);
        assert!(d.backend.cache_file.is_none());
    }

    #[test]
    fn dse_config_reflects_options() {
        let o = SynthesisOptions::fast(Watts(8.0)).without_macro_sharing();
        let cfg = o.to_dse_config();
        assert!(!cfg.ea.allow_sharing);
        assert_eq!(cfg.total_power, Watts(8.0));
        assert!(cfg.space.outer_len() < 36);
        let p = SynthesisOptions::new(Watts(8.0)).to_dse_config();
        assert_eq!(p.space.outer_len(), 36);
    }
}
