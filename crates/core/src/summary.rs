//! Machine-readable synthesis summaries: a flat, stable record of one
//! synthesis run, serializable to JSON for scripting and service
//! integration (`pimsyn --output json`).
//!
//! No external serialization framework is available offline, so the JSON
//! encoding is hand-rolled on top of the workspace's own
//! [`JsonValue`](pimsyn_model::json::JsonValue) document model (the same
//! one the model/hardware ingestion parsers use).

use std::fmt;

use pimsyn_dse::StopReason;
use pimsyn_model::json::JsonValue;

use crate::synthesis::SynthesisResult;

/// A flat summary of one synthesis run, designed for JSON output.
///
/// # Example
///
/// ```
/// use pimsyn::{SynthesisOptions, SynthesisSummary, Synthesizer};
/// use pimsyn_arch::Watts;
/// use pimsyn_model::zoo;
///
/// # fn main() -> Result<(), pimsyn::SynthesisError> {
/// let model = zoo::alexnet_cifar(10);
/// let opts = SynthesisOptions::fast(Watts(6.0)).with_seed(3);
/// let result = Synthesizer::new(opts).synthesize(&model)?;
/// let summary = SynthesisSummary::from_result(&result);
/// let json = summary.to_json().to_string();
/// assert!(json.contains("\"model\""));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisSummary {
    /// Model name.
    pub model: String,
    /// Total power constraint in watts.
    pub power_budget_w: f64,
    /// Analytic power efficiency in TOPS/W (the optimized objective).
    pub efficiency_tops_per_watt: f64,
    /// Peak power efficiency in TOPS/W (Table IV metric).
    pub peak_efficiency_tops_per_watt: f64,
    /// Effective throughput in ops/s.
    pub throughput_ops: f64,
    /// Single-inference latency in seconds.
    pub latency_s: f64,
    /// Crossbar size (rows = columns).
    pub crossbar_size: usize,
    /// ReRAM cell resolution in bits.
    pub cell_bits: u32,
    /// DAC resolution in bits.
    pub dac_bits: u32,
    /// Share of power given to ReRAM arrays.
    pub ratio_rram: f64,
    /// Number of macros.
    pub macro_count: usize,
    /// Total crossbars.
    pub crossbar_count: usize,
    /// Per-layer weight-duplication factors.
    pub wt_dup: Vec<usize>,
    /// Candidate architectures evaluated during exploration.
    pub evaluations: usize,
    /// Wall-clock synthesis time in seconds.
    pub elapsed_s: f64,
    /// Why the exploration ended.
    pub stop_reason: StopReason,
    /// Whether a cycle-accurate validation report is included.
    pub cycle_validated: bool,
    /// Cycle-accurate efficiency (TOPS/W), when validated.
    pub cycle_efficiency_tops_per_watt: Option<f64>,
}

impl SynthesisSummary {
    /// Summarizes a synthesis result.
    pub fn from_result(result: &SynthesisResult) -> Self {
        let arch = &result.architecture;
        Self {
            model: result.model.name().to_string(),
            power_budget_w: arch.power_budget.value(),
            efficiency_tops_per_watt: result.analytic.efficiency_tops_per_watt(),
            peak_efficiency_tops_per_watt: result.peak_efficiency(),
            throughput_ops: result.analytic.throughput_ops,
            latency_s: result.analytic.latency.value(),
            crossbar_size: arch.crossbar.size(),
            cell_bits: arch.crossbar.cell_bits(),
            dac_bits: arch.dac.bits(),
            ratio_rram: arch.ratio_rram,
            macro_count: arch.macro_count(),
            crossbar_count: arch.crossbar_count(),
            wt_dup: result.wt_dup.clone(),
            evaluations: result.evaluations,
            elapsed_s: result.elapsed.as_secs_f64(),
            stop_reason: result.stop_reason,
            cycle_validated: result.cycle.is_some(),
            cycle_efficiency_tops_per_watt: result
                .cycle
                .as_ref()
                .map(|r| r.efficiency_tops_per_watt()),
        }
    }

    /// Renders the summary as a JSON document.
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = vec![
            ("model".into(), JsonValue::String(self.model.clone())),
            (
                "power_budget_w".into(),
                JsonValue::Number(self.power_budget_w),
            ),
            (
                "efficiency_tops_per_watt".into(),
                JsonValue::Number(self.efficiency_tops_per_watt),
            ),
            (
                "peak_efficiency_tops_per_watt".into(),
                JsonValue::Number(self.peak_efficiency_tops_per_watt),
            ),
            (
                "throughput_ops".into(),
                JsonValue::Number(self.throughput_ops),
            ),
            ("latency_s".into(), JsonValue::Number(self.latency_s)),
            (
                "crossbar_size".into(),
                JsonValue::Number(self.crossbar_size as f64),
            ),
            ("cell_bits".into(), JsonValue::Number(self.cell_bits as f64)),
            ("dac_bits".into(), JsonValue::Number(self.dac_bits as f64)),
            ("ratio_rram".into(), JsonValue::Number(self.ratio_rram)),
            (
                "macro_count".into(),
                JsonValue::Number(self.macro_count as f64),
            ),
            (
                "crossbar_count".into(),
                JsonValue::Number(self.crossbar_count as f64),
            ),
            (
                "wt_dup".into(),
                JsonValue::Array(
                    self.wt_dup
                        .iter()
                        .map(|&d| JsonValue::Number(d as f64))
                        .collect(),
                ),
            ),
            (
                "evaluations".into(),
                JsonValue::Number(self.evaluations as f64),
            ),
            ("elapsed_s".into(), JsonValue::Number(self.elapsed_s)),
            (
                "stop_reason".into(),
                JsonValue::String(self.stop_reason.to_string()),
            ),
            (
                "cycle_validated".into(),
                JsonValue::Bool(self.cycle_validated),
            ),
        ];
        if let Some(eff) = self.cycle_efficiency_tops_per_watt {
            fields.push((
                "cycle_efficiency_tops_per_watt".into(),
                JsonValue::Number(eff),
            ));
        }
        JsonValue::Object(fields)
    }
}

impl fmt::Display for SynthesisSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SynthesisOptions;
    use crate::synthesis::Synthesizer;
    use pimsyn_arch::Watts;
    use pimsyn_model::zoo;

    #[test]
    fn summary_round_trips_through_json() {
        let model = zoo::alexnet_cifar(10);
        let opts = SynthesisOptions::fast(Watts(6.0)).with_seed(3);
        let result = Synthesizer::new(opts).synthesize(&model).unwrap();
        let summary = SynthesisSummary::from_result(&result);
        let text = summary.to_string();
        let parsed = JsonValue::parse(&text).expect("summary is valid JSON");
        assert_eq!(
            parsed.get("model").and_then(JsonValue::as_str),
            Some("alexnet-cifar")
        );
        assert_eq!(
            parsed.get("stop_reason").and_then(JsonValue::as_str),
            Some("completed")
        );
        assert!(
            parsed
                .get("efficiency_tops_per_watt")
                .and_then(JsonValue::as_f64)
                .unwrap()
                > 0.0
        );
        assert_eq!(
            parsed
                .get("wt_dup")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            model.weight_layer_count()
        );
        assert_eq!(
            parsed.get("cycle_validated").and_then(JsonValue::as_bool),
            Some(false)
        );
        assert!(parsed.get("cycle_efficiency_tops_per_watt").is_none());
    }
}
