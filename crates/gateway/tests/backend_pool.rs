//! The service's shared subprocess worker pool, exercised end to end.
//!
//! This test lives in the `pimsyn-gateway` crate — the workspace's binary
//! crate — so `CARGO_BIN_EXE_pimsyn` points at the real CLI binary (which
//! doubles as the `--worker` executable).

use pimsyn::{
    BackendKind, ServiceConfig, SynthesisOptions, SynthesisRequest, SynthesisService, Synthesizer,
};
use pimsyn_arch::Watts;
use pimsyn_model::zoo;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_pimsyn");

fn fast_request(seed: u64) -> SynthesisRequest {
    SynthesisRequest::new(
        zoo::alexnet_cifar(10),
        SynthesisOptions::fast(Watts(9.0)).with_seed(seed),
    )
}

/// N sequential jobs through one service spawn at most the configured pool
/// width of worker processes — the pool is leased and re-sessioned per job,
/// not re-spawned — and every job stays bit-identical to an inline run.
#[test]
fn service_jobs_reuse_the_shared_worker_pool() {
    const POOL_WIDTH: usize = 2;
    const JOBS: usize = 3;
    let service = SynthesisService::new(ServiceConfig::default().with_job_slots(1));
    assert_eq!(service.worker_spawns(), 0);
    let subprocess_request = |seed: u64| {
        let mut request = fast_request(seed);
        request.options = request
            .options
            .with_backend(BackendKind::Subprocess {
                workers: POOL_WIDTH,
            })
            .with_worker_command(WORKER_BIN);
        request
    };
    let handles: Vec<_> = (0..JOBS)
        .map(|i| {
            service
                .submit(subprocess_request(7 + i as u64))
                .expect("queue has room")
        })
        .collect();
    for (i, handle) in handles.iter().enumerate() {
        let via_service = handle.await_result().expect("feasible");
        // Each job's result is bit-identical to a standalone inline run:
        // the leased workers re-opened a session with this job's model and
        // power, so recycling processes never leaks stale run state.
        let inline = Synthesizer::new(fast_request(7 + i as u64).options)
            .synthesize(&zoo::alexnet_cifar(10))
            .expect("inline synthesis");
        assert_eq!(via_service.wt_dup, inline.wt_dup, "job {i}");
        assert_eq!(via_service.architecture, inline.architecture, "job {i}");
        assert_eq!(via_service.analytic, inline.analytic, "job {i}");
        assert_eq!(via_service.evaluations, inline.evaluations, "job {i}");
        assert_eq!(via_service.history, inline.history, "job {i}");
    }
    let spawns = service.worker_spawns();
    assert!(spawns >= 1, "subprocess jobs must actually use the pool");
    assert!(
        spawns <= POOL_WIDTH,
        "{JOBS} jobs spawned {spawns} workers; the shared pool must cap at \
         the pool width ({POOL_WIDTH}), not jobs x width"
    );
    service.shutdown();
}
