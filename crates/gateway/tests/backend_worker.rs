//! End-to-end exercise of the subprocess evaluation backend and the CLI
//! surface around it: `--backend subprocess:N` must be bit-identical to
//! inline scoring, worker failures must degrade gracefully, the persistent
//! cache must warm-start a second CLI invocation with an identical summary,
//! and `--quiet` must silence every progress line on stderr.
//!
//! These tests live in the `pimsyn-gateway` crate — the workspace's binary
//! crate — so `CARGO_BIN_EXE_pimsyn` points at the real CLI binary (which
//! doubles as the `--worker` executable).

use std::path::Path;
use std::process::Command;

use pimsyn::{BackendKind, SynthesisOptions, Synthesizer, Watts};
use pimsyn_model::json::JsonValue;
use pimsyn_model::zoo;

const WORKER_BIN: &str = env!("CARGO_BIN_EXE_pimsyn");

fn base_options() -> SynthesisOptions {
    SynthesisOptions::fast(Watts(9.0)).with_seed(7)
}

#[test]
fn subprocess_backend_is_bit_identical_to_inline() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    let subprocess = Synthesizer::new(
        base_options()
            .with_backend(BackendKind::Subprocess { workers: 2 })
            .with_worker_command(WORKER_BIN),
    )
    .synthesize(&model)
    .unwrap();
    assert_eq!(inline.wt_dup, subprocess.wt_dup);
    assert_eq!(inline.architecture, subprocess.architecture);
    assert_eq!(inline.analytic, subprocess.analytic);
    assert_eq!(inline.evaluations, subprocess.evaluations);
    assert_eq!(inline.history, subprocess.history);
    assert_eq!(inline.stop_reason, subprocess.stop_reason);
}

#[test]
fn missing_worker_executable_degrades_to_inline_scoring() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    // The worker command does not exist: every spawn fails, every batch
    // falls back inline, and the outcome is still bit-identical.
    let broken = Synthesizer::new(
        base_options()
            .with_backend(BackendKind::Subprocess { workers: 2 })
            .with_worker_command("/nonexistent/pimsyn-worker-binary"),
    )
    .synthesize(&model)
    .unwrap();
    assert_eq!(inline.wt_dup, broken.wt_dup);
    assert_eq!(inline.architecture, broken.architecture);
    assert_eq!(inline.analytic, broken.analytic);
    assert_eq!(inline.evaluations, broken.evaluations);
}

#[test]
fn cache_file_without_cache_is_rejected_as_invalid_options() {
    let model = zoo::alexnet_cifar(10);
    let result = Synthesizer::new(
        base_options()
            .with_eval_cache(pimsyn::EvalCacheConfig::disabled())
            .with_eval_cache_file("/tmp/pimsyn-never-written.json"),
    )
    .synthesize(&model);
    assert!(
        matches!(result, Err(pimsyn::SynthesisError::InvalidOptions { .. })),
        "library must surface the same contract the CLI enforces"
    );
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(WORKER_BIN)
        .args(args)
        .output()
        .expect("CLI run");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Drops the wall-clock field, the only summary field allowed to differ
/// between repeated runs.
fn summary_without_elapsed(stdout: &str) -> Vec<(String, String)> {
    let doc = JsonValue::parse(stdout.trim()).expect("summary is valid JSON");
    doc.as_object()
        .expect("summary is an object")
        .iter()
        .filter(|(k, _)| k != "elapsed_s")
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect()
}

#[test]
fn cli_subprocess_backend_matches_inline_summary() {
    let common = [
        "--model",
        "alexnet-cifar",
        "--power",
        "9",
        "--seed",
        "7",
        "--output",
        "json",
        "--quiet",
    ];
    let (inline_out, _, ok) = run_cli(&common);
    assert!(ok, "inline run failed");
    let mut with_backend: Vec<&str> = common.to_vec();
    with_backend.extend(["--backend", "subprocess:2"]);
    let (sub_out, _, ok) = run_cli(&with_backend);
    assert!(ok, "subprocess run failed");
    assert_eq!(
        summary_without_elapsed(&inline_out),
        summary_without_elapsed(&sub_out),
        "subprocess summary must equal the inline one"
    );
}

#[test]
fn cli_warm_start_reports_cache_hits_and_identical_summary() {
    let cache = std::env::temp_dir().join(format!("pimsyn-cli-warm-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let cache_str = cache.to_str().unwrap();
    let args = [
        "--model",
        "alexnet-cifar",
        "--power",
        "9",
        "--seed",
        "7",
        "--output",
        "json",
        "--eval-cache-file",
        cache_str,
    ];
    let (cold_out, cold_err, ok) = run_cli(&args);
    assert!(ok, "cold run failed: {cold_err}");
    assert!(
        Path::new(cache_str).exists(),
        "cache file must be written on flush"
    );
    assert!(
        !cold_err.contains("warm-started"),
        "cold run must not claim a warm start: {cold_err}"
    );
    let (warm_out, warm_err, ok) = run_cli(&args);
    assert!(ok, "warm run failed: {warm_err}");
    assert_eq!(
        summary_without_elapsed(&cold_out),
        summary_without_elapsed(&warm_out),
        "warm-started run must produce an identical summary"
    );
    assert!(
        warm_err.contains("warm-started from the cache file"),
        "warm run must report the preload: {warm_err}"
    );
    // The evaluator line reports the hit rate; a warm start on the same
    // request must serve at least half of all scoring requests from cache.
    let hit_rate: f64 = warm_err
        .lines()
        .find(|l| l.contains("% hit rate"))
        .and_then(|l| {
            let end = l.find("% hit rate")?;
            let start = l[..end].rfind('(')? + 1;
            l[start..end].trim().parse().ok()
        })
        .expect("stats line with hit rate");
    assert!(
        hit_rate >= 50.0,
        "warm start must report >=50% cache hits, got {hit_rate}% in: {warm_err}"
    );
    let _ = std::fs::remove_file(&cache);
}

#[test]
fn quiet_flag_silences_stderr_completely() {
    // The full progress surface: live lines, the evaluator stats summary,
    // and the cache warm-start note must all respect --quiet.
    let cache = std::env::temp_dir().join(format!("pimsyn-cli-quiet-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&cache);
    let args = [
        "--model",
        "alexnet-cifar",
        "--power",
        "9",
        "--seed",
        "7",
        "--output",
        "json",
        "--quiet",
        "--eval-cache-file",
        cache.to_str().unwrap(),
    ];
    let (_, cold_err, ok) = run_cli(&args);
    assert!(ok);
    assert!(
        cold_err.is_empty(),
        "--quiet must silence stderr, got: {cold_err}"
    );
    // Warm-start run: the preload note must stay silent too.
    let (_, warm_err, ok) = run_cli(&args);
    assert!(ok);
    assert!(
        warm_err.is_empty(),
        "--quiet must silence the warm-start note, got: {warm_err}"
    );
    let _ = std::fs::remove_file(&cache);
}
