//! End-to-end exercise of the HTTP gateway over raw TCP sockets: REST job
//! lifecycle with bit-identical results, bearer-token tenancy, typed quota
//! rejections, event streaming, Prometheus metrics, and graceful drain.

use std::collections::HashMap;
use std::net::TcpListener;
use std::sync::Arc;

use pimsyn::{ServiceConfig, SynthesisService, Synthesizer};
use pimsyn_gateway::http::roundtrip;
use pimsyn_gateway::{
    parse_http_job, serve_gateway_in_background, GatewayConfig, GatewayHandle, TenantRegistry,
};
use pimsyn_model::json::JsonValue;

fn start_gateway(config: GatewayConfig, slots: usize) -> (GatewayHandle, String) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let service = Arc::new(SynthesisService::new(
        ServiceConfig::default()
            .with_job_slots(slots)
            .with_scheduling(pimsyn::SchedulingPolicy::WeightedFair),
    ));
    let handle =
        serve_gateway_in_background(listener, service, |_job| {}, config).expect("gateway");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn get(addr: &str, path: &str, auth: Option<&str>) -> (u16, HashMap<String, String>, Vec<u8>) {
    request(addr, "GET", path, auth, None)
}

fn request(
    addr: &str,
    method: &str,
    path: &str,
    auth: Option<&str>,
    body: Option<&str>,
) -> (u16, HashMap<String, String>, Vec<u8>) {
    let mut raw = format!("{method} {path} HTTP/1.1\r\nHost: gw\r\n");
    if let Some(key) = auth {
        raw.push_str(&format!("Authorization: Bearer {key}\r\n"));
    }
    match body {
        Some(body) => raw.push_str(&format!("Content-Length: {}\r\n\r\n{body}", body.len())),
        None => raw.push_str("\r\n"),
    }
    roundtrip(addr, raw.as_bytes()).expect("http round trip")
}

fn json(body: &[u8]) -> JsonValue {
    JsonValue::parse(std::str::from_utf8(body).expect("utf8 body")).expect("json body")
}

const TINY_JOB: &str = r#"{"model": "alexnet-cifar", "power": 9, "seed": 7, "max_evals": 200}"#;

/// A queued job's event stream is silent until the slot frees up; the
/// gateway must keep such streams alive with periodic heartbeat frames
/// (SSE comment lines / NDJSON `{"heartbeat":true}` objects) so reverse
/// proxies with idle timeouts don't sever them, and heartbeats must never
/// corrupt either framing.
#[test]
fn idle_event_streams_carry_heartbeats() {
    let (handle, addr) = start_gateway(
        GatewayConfig::new()
            .with_quiet(true)
            .with_heartbeat(std::time::Duration::from_millis(10)),
        1,
    );
    // Fill the single slot's queue with enough work that the observed job
    // stays queued — and its stream silent — for many heartbeat intervals.
    const FILLER_JOB: &str =
        r#"{"model": "vgg16-cifar", "power": 15, "seed": 3, "max_evals": 2000}"#;
    for _ in 0..12 {
        let (status, _, body) = request(&addr, "POST", "/v1/jobs", None, Some(FILLER_JOB));
        assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    }
    let (status, _, body) = request(&addr, "POST", "/v1/jobs", None, Some(TINY_JOB));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let queued = json(&body).get("id").and_then(JsonValue::as_usize).unwrap();

    // Subscribe in both framings while the job is still queued; each read
    // blocks until the stream completes (queue wait included).
    let sse_addr = addr.clone();
    let sse =
        std::thread::spawn(move || get(&sse_addr, &format!("/v1/jobs/{queued}/events"), None));
    let nd_addr = addr.clone();
    let nd = std::thread::spawn(move || {
        get(
            &nd_addr,
            &format!("/v1/jobs/{queued}/events?format=ndjson"),
            None,
        )
    });

    let (status, _, body) = sse.join().expect("sse subscriber");
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).unwrap();
    assert!(
        text.contains(": heartbeat\n\n"),
        "idle SSE stream must carry comment keep-alives: {text}"
    );
    assert!(text.contains("data: "), "{text}");
    assert!(text.trim_end().ends_with("event: done\ndata: {}"), "{text}");

    let (status, _, body) = nd.join().expect("ndjson subscriber");
    assert_eq!(status, 200);
    let lines: Vec<JsonValue> = std::str::from_utf8(&body)
        .unwrap()
        .lines()
        .map(|l| JsonValue::parse(l).expect("every line stays valid JSON"))
        .collect();
    assert!(
        lines
            .iter()
            .any(|l| l.get("heartbeat").and_then(JsonValue::as_bool) == Some(true)),
        "idle NDJSON stream must carry heartbeat lines"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.get("type").and_then(JsonValue::as_str) == Some("finished")),
        "real events must still arrive after heartbeats"
    );
    assert_eq!(
        lines[lines.len() - 1]
            .get("done")
            .and_then(JsonValue::as_bool),
        Some(true)
    );

    let (status, _, _) = request(&addr, "POST", "/v1/drain", None, None);
    assert_eq!(status, 202);
    handle.join().expect("gateway exits cleanly after drain");
}

/// Submit over raw HTTP, poll, block for the result, and compare it field
/// by field (modulo `elapsed_s`) with a direct in-process run of the same
/// payload; then stream the finished job's events in both framings.
#[test]
fn http_round_trip_matches_direct_run_bit_identically() {
    let (handle, addr) = start_gateway(GatewayConfig::new().with_quiet(true), 1);

    let (status, _, body) = request(&addr, "POST", "/v1/jobs", None, Some(TINY_JOB));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let id = json(&body).get("id").and_then(JsonValue::as_usize).unwrap();

    // Poll mode answers immediately with the job's current phase.
    let (status, _, _body) = get(&addr, &format!("/v1/jobs/{id}/result?wait=0"), None);
    assert!(status == 202 || status == 200, "{status}");

    let (status, _, body) = get(&addr, &format!("/v1/jobs/{id}"), None);
    assert_eq!(status, 200);
    let phase = json(&body)
        .get("status")
        .and_then(JsonValue::as_str)
        .unwrap()
        .to_string();
    assert!(["queued", "running", "finished"].contains(&phase.as_str()));

    // Blocking result: the bare summary document.
    let (status, headers, body) = get(&addr, &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("application/json")
    );
    let served = json(&body);

    let direct_request = parse_http_job(TINY_JOB.as_bytes()).expect("payload");
    let direct = Synthesizer::new(direct_request.options)
        .synthesize(&direct_request.model)
        .expect("direct synthesis");
    let direct_summary = pimsyn::SynthesisSummary::from_result(&direct).to_json();
    let fields = |doc: &JsonValue| -> Vec<(String, String)> {
        doc.as_object()
            .expect("summary object")
            .iter()
            .filter(|(k, _)| k != "elapsed_s")
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect()
    };
    assert_eq!(
        fields(&served),
        fields(&direct_summary),
        "HTTP-submitted job must match the direct run modulo elapsed_s"
    );

    // NDJSON framing: one JSON document per line, done marker last.
    let (status, headers, body) = get(&addr, &format!("/v1/jobs/{id}/events?format=ndjson"), None);
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("application/x-ndjson")
    );
    let lines: Vec<JsonValue> = std::str::from_utf8(&body)
        .unwrap()
        .lines()
        .map(|l| JsonValue::parse(l).expect("ndjson line"))
        .collect();
    assert!(lines.len() >= 3, "replay must include the full event log");
    assert_eq!(
        lines[0].get("type").and_then(JsonValue::as_str),
        Some("job_started")
    );
    assert_eq!(
        lines[lines.len() - 2]
            .get("type")
            .and_then(JsonValue::as_str),
        Some("finished")
    );
    assert_eq!(
        lines[lines.len() - 1]
            .get("done")
            .and_then(JsonValue::as_bool),
        Some(true)
    );

    // SSE framing: `data:` frames, then the `done` event.
    let (status, headers, body) = get(&addr, &format!("/v1/jobs/{id}/events"), None);
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("text/event-stream")
    );
    let text = std::str::from_utf8(&body).unwrap();
    assert!(text.starts_with("data: "), "{text}");
    assert!(text.trim_end().ends_with("event: done\ndata: {}"), "{text}");

    // Unknown ids and unknown routes are 404s; bad payloads are 400s.
    let (status, _, _) = get(&addr, "/v1/jobs/999999", None);
    assert_eq!(status, 404);
    let (status, _, _) = get(&addr, "/v1/nope", None);
    assert_eq!(status, 404);
    let (status, _, body) = request(&addr, "POST", "/v1/jobs", None, Some(r#"{"power": 9}"#));
    assert_eq!(status, 400);
    assert_eq!(
        json(&body).get("code").and_then(JsonValue::as_str),
        Some("bad_job")
    );
    let (status, _, _) = request(&addr, "PUT", &format!("/v1/jobs/{id}"), None, None);
    assert_eq!(status, 405);

    // Drain: accepted immediately; the serve loop exits once idle.
    let (status, _, body) = request(&addr, "POST", "/v1/drain", None, None);
    assert_eq!(status, 202);
    assert_eq!(
        json(&body).get("draining").and_then(JsonValue::as_bool),
        Some(true)
    );
    handle.join().expect("gateway exits cleanly after drain");
}

/// With a tenant registry installed, `/v1/*` requires a known bearer key,
/// jobs are invisible across tenants, and a tenant at its queued quota
/// gets a 429 with the typed `quota_exceeded` body.
#[test]
fn bearer_auth_tenancy_and_quotas() {
    let tenants = TenantRegistry::parse(
        r#"{"tenants": [
            {"name": "alice", "key": "k-alice", "weight": 2},
            {"name": "bob", "key": "k-bob", "max_queued": 0}
        ]}"#,
    )
    .expect("registry");
    let (handle, addr) = start_gateway(
        GatewayConfig::new().with_tenants(tenants).with_quiet(true),
        1,
    );

    // No key / an unknown key -> 401 with a WWW-Authenticate challenge.
    let (status, headers, body) = request(&addr, "POST", "/v1/jobs", None, Some(TINY_JOB));
    assert_eq!(status, 401);
    assert_eq!(
        json(&body).get("code").and_then(JsonValue::as_str),
        Some("auth_failed")
    );
    assert_eq!(
        headers.get("www-authenticate").map(String::as_str),
        Some("Bearer")
    );
    let (status, _, _) = request(&addr, "POST", "/v1/jobs", Some("k-eve"), Some(TINY_JOB));
    assert_eq!(status, 401);

    // `/metrics` and `/healthz` stay open for scrapers and probes.
    let (status, _, _) = get(&addr, "/healthz", None);
    assert_eq!(status, 200);
    let (status, _, _) = get(&addr, "/metrics", None);
    assert_eq!(status, 200);

    // Alice submits; Bob can neither see nor cancel her job.
    let (status, _, body) = request(&addr, "POST", "/v1/jobs", Some("k-alice"), Some(TINY_JOB));
    assert_eq!(status, 202, "{}", String::from_utf8_lossy(&body));
    let id = json(&body).get("id").and_then(JsonValue::as_usize).unwrap();
    let (status, _, _) = get(&addr, &format!("/v1/jobs/{id}"), Some("k-bob"));
    assert_eq!(status, 404, "other tenants' jobs must look nonexistent");
    let (status, _, _) = request(
        &addr,
        "DELETE",
        &format!("/v1/jobs/{id}"),
        Some("k-bob"),
        None,
    );
    assert_eq!(status, 404);
    let (status, _, _) = get(&addr, &format!("/v1/jobs/{id}"), Some("k-alice"));
    assert_eq!(status, 200);

    // Bob's quota (max_queued = 0) rejects his submission outright, with
    // the typed body and a Retry-After hint.
    let (status, headers, body) = request(&addr, "POST", "/v1/jobs", Some("k-bob"), Some(TINY_JOB));
    assert_eq!(status, 429);
    let doc = json(&body);
    assert_eq!(
        doc.get("code").and_then(JsonValue::as_str),
        Some("quota_exceeded")
    );
    assert_eq!(doc.get("tenant").and_then(JsonValue::as_str), Some("bob"));
    assert_eq!(headers.get("retry-after").map(String::as_str), Some("1"));

    // Alice's job still runs to completion for her.
    let (status, _, _) = get(&addr, &format!("/v1/jobs/{id}/result"), Some("k-alice"));
    assert_eq!(status, 200);

    let (status, _, _) = request(&addr, "POST", "/v1/drain", Some("k-alice"), None);
    assert_eq!(status, 202);
    handle.join().expect("gateway exits cleanly after drain");
}

/// A gateway started with a keys file follows rotations of that file
/// without a restart: a newly added key starts authenticating, a removed
/// key starts getting 401s, and a malformed rewrite keeps the last good
/// key set in force.
#[test]
fn keys_file_rotation_applies_without_restart() {
    let keys_path =
        std::env::temp_dir().join(format!("pimsyn-gateway-keys-{}.json", std::process::id()));
    std::fs::write(
        &keys_path,
        r#"{"tenants": [{"name": "alice", "key": "k-alice"}]}"#,
    )
    .unwrap();
    let tenants = TenantRegistry::load(keys_path.to_str().unwrap()).expect("initial keys");
    let (handle, addr) = start_gateway(
        GatewayConfig::new()
            .with_tenants(tenants)
            .with_keys_file(keys_path.to_str().unwrap())
            .with_quiet(true),
        1,
    );

    // Authenticated requests reach the API (404: no such job yet);
    // unknown keys are challenged.
    let (status, _, _) = get(&addr, "/v1/jobs/1", Some("k-alice"));
    assert_eq!(status, 404);
    let (status, _, _) = get(&addr, "/v1/jobs/1", Some("k-bob"));
    assert_eq!(status, 401);

    // Rotate: bob in, alice out. The very next request sees the new set.
    std::fs::write(
        &keys_path,
        r#"{"tenants": [{"name": "bob", "key": "k-bob", "weight": 3}]}"#,
    )
    .unwrap();
    let (status, _, _) = get(&addr, "/v1/jobs/1", Some("k-bob"));
    assert_eq!(status, 404, "a newly added key must authenticate");
    let (status, _, _) = get(&addr, "/v1/jobs/1", Some("k-alice"));
    assert_eq!(status, 401, "a removed key must stop authenticating");

    // A malformed rewrite must not lock every tenant out: the last good
    // key set stays in force until the file parses again.
    std::fs::write(&keys_path, "{definitely not json").unwrap();
    let (status, _, _) = get(&addr, "/v1/jobs/1", Some("k-bob"));
    assert_eq!(status, 404, "last good keys must survive a bad rewrite");

    let (status, _, _) = request(&addr, "POST", "/v1/drain", Some("k-bob"), None);
    assert_eq!(status, 202);
    handle.join().expect("gateway exits cleanly after drain");
    let _ = std::fs::remove_file(&keys_path);
}

/// With a worker registry attached, `/metrics` exposes the fleet: the
/// registered-worker gauge, churn counters, and per-worker slot gauges.
#[test]
fn metrics_expose_worker_registry_state() {
    let registry = pimsyn::WorkerRegistry::new(pimsyn::DEFAULT_HEARTBEAT_INTERVAL, None, true);
    registry.announce("10.0.0.7:9900", 4, 2);
    registry.announce("10.0.0.8:9900", 2, 1);
    registry.drain("10.0.0.8:9900");
    let (handle, addr) = start_gateway(
        GatewayConfig::new()
            .with_worker_registry(registry)
            .with_quiet(true),
        1,
    );

    let (status, _, body) = get(&addr, "/metrics", None);
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&body).expect("metrics text");
    for family in [
        "pimsyn_gateway_registry_workers",
        "pimsyn_gateway_registry_announces_total",
        "pimsyn_gateway_registry_heartbeats_total",
        "pimsyn_gateway_registry_evictions_total",
        "pimsyn_gateway_registry_drains_total",
        "pimsyn_gateway_registry_worker_slots",
    ] {
        assert!(text.contains(&format!("# HELP {family} ")), "{family}");
        assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
    }
    assert!(text.contains("pimsyn_gateway_registry_workers 1"), "{text}");
    assert!(
        text.contains("pimsyn_gateway_registry_announces_total 2"),
        "{text}"
    );
    assert!(
        text.contains("pimsyn_gateway_registry_drains_total 1"),
        "{text}"
    );
    assert!(
        text.contains(
            "pimsyn_gateway_registry_worker_slots{addr=\"10.0.0.7:9900\",proto_max=\"2\"} 4"
        ),
        "{text}"
    );

    let (status, _, _) = request(&addr, "POST", "/v1/drain", None, None);
    assert_eq!(status, 202);
    handle.join().expect("gateway exits cleanly after drain");
}

/// `/metrics` renders valid Prometheus text: every family has HELP/TYPE,
/// and after one finished job the counters, gauges and the latency
/// histogram are populated.
#[test]
fn metrics_expose_counters_gauges_and_histograms() {
    let (handle, addr) = start_gateway(GatewayConfig::new().with_quiet(true), 1);

    let (status, _, body) = request(&addr, "POST", "/v1/jobs", None, Some(TINY_JOB));
    assert_eq!(status, 202);
    let id = json(&body).get("id").and_then(JsonValue::as_usize).unwrap();
    let (status, _, _) = get(&addr, &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 200);

    let (status, headers, body) = get(&addr, "/metrics", None);
    assert_eq!(status, 200);
    assert_eq!(
        headers.get("content-type").map(String::as_str),
        Some("text/plain; version=0.0.4")
    );
    let text = std::str::from_utf8(&body).expect("metrics text");
    for family in [
        "pimsyn_gateway_http_requests_total",
        "pimsyn_gateway_jobs_submitted_total",
        "pimsyn_gateway_jobs_finished_total",
        "pimsyn_gateway_job_latency_seconds",
        "pimsyn_gateway_evaluations_scored_total",
        "pimsyn_gateway_queue_depth",
        "pimsyn_gateway_running_jobs",
        "pimsyn_gateway_draining",
        "pimsyn_gateway_worker_spawns_total",
    ] {
        assert!(text.contains(&format!("# HELP {family} ")), "{family}");
        assert!(text.contains(&format!("# TYPE {family} ")), "{family}");
    }
    assert!(
        text.contains("pimsyn_gateway_jobs_submitted_total{tenant=\"\"} 1"),
        "anonymous submission must be counted:\n{text}"
    );
    assert!(
        text.contains("pimsyn_gateway_jobs_finished_total{tenant=\"\"} 1"),
        "finished job must be counted:\n{text}"
    );
    assert!(
        text.contains("pimsyn_gateway_job_latency_seconds_count 1"),
        "latency histogram must have one observation:\n{text}"
    );
    assert!(
        text.contains("pimsyn_gateway_http_requests_total{route=\"/v1/jobs\",code=\"202\"} 1"),
        "request counter must label route patterns:\n{text}"
    );
    assert!(text.contains("pimsyn_gateway_draining 0"), "{text}");

    let (status, _, _) = request(&addr, "POST", "/v1/drain", None, None);
    assert_eq!(status, 202);
    handle.join().expect("gateway exits cleanly after drain");
}

/// Submissions racing a drain lose cleanly: once `/v1/drain` is accepted,
/// a new `POST /v1/jobs` is refused with the typed 503 while the accepted
/// job still runs to completion.
#[test]
fn drain_refuses_new_work_but_finishes_accepted_jobs() {
    let (handle, addr) = start_gateway(GatewayConfig::new().with_quiet(true), 1);

    // A slower job (no eval bound) so the drain window is observable.
    let job = r#"{"model": "alexnet-cifar", "power": 9, "seed": 5}"#;
    let (status, _, body) = request(&addr, "POST", "/v1/jobs", None, Some(job));
    assert_eq!(status, 202);
    let id = json(&body).get("id").and_then(JsonValue::as_usize).unwrap();

    let (status, _, _) = request(&addr, "POST", "/v1/drain", None, None);
    assert_eq!(status, 202);
    let (status, _, body) = request(&addr, "POST", "/v1/jobs", None, Some(TINY_JOB));
    assert_eq!(status, 503, "{}", String::from_utf8_lossy(&body));
    assert_eq!(
        json(&body).get("code").and_then(JsonValue::as_str),
        Some("draining")
    );
    // The accepted job survives the drain and its result stays fetchable
    // until the gateway actually exits.
    let (status, _, _) = get(&addr, &format!("/v1/jobs/{id}/result"), None);
    assert_eq!(status, 200);
    handle.join().expect("gateway exits cleanly after drain");
}
