//! End-to-end exercise of the remote evaluation backend: `--backend
//! remote:HOST:PORT` against a live `pimsyn worker-serve` daemon must be
//! bit-identical to inline scoring, a daemon killed mid-run must degrade
//! gracefully to the same results, authentication failures must fall back
//! inline with a single clear stderr warning, and both daemons must print
//! their actually-bound address so port 0 is usable.
//!
//! These tests live in the `pimsyn-gateway` crate — the workspace's binary
//! crate — so `CARGO_BIN_EXE_pimsyn` points at the real CLI binary for the
//! subprocess-spawned arms; the in-process arms drive
//! `serve_workers_in_background` directly.

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

use pimsyn::{
    serve_workers_in_background, stop_worker_server, BackendKind, SynthesisOptions, Synthesizer,
    Watts, WorkerServeConfig,
};
use pimsyn_model::json::JsonValue;
use pimsyn_model::zoo;

const PIMSYN_BIN: &str = env!("CARGO_BIN_EXE_pimsyn");

fn base_options() -> SynthesisOptions {
    SynthesisOptions::fast(Watts(9.0)).with_seed(7)
}

fn remote_options(addr: &str) -> SynthesisOptions {
    base_options().with_backend(BackendKind::Remote {
        endpoints: vec![addr.to_string()],
    })
}

fn loopback_daemon(config: WorkerServeConfig) -> pimsyn::WorkerServeHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind port 0");
    serve_workers_in_background(listener, config).expect("start worker daemon")
}

fn assert_identical(a: &pimsyn::SynthesisResult, b: &pimsyn::SynthesisResult) {
    assert_eq!(a.wt_dup, b.wt_dup);
    assert_eq!(a.architecture, b.architecture);
    assert_eq!(a.analytic, b.analytic);
    assert_eq!(a.evaluations, b.evaluations);
    assert_eq!(a.history, b.history);
    assert_eq!(a.stop_reason, b.stop_reason);
}

#[test]
fn remote_backend_is_bit_identical_to_inline() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    let daemon = loopback_daemon(WorkerServeConfig {
        slots: 2,
        token: None,
        quiet: true,
        ..Default::default()
    });
    let addr = daemon.addr().to_string();
    let remote = Synthesizer::new(remote_options(&addr))
        .synthesize(&model)
        .unwrap();
    assert_identical(&inline, &remote);
    stop_worker_server(&addr, None).expect("daemon stops cleanly");
    daemon.join().expect("daemon exits cleanly");
}

#[test]
fn daemon_killed_mid_run_degrades_to_identical_results() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    // A real child process, so killing it actually cuts live sessioned
    // connections (an in-process stop only ends the accept loop): in-flight
    // chunks hit the exchange-failure path mid-run and recompute inline,
    // later reconnects fail — the outcome must not change whatever the
    // interleaving.
    let (mut child, addr) = spawn_worker_serve_cli(&["--quiet"]);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(50));
        let _ = child.kill();
        let _ = child.wait();
    });
    let remote = Synthesizer::new(remote_options(&addr))
        .synthesize(&model)
        .unwrap();
    killer.join().unwrap();
    assert_identical(&inline, &remote);
}

#[test]
fn unreachable_roster_degrades_to_identical_results() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    // Bind a port, learn its address, then close it again: connecting to it
    // must fail, and the whole run must fall back to inline scoring.
    let dead_addr = {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let remote = Synthesizer::new(remote_options(&dead_addr))
        .synthesize(&model)
        .unwrap();
    assert_identical(&inline, &remote);
}

#[test]
fn wrong_token_is_rejected_and_daemon_survives() {
    let daemon = loopback_daemon(WorkerServeConfig {
        slots: 1,
        token: Some("s3cret".to_string()),
        quiet: true,
        ..Default::default()
    });
    let addr = daemon.addr().to_string();
    // A stop without (or with the wrong) token must be refused...
    let err = stop_worker_server(&addr, None).expect_err("tokenless stop must fail");
    assert!(err.contains("authentication"), "{err}");
    let err = stop_worker_server(&addr, Some("wrong")).expect_err("bad-token stop must fail");
    assert!(err.contains("authentication"), "{err}");
    // ... and the right token still works afterwards.
    stop_worker_server(&addr, Some("s3cret")).expect("authenticated stop");
    daemon.join().expect("daemon exits cleanly");
}

/// Spawns `pimsyn worker-serve` on port 0 and returns the child plus the
/// bound address parsed from its startup stderr line — the script-facing
/// contract the `:0` fix exists for.
fn spawn_worker_serve_cli(extra: &[&str]) -> (Child, String) {
    let mut child = Command::new(PIMSYN_BIN)
        .args(["worker-serve", "--listen", "127.0.0.1:0"])
        .args(extra)
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn worker-serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut lines = BufReader::new(stderr).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("worker-serve exited before announcing its address")
            .expect("readable stderr");
        if let Some(addr) = line.strip_prefix("pimsyn worker-serve: listening on ") {
            break addr.trim().to_string();
        }
    };
    // Keep draining stderr so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines.by_ref() {});
    (child, addr)
}

fn run_cli(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(PIMSYN_BIN)
        .args(args)
        .output()
        .expect("CLI run");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Drops the wall-clock field, the only summary field allowed to differ
/// between repeated runs.
fn summary_without_elapsed(stdout: &str) -> Vec<(String, String)> {
    let doc = JsonValue::parse(stdout.trim()).expect("summary is valid JSON");
    doc.as_object()
        .expect("summary is an object")
        .iter()
        .filter(|(k, _)| k != "elapsed_s")
        .map(|(k, v)| (k.clone(), v.to_string()))
        .collect()
}

#[test]
fn cli_auth_failure_warns_once_and_matches_inline_summary() {
    let token_path =
        std::env::temp_dir().join(format!("pimsyn-worker-token-{}.txt", std::process::id()));
    std::fs::write(&token_path, "s3cret\n").unwrap();
    let (mut child, addr) =
        spawn_worker_serve_cli(&["--auth-token-file", token_path.to_str().unwrap(), "--quiet"]);

    let common = [
        "--model",
        "alexnet-cifar",
        "--power",
        "9",
        "--seed",
        "7",
        "--output",
        "json",
        "--quiet",
    ];
    let (inline_out, _, ok) = run_cli(&common);
    assert!(ok, "inline run failed");

    // No token on the dialing side: every handshake is rejected, the run
    // degrades to inline scoring with a single clear warning, and the
    // summary is unchanged.
    let spec = format!("remote:{addr}");
    let mut with_remote: Vec<&str> = common.to_vec();
    with_remote.extend(["--backend", &spec]);
    let (remote_out, remote_err, ok) = run_cli(&with_remote);
    assert!(ok, "remote run failed: {remote_err}");
    assert_eq!(
        summary_without_elapsed(&inline_out),
        summary_without_elapsed(&remote_out),
        "auth-failed remote run must equal the inline one"
    );
    let warnings: Vec<&str> = remote_err
        .lines()
        .filter(|l| l.contains("remote evaluation degraded"))
        .collect();
    assert_eq!(
        warnings.len(),
        1,
        "exactly one degradation warning expected, got: {remote_err}"
    );
    assert!(
        warnings[0].contains("authentication failed"),
        "the warning must name the cause: {}",
        warnings[0]
    );

    // With the right token the same daemon serves the run remotely.
    let mut with_token: Vec<&str> = with_remote.clone();
    with_token.extend(["--remote-token-file", token_path.to_str().unwrap()]);
    let (auth_out, auth_err, ok) = run_cli(&with_token);
    assert!(ok, "authenticated remote run failed: {auth_err}");
    assert_eq!(
        summary_without_elapsed(&inline_out),
        summary_without_elapsed(&auth_out),
        "authenticated remote run must equal the inline one"
    );
    assert!(
        !auth_err.contains("remote evaluation degraded"),
        "authenticated run must not warn: {auth_err}"
    );

    // Clean shutdown through the CLI, authenticated.
    let (_, _, ok) = run_cli(&[
        "worker-stop",
        "--connect",
        &addr,
        "--auth-token-file",
        token_path.to_str().unwrap(),
    ]);
    assert!(ok, "worker-stop failed");
    let status = child.wait().expect("worker-serve exits");
    assert!(status.success(), "worker-serve must exit cleanly: {status}");
    let _ = std::fs::remove_file(&token_path);
}

// --- worker fleet: protocol downgrade and registry churn ---

use std::sync::Arc;
use std::time::Duration;

use pimsyn::{
    serve_registry_in_background, ServiceConfig, SynthesisRequest, SynthesisService, WorkerRegistry,
};

/// Starts a worker registry on a loopback port and a synthesis service
/// whose shared evaluation resources consult it for the remote roster —
/// the same wiring `pimsyn serve --worker-registry` performs.
fn registry_service(interval: Duration) -> (Arc<SynthesisService>, Arc<WorkerRegistry>, String) {
    let registry = WorkerRegistry::new(interval, None, true);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind registry port");
    let addr = serve_registry_in_background(listener, registry.clone()).expect("start registry");
    let service = Arc::new(SynthesisService::new(ServiceConfig::default()));
    service
        .shared_resources()
        .set_worker_directory(registry.clone());
    (service, registry, addr.to_string())
}

/// Runs one job through the service with an empty static roster: every
/// endpoint the run uses must come from the registry directory.
fn registry_run(
    service: &SynthesisService,
    model: &pimsyn_model::Model,
) -> pimsyn::SynthesisResult {
    let options = base_options().with_backend(BackendKind::Remote {
        endpoints: Vec::new(),
    });
    let handle = service
        .submit(SynthesisRequest::new(model.clone(), options))
        .expect("submit job");
    handle.await_result().expect("job succeeds")
}

fn wait_for(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(
            std::time::Instant::now() < deadline,
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn v1_only_daemon_downgrades_and_matches_inline() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    // A peer capped at protocol 1 forces the handshake to negotiate the
    // JSON-lines wire even though the dialer prefers the v2 binary frames;
    // the scores crossing that wire must still be bit-identical.
    let daemon = loopback_daemon(WorkerServeConfig {
        slots: 2,
        quiet: true,
        protocol_max: Some(1),
        ..Default::default()
    });
    let addr = daemon.addr().to_string();
    let remote = Synthesizer::new(remote_options(&addr))
        .synthesize(&model)
        .unwrap();
    assert_identical(&inline, &remote);
    stop_worker_server(&addr, None).expect("daemon stops cleanly");
    daemon.join().expect("daemon exits cleanly");
}

#[test]
fn registry_join_and_drain_keep_results_identical() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    let (service, registry, registry_addr) = registry_service(Duration::from_millis(100));

    // No workers registered yet: the empty roster scores inline.
    assert_identical(&inline, &registry_run(&service, &model));

    // A worker announcing itself while a job is already running is picked
    // up at the next chunk dispatch — or not at all, if the job finishes
    // first. Either interleaving must produce the same result.
    let announce_to = registry_addr.clone();
    let joiner = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        loopback_daemon(WorkerServeConfig {
            slots: 2,
            quiet: true,
            announce: Some(announce_to),
            ..Default::default()
        })
    });
    assert_identical(&inline, &registry_run(&service, &model));
    let daemon = joiner.join().unwrap();

    // Steady state: the worker is registered and the fleet shows a
    // registry-discovered endpoint after the run.
    wait_for("the worker to register", || {
        !registry.snapshot().workers.is_empty()
    });
    assert_identical(&inline, &registry_run(&service, &model));
    let fleet = service
        .shared_resources()
        .remote_fleet()
        .expect("a remote fleet exists after a remote-backend job");
    assert!(
        fleet.endpoints.iter().any(|e| e.discovered),
        "expected a registry-discovered endpoint, got {fleet:?}"
    );
    // The run scored remotely, so the endpoint must have accumulated
    // per-batch scoring-latency observations.
    assert!(
        fleet
            .endpoints
            .iter()
            .any(|e| e.batches > 0 && e.batch_seconds > 0.0),
        "expected recorded batch latency, got {fleet:?}"
    );

    // Stopping the daemon sends a graceful drain; later jobs must fall
    // back inline against the now-empty roster.
    let worker_addr = daemon.addr().to_string();
    stop_worker_server(&worker_addr, None).expect("worker stops cleanly");
    daemon.join().expect("worker exits cleanly");
    wait_for("the drain to deregister the worker", || {
        registry.snapshot().workers.is_empty()
    });
    assert!(registry.snapshot().drains >= 1, "drain must be counted");
    assert_identical(&inline, &registry_run(&service, &model));
    service.shutdown();
}

#[test]
fn dead_worker_is_evicted_and_results_stay_identical() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();
    let (service, registry, registry_addr) = registry_service(Duration::from_millis(100));

    // A real CLI child: killing it cuts live sessions *and* its announcer,
    // so heartbeats stop and the registry must age the entry out.
    let (mut child, _worker_addr) =
        spawn_worker_serve_cli(&["--quiet", "--announce", &registry_addr]);
    wait_for("the worker to register", || {
        !registry.snapshot().workers.is_empty()
    });

    // Kill it mid-run: in-flight chunks recompute inline, the result is
    // unchanged, and no drain ever arrives — only missed heartbeats.
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        let _ = child.kill();
        let _ = child.wait();
    });
    assert_identical(&inline, &registry_run(&service, &model));
    killer.join().unwrap();

    // Three missed heartbeats at the 100ms test interval: the entry is
    // evicted, and jobs against the empty roster still match inline.
    wait_for("the dead worker to be evicted", || {
        let snap = registry.snapshot();
        snap.workers.is_empty() && snap.evictions >= 1
    });
    assert_identical(&inline, &registry_run(&service, &model));
    service.shutdown();
}

// --- chaos suite: adaptive chunking under a misbehaving fleet ---

use pimsyn::FaultInjection;

/// The heterogeneous-fleet chaos test: one fast healthy worker, one
/// heavily slowed worker (fault-injected per-candidate delay), one worker
/// stuck on protocol v1, one worker that drops its connection every third
/// score exchange, and one worker killed mid-run. The run must stay
/// bit-identical to inline, and the fleet snapshot must show the adaptive
/// chunker routing less work to the slow endpoint than the fast one.
#[test]
fn chaos_fleet_is_bit_identical_and_starves_the_slow_worker() {
    let model = zoo::alexnet_cifar(10);
    let inline = Synthesizer::new(base_options()).synthesize(&model).unwrap();

    let fast = loopback_daemon(WorkerServeConfig {
        slots: 2,
        quiet: true,
        ..Default::default()
    });
    // ~10×+ slower than real scoring: every candidate costs 2 ms extra.
    let slow = loopback_daemon(WorkerServeConfig {
        slots: 1,
        quiet: true,
        faults: FaultInjection {
            job_delay: Some(Duration::from_millis(2)),
            ..Default::default()
        },
        ..Default::default()
    });
    let v1 = loopback_daemon(WorkerServeConfig {
        slots: 1,
        quiet: true,
        protocol_max: Some(1),
        ..Default::default()
    });
    let flaky = loopback_daemon(WorkerServeConfig {
        slots: 1,
        quiet: true,
        faults: FaultInjection {
            drop_every: Some(3),
            ..Default::default()
        },
        ..Default::default()
    });
    // A real child process so the kill cuts live sessions mid-chunk.
    let (mut child, killed_addr) = spawn_worker_serve_cli(&["--quiet"]);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        let _ = child.kill();
        let _ = child.wait();
    });

    let fast_addr = fast.addr().to_string();
    let slow_addr = slow.addr().to_string();
    let endpoints = vec![
        fast_addr.clone(),
        slow_addr.clone(),
        v1.addr().to_string(),
        flaky.addr().to_string(),
        killed_addr,
    ];
    // Through the service so the shared pool's fleet snapshot stays
    // readable after the run — the same wiring `pimsyn serve` uses.
    let service = Arc::new(SynthesisService::new(ServiceConfig::default()));
    let handle = service
        .submit(SynthesisRequest::new(
            model.clone(),
            base_options().with_backend(BackendKind::Remote { endpoints }),
        ))
        .expect("submit job");
    let remote = handle.await_result().expect("job succeeds");
    killer.join().unwrap();
    assert_identical(&inline, &remote);

    let fleet = service
        .shared_resources()
        .remote_fleet()
        .expect("a remote fleet exists after a remote-backend job");
    let jobs_of = |addr: &str| {
        fleet
            .endpoints
            .iter()
            .find(|e| e.addr == addr)
            .unwrap_or_else(|| panic!("{addr} missing from {fleet:?}"))
            .jobs
    };
    assert!(jobs_of(&fast_addr) > 0, "fast worker must score remotely");
    assert!(
        jobs_of(&slow_addr) < jobs_of(&fast_addr),
        "the slow endpoint must receive a smaller share than the fast one: {fleet:?}"
    );
    service.shutdown();

    for daemon in [fast, slow, v1, flaky] {
        let addr = daemon.addr().to_string();
        stop_worker_server(&addr, None).expect("daemon stops cleanly");
        daemon.join().expect("daemon exits cleanly");
    }
}

#[test]
fn remote_token_file_without_remote_backend_is_rejected() {
    let (_, stderr, ok) = run_cli(&[
        "--model",
        "alexnet-cifar",
        "--power",
        "9",
        "--remote-token-file",
        "/tmp/whatever",
    ]);
    assert!(!ok);
    assert!(stderr.contains("--remote-token-file"), "{stderr}");
}
